"""The simulated message fabric between clients and shard servers.

Everything is in-process and synchronous; what the router adds is the
*accounting* a distributed design is judged by — messages per edge kind
(client request, reply, server-to-server forward) and per-shard-pair
forward counts — surfaced both through a
:class:`~repro.obs.metrics.MetricsRegistry` and, when tracing is on,
as ``forward`` events on the :data:`~repro.obs.tracer.TRACER` bus.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import TRACER
from .messages import Op, Reply

__all__ = ["Router"]


class Router:
    """Delivers operations to servers and counts every message."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.servers: Dict[int, object] = {}
        self.messages = 0
        self.forwards = 0

    def register(self, server) -> None:
        """Attach a shard server under its id."""
        self.servers[server.shard_id] = server

    def _count(self, edge: str) -> None:
        self.messages += 1
        self.registry.counter("dist_messages_total", {"edge": edge}).inc()

    # ------------------------------------------------------------------
    def client_send(self, shard_id: int, op: Op) -> Reply:
        """A client request to ``shard_id`` plus its reply."""
        server = self.servers.get(shard_id)
        if server is None:
            raise ValueError(f"no server for shard {shard_id}")
        self._count("request")
        reply = server.handle(op)
        self._count("reply")
        return reply

    def forward(self, source: int, target: int, op: Op) -> Reply:
        """A server-to-server forward of a misaddressed operation."""
        server = self.servers.get(target)
        if server is None:
            raise ValueError(f"no server for shard {target}")
        self._count("forward")
        self.forwards += 1
        self.registry.counter(
            "dist_forwards_total", {"src": source, "dst": target}
        ).inc()
        if TRACER.enabled:
            TRACER.emit("forward", src=source, dst=target, op=op.kind)
        reply = server.handle(op)
        reply.forwards += 1
        return reply
