"""Unit tests for Algorithm A2 — basic bucket splitting."""

import pytest

from repro import LOWERCASE, SplitPolicy, THFile, TrieCorruptionError
from repro.core.cells import is_nil
from repro.core.split import expand_basic, plan_split

A = LOWERCASE


def records(*keys):
    return [(k, None) for k in keys]


class TestPlanSplit:
    def test_fig3_plan(self):
        # Bucket 7 of the example file receives 'hat' (b=4, m=3).
        B = records("had", "hat", "have", "he", "her")
        plan = plan_split(B, 3, 5, A)
        assert plan.split_key == "have"
        assert plan.boundary == "ha"
        assert [k for k, _ in plan.stay] == ["had", "hat", "have"]
        assert [k for k, _ in plan.move] == ["he", "her"]

    def test_middle_split_random_tail(self):
        # Keys above the split key may stay: TH's partial randomness.
        B = records("da", "db", "dc", "dcx", "x")
        plan = plan_split(B, 3, 5, A)
        # split string separates 'dc' from 'x' -> 'd'; 'dcx' stays too.
        assert plan.boundary == "d"
        assert [k for k, _ in plan.stay] == ["da", "db", "dc", "dcx"]
        assert [k for k, _ in plan.move] == ["x"]

    def test_deterministic_with_adjacent_bounding(self):
        # Bounding key right above the split key: a B-tree-like split.
        B = records("da", "db", "dc", "dcx", "x")
        plan = plan_split(B, 3, 4, A)
        assert [k for k, _ in plan.stay] == ["da", "db", "dc"]
        assert [k for k, _ in plan.move] == ["dcx", "x"]

    def test_both_sides_nonempty_always(self):
        B = records("aa", "ab", "ac", "ad", "ae")
        for m in range(1, 5):
            for bound in range(m + 1, 6):
                plan = plan_split(B, m, bound, A)
                assert plan.stay and plan.move
                assert len(plan.stay) + len(plan.move) == 5

    def test_order_preserved(self):
        B = records("aa", "ab", "ba", "bb", "ca")
        plan = plan_split(B, 2, 5, A)
        assert max(k for k, _ in plan.stay) < min(k for k, _ in plan.move)

    def test_invalid_positions_rejected(self):
        B = records("a", "b", "c")
        with pytest.raises(TrieCorruptionError):
            plan_split(B, 0, 3, A)
        with pytest.raises(TrieCorruptionError):
            plan_split(B, 2, 2, A)
        with pytest.raises(TrieCorruptionError):
            plan_split(B, 1, 4, A)


class TestExpandBasic:
    def test_usual_case_single_node(self):
        from repro import Trie
        from repro.core.trie import ROOT_LOCATION

        trie = Trie(A, root_ptr=0)
        added = expand_basic(trie, ROOT_LOCATION, "", "d", 0, 1)
        assert added == 1
        assert trie.boundaries() == ["d"]
        assert trie.search("a").bucket == 0
        assert trie.search("x").bucket == 1

    def test_rare_case_creates_nils(self):
        from repro import Trie
        from repro.core.trie import ROOT_LOCATION

        trie = Trie(A, root_ptr=0)
        added = expand_basic(trie, ROOT_LOCATION, "", "osz", 0, 1)
        assert added == 3
        assert trie.boundaries() == ["osz", "os", "o"]
        leaves = [ptr for _, ptr, _ in trie.leaves_in_order()]
        # [0, 1, nil, nil]: only the gap right above the cut got bucket 1.
        assert leaves[0] == 0 and leaves[1] == 1
        assert is_nil(leaves[2]) and is_nil(leaves[3])
        trie.check()

    def test_shared_prefix_digits_cut(self):
        from repro import Trie
        from repro.core.trie import Location
        from repro.core.cells import edge_to

        # Fig 3: leaf with path 'he' splits on string 'ha' - only the
        # digit 'a' is new.
        trie = Trie(A, root_ptr=0)
        n = trie.cells.allocate("h", 0, 7, 2)
        trie.root = edge_to(n)
        added = expand_basic(trie, Location(n, "L"), "h", "ha", 7, 10)
        assert added == 1
        assert trie.boundaries() == ["ha", "h"]
        trie.check()

    def test_fully_shared_string_is_an_error(self):
        from repro import Trie
        from repro.core.trie import ROOT_LOCATION

        trie = Trie(A, root_ptr=0)
        with pytest.raises(TrieCorruptionError):
            expand_basic(trie, ROOT_LOCATION, "ha", "ha", 0, 1)


class TestFileLevelSplits:
    def test_first_split_of_a_file(self):
        f = THFile(bucket_capacity=2)
        f.insert("ab")
        f.insert("cd")
        assert f.bucket_count() == 1
        f.insert("ef")  # overflow
        assert f.bucket_count() == 2
        assert f.stats.splits == 1
        f.check()

    def test_split_respects_m_position(self):
        # m=1: only the lowest key stays.
        f = THFile(bucket_capacity=3, policy=SplitPolicy(split_position=1))
        for k in ("ka", "kb", "kc", "aa"):
            f.insert(k)
        f.check()
        sizes = sorted(len(f.store.peek(a)) for a in f.store.live_addresses())
        assert sizes[0] <= 2

    def test_nil_allocation_on_insert(self):
        f = THFile(bucket_capacity=4, policy=SplitPolicy(split_position=-1))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k)
        assert f.nil_leaf_fraction() > 0
        nils_before = f.stats.nil_allocations
        f.insert("ota")  # maps to a nil leaf -> new bucket appended
        assert f.stats.nil_allocations == nils_before + 1
        assert f.get("ota") is None
        f.check()

    def test_split_cost_in_accesses(self, generator):
        # A split writes the old bucket and the new one: 1 read + 2
        # writes beyond the plain insert.
        f = THFile(bucket_capacity=4)
        for k in ("aa", "ab", "ac", "ad"):
            f.insert(k)
        stats = f.store.disk.stats
        r, w = stats.reads, stats.writes
        f.insert("ae")
        assert stats.reads - r == 1
        assert stats.writes - w == 2

    def test_headers_written_at_split(self):
        f = THFile(bucket_capacity=2)
        for k in ("aa", "bb", "cc", "dd", "ee"):
            f.insert(k)
        for address in f.store.live_addresses():
            bucket = f.store.peek(address)
            # Every bucket's header holds its logical path (right cut).
            paths = {
                path for _, ptr, path in f.trie.leaves_in_order() if ptr == address
            }
            assert bucket.header_path in paths
