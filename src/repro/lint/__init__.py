"""Project-specific static analysis (``python -m repro.lint``).

The reproduction's correctness arguments rest on coding conventions that
generic linters cannot see: deterministic randomness (a wall-clock read
in ``core`` silently breaks FaultPlan replay), typed errors in the
distributed layer, buffer-pool discipline around the simulated disk, and
so on. :mod:`repro.lint` turns those conventions into machine-checked
rules over the stdlib :mod:`ast`, with one stable code per rule
(``TH001``...), inline suppressions that must carry a justification, and
table or JSON output for CI.

Two passes share one report. The per-file pass (``TH001``–``TH008``)
runs rules over each parsed file in isolation. The whole-program pass
(:mod:`repro.lint.flow`, ``TH010``–``TH014``) parses the tree once into
cached module summaries, links an import graph and a conservatively
resolved call graph, and checks the invariants that span modules:
event-loop purity through helper chains, wire-protocol exhaustiveness,
commit ordering, fabric-clock discipline and paranoid-audit coverage.

Usage::

    python -m repro.lint src                # per-file pass only
    python -m repro.lint src --flow         # per-file + whole-program pass
    python -m repro.lint src --flow --sarif out.sarif
    python -m repro.lint src --graph dot    # call graph as Graphviz DOT
    python -m repro.lint src --json         # machine-readable report
    python -m repro.lint src --select TH001,TH005
    python -m repro.lint --list             # print the ruleset

Suppression syntax (the justification after ``--`` is mandatory)::

    frobnicate()  # repro-lint: disable=TH001 -- replay-safe: seeded upstream

A suppression comment on its own line applies to the next code line.
Unused or justification-free suppressions are themselves findings
(``LINT001``/``LINT002``), so the allowlist can never silently rot.

See ``docs/STATIC_ANALYSIS.md`` for the full rule catalogue and the
process for adding a rule.
"""

from __future__ import annotations

from .engine import (
    FLOW_CODES,
    LintContext,
    LintReport,
    LintViolation,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    rule,
)
from . import rules  # noqa: F401  -- importing registers the ruleset

__all__ = [
    "FLOW_CODES",
    "LintContext",
    "LintReport",
    "LintViolation",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule",
]
