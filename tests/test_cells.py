"""Unit tests for the cell table (standard trie representation)."""

import pytest

from repro import TrieCorruptionError
from repro.core.cells import (
    NIL,
    Cell,
    CellTable,
    edge_target,
    edge_to,
    is_edge,
    is_leaf,
    is_nil,
    leaf_bucket,
)


class TestPointerAlgebra:
    def test_leaf_pointers_are_bucket_addresses(self):
        assert is_leaf(0)
        assert is_leaf(123)
        assert not is_edge(0)
        assert not is_nil(0)

    def test_edge_encoding_roundtrip(self):
        for index in (0, 1, 5, 1000):
            ptr = edge_to(index)
            assert is_edge(ptr)
            assert not is_leaf(ptr)
            assert not is_nil(ptr)
            assert edge_target(ptr) == index

    def test_edge_to_cell_zero_is_unambiguous(self):
        # The paper overloads -0; our encoding shifts by one instead.
        assert edge_to(0) == -1
        assert edge_target(-1) == 0

    def test_nil_is_neither(self):
        assert is_nil(NIL)
        assert not is_leaf(NIL)
        assert not is_edge(NIL)

    def test_decoders_reject_wrong_kinds(self):
        with pytest.raises(TrieCorruptionError):
            edge_target(5)
        with pytest.raises(TrieCorruptionError):
            leaf_bucket(edge_to(1))


class TestCell:
    def test_child_accessors(self):
        cell = Cell("h", 0, 7, edge_to(3))
        assert cell.child("L") == 7
        assert cell.child("R") == edge_to(3)
        cell.set_child("L", 9)
        assert cell.lp == 9
        cell.set_child("R", NIL)
        assert is_nil(cell.rp)


class TestCellTable:
    def test_allocate_sequential(self):
        table = CellTable()
        assert table.allocate("a", 0, 0, 1) == 0
        assert table.allocate("b", 0, 1, 2) == 1
        assert len(table) == 2
        assert table.live_count() == 2

    def test_getitem(self):
        table = CellTable()
        table.allocate("a", 0, 0, 1)
        assert table[0].dv == "a"

    def test_free_and_reuse(self):
        table = CellTable()
        table.allocate("a", 0, 0, 1)
        table.allocate("b", 1, 1, 2)
        table.free(0)
        assert table.live_count() == 1
        assert table.allocate("c", 2, 2, 3) == 0  # slot recycled
        assert table.live_count() == 2
        assert table[0].dv == "c"

    def test_access_to_freed_cell_fails(self):
        table = CellTable()
        table.allocate("a", 0, 0, 1)
        table.free(0)
        with pytest.raises(TrieCorruptionError):
            table[0]

    def test_double_free_fails(self):
        table = CellTable()
        table.allocate("a", 0, 0, 1)
        table.free(0)
        with pytest.raises(TrieCorruptionError):
            table.free(0)

    def test_live_items_skips_freed(self):
        table = CellTable()
        table.allocate("a", 0, 0, 1)
        table.allocate("b", 0, 1, 2)
        table.allocate("c", 0, 2, 3)
        table.free(1)
        assert [i for i, _ in table.live_items()] == [0, 2]
