"""The paper's metrics, computed uniformly over all file kinds.

Load factor ``a = x / (b (N+1))``, trie size ``M`` (cells), growth rate
``s = M / N``, nil-leaf percentage, index bytes, and per-operation disk
access costs measured as counter deltas around an operation.
"""

from __future__ import annotations

from collections.abc import Callable

from ..storage.layout import Layout

__all__ = ["file_metrics", "access_cost", "average_access_cost"]


def file_metrics(file, layout: Layout = None) -> dict[str, float]:
    """A snapshot of the paper's file-level quantities.

    Works for :class:`~repro.core.file.THFile`,
    :class:`~repro.core.mlth.MLTHFile` and
    :class:`~repro.btree.BPlusTree` (duck-typed: each exposes the
    quantities it has; missing ones are absent from the dict).

    Every key is assigned exactly once. Where two duck-typed branches
    could claim the same key (``buckets``, ``index_bytes``), the most
    specific structure wins, checked first: a B+-tree's separator view
    (leaves as ``buckets``, branch-entry bytes as ``index_bytes``)
    takes precedence over the generic ``bucket_count``/``trie_size``
    branches, which fill in via ``setdefault`` and therefore never
    clobber an earlier value.
    """
    layout = layout or Layout()
    out: dict[str, float] = {"records": len(file)}
    # Most specific first: the B+-tree's separator-based quantities.
    if hasattr(file, "separator_count"):
        out["separators"] = file.separator_count()
        out["index_bytes"] = file.index_bytes()
        out["height"] = file.height
        out["buckets"] = file.leaf_count()
    # Generic branches: setdefault keeps the single-assignment rule.
    if hasattr(file, "load_factor"):
        out.setdefault("load_factor", file.load_factor())
    if hasattr(file, "bucket_count"):
        out.setdefault("buckets", file.bucket_count())
    if hasattr(file, "trie_size"):
        out.setdefault("trie_cells", file.trie_size())
        out.setdefault("index_bytes", layout.trie_bytes(file.trie_size()))
    if hasattr(file, "growth_rate"):
        out.setdefault("growth_rate", file.growth_rate())
    if hasattr(file, "nil_leaf_fraction"):
        out.setdefault("nil_fraction", file.nil_leaf_fraction())
    if hasattr(file, "page_load_factor"):
        out.setdefault("page_load", file.page_load_factor())
        out.setdefault("levels", file.levels())
        out.setdefault("pages", file.page_count())
    pools = _pools_of(file)
    if pools:
        hits = sum(p.hits for p in pools)
        misses = sum(p.misses for p in pools)
        total = hits + misses
        out["buffer_hit_rate"] = hits / total if total else 0.0
    return out


def _pools_of(file):
    """Every buffer pool the file reads through (mirrors `_disks_of`)."""
    pools = []
    if hasattr(file, "store"):
        pools.append(file.store.pool)
    if hasattr(file, "page_pool"):
        pools.append(file.page_pool)
    if hasattr(file, "pool") and file.pool not in pools:
        pools.append(file.pool)
    return pools


def _disks_of(file):
    disks = []
    if hasattr(file, "store"):
        disks.append(file.store.disk)
    if hasattr(file, "page_disk"):
        disks.append(file.page_disk)
    if hasattr(file, "disk") and file.disk not in disks:
        disks.append(file.disk)
    return disks


def access_cost(file, operation: Callable[[], object]) -> dict[str, int]:
    """Disk accesses one operation performs, as counter deltas.

    Returns ``{'reads': r, 'writes': w, 'accesses': r + w}`` summed over
    every device the file touches (bucket store and, for MLTH, the page
    disk).
    """
    disks = _disks_of(file)
    before = [d.stats.snapshot() for d in disks]
    operation()
    reads = writes = 0
    for disk, snap in zip(disks, before):
        delta = disk.stats.delta(snap)
        reads += delta.reads
        writes += delta.writes
    return {"reads": reads, "writes": writes, "accesses": reads + writes}


def average_access_cost(file, operations) -> dict[str, float]:
    """Mean access cost over a sequence of thunks."""
    totals = {"reads": 0, "writes": 0, "accesses": 0}
    count = 0
    for op in operations:
        cost = access_cost(file, op)
        for k in totals:
            totals[k] += cost[k]
        count += 1
    return {k: v / count for k, v in totals.items()} if count else totals
