"""Every example script must run clean and print its headline lines."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["Fig 1 example file", "trie boundaries"],
    "compact_backup_file.py": ["sorted load", "compact B+-tree"],
    "mlth_large_file.py": ["records: levels=", "mean accesses/search"],
    "btree_showdown.py": ["Section 5 criteria", "min bucket"],
    "crash_recovery.py": ["crash: in-core trie lost", "recovered"],
    "concurrent_clients.py": ["conflicts", "B+-tree"],
    "multikey_points.py": ["rectangle", "grid file"],
    "query_temporary_join.py": ["merge join produced", "temporaries dropped"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name):
    output = run_example(name)
    for marker in CASES[name]:
        assert marker in output, f"{name} output lacks {marker!r}"


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), "update CASES when adding examples"
