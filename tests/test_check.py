"""Tests for ``repro.check``: the audit registry, severity tiers,
corruption detection, the MANIFEST audit, and paranoid mode."""

import pytest

from repro import SplitPolicy, THFile, Trie
from repro.btree import BPlusTree
from repro.check import (
    AuditLevel,
    AuditReport,
    ParanoidAuditError,
    Severity,
    Violation,
    audit,
    audit_manifest,
    find_audit,
    maybe_audit,
    paranoid_enabled,
    register_audit,
    registered_audits,
    set_paranoid,
)
from repro.core.mlth import MLTHFile
from repro.core.overflow import OverflowTHFile
from repro.storage.dedup import DedupWindow
from repro.storage.recovery import DurableFile
from repro.storage.wal import StableStore
from repro.workloads import KeyGenerator


@pytest.fixture(autouse=True)
def _reset_paranoid():
    yield
    set_paranoid(None)


def filled_file(n=200, seed=3, **kwargs):
    f = THFile(bucket_capacity=kwargs.pop("bucket_capacity", 4), **kwargs)
    for k in KeyGenerator(seed).uniform(n):
        f.insert(k, k[::-1])
    return f


# ----------------------------------------------------------------------
# Framework mechanics
# ----------------------------------------------------------------------
def test_severity_ordering_drives_ok():
    warn = Violation("X", Severity.WARNING, "meh", "T")
    err = Violation("X", Severity.ERROR, "bad", "T")
    assert AuditReport("T", AuditLevel.FULL, [warn]).ok
    assert not AuditReport("T", AuditLevel.FULL, [warn, err]).ok
    assert AuditReport("T", AuditLevel.FULL, [warn, err]).worst is Severity.ERROR
    assert AuditReport("T", AuditLevel.FULL, []).worst is None


def test_report_is_machine_readable():
    report = audit(filled_file(), AuditLevel.FULL)
    payload = report.as_dict()
    assert payload["ok"] is True
    assert payload["level"] == "FULL"
    assert payload["target"] == "THFile"
    assert payload["violations"] == []
    assert "clean" in report.render()


def test_audit_unregistered_type_raises():
    with pytest.raises(TypeError, match="no audit registered"):
        audit(object())


def test_find_audit_walks_the_mro():
    # OverflowTHFile subclasses THFile; it must find its own audit, and
    # an anonymous THFile subclass must fall back to the THFile audit.
    assert find_audit(OverflowTHFile) is not find_audit(THFile)

    class Sub(THFile):
        pass

    assert find_audit(Sub) is find_audit(THFile)


def test_register_audit_rejects_duplicates():
    path = registered_audits()[0]
    with pytest.raises(ValueError, match="duplicate audit"):
        register_audit(path)(lambda obj, level: [])


def test_registry_covers_the_catalogue():
    expected = {
        "repro.core.trie.Trie",
        "repro.core.file.THFile",
        "repro.core.overflow.OverflowTHFile",
        "repro.core.mlth.MLTHFile",
        "repro.core.image.TrieImage",
        "repro.core.boundaries.BoundaryModel",
        "repro.multikey.mkfile.MultikeyTHFile",
        "repro.btree.btree.BPlusTree",
        "repro.storage.dedup.DedupWindow",
        "repro.storage.recovery.DurableFile",
        "repro.distributed.coordinator.Coordinator",
        "repro.distributed.coordinator.Cluster",
    }
    assert expected <= set(registered_audits())


# ----------------------------------------------------------------------
# Structure audits: healthy and corrupted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("level", list(AuditLevel))
def test_healthy_file_audits_clean(level):
    assert audit(filled_file(), level).ok


def test_corrupted_counter_fails_full_audit():
    f = filled_file()
    f._size += 3
    report = audit(f, AuditLevel.FULL)
    assert not report.ok
    assert report.worst is Severity.CRITICAL


def test_corrupted_header_fails_paranoid_reconstruction():
    f = filled_file(bucket_capacity=4, policy=SplitPolicy.basic_th())
    assert audit(f, AuditLevel.PARANOID).ok
    address = sorted(f.store.live_addresses())[-1]
    f.store.peek(address).header_path = "zzz"  # lie to the oracle
    report = audit(f, AuditLevel.PARANOID)
    assert not report.ok
    assert any(v.code == "AUD-FILE-RECONSTRUCT" for v in report.violations)


def test_trie_audit():
    f = filled_file(50)
    assert audit(f.trie, AuditLevel.FULL).ok
    assert isinstance(f.trie, Trie)


def test_mlth_and_btree_audits():
    m = MLTHFile(bucket_capacity=4, page_capacity=8)
    for k in KeyGenerator(1).uniform(300):
        m.insert(k)
    assert audit(m, AuditLevel.PARANOID).ok

    t = BPlusTree(leaf_capacity=8)
    for k in KeyGenerator(2).uniform(200):
        t.insert(k)
    assert audit(t, AuditLevel.FULL).ok


def test_dedup_window_audit_catches_overfull():
    w = DedupWindow(limit=4)
    for i in range(4):
        w.record((7, i), "ok")
    assert audit(w, AuditLevel.PARANOID).ok
    w._entries[(7, 99)] = "smuggled"  # bypass the bound
    report = audit(w, AuditLevel.BASIC)
    assert any(v.code == "AUD-DEDUP-OVERFULL" for v in report.violations)


# ----------------------------------------------------------------------
# MANIFEST audit
# ----------------------------------------------------------------------
def good_manifest():
    return {
        "engine": "th",
        "params": {},
        "chain": ["CKPT-0"],
        "wal": "WAL",
        "lsn": 12,
        "next_ckpt": 1,
    }


def test_manifest_audit_accepts_real_session():
    stable = StableStore()
    d = DurableFile.open(stable, engine="th", capacity=4)
    for k in KeyGenerator(4).uniform(60):
        d.insert(k, k)
    assert audit_manifest(d.manifest) == []
    assert audit(d, AuditLevel.PARANOID).ok


def test_manifest_audit_flags_schema_breaks():
    assert audit_manifest("not a dict")[0].code == "AUD-MANIFEST-TYPE"
    missing = good_manifest()
    del missing["wal"]
    assert [v.code for v in audit_manifest(missing)] == ["AUD-MANIFEST-KEY"]
    wrong = good_manifest()
    wrong["lsn"] = "twelve"
    assert [v.code for v in audit_manifest(wrong)] == ["AUD-MANIFEST-TYPE"]
    negative = good_manifest()
    negative["lsn"] = -1
    assert [v.code for v in audit_manifest(negative)] == ["AUD-MANIFEST-LSN"]
    stale = good_manifest()
    stale["next_ckpt"] = 0
    assert [v.code for v in audit_manifest(stale)] == ["AUD-MANIFEST-CHAIN"]


# ----------------------------------------------------------------------
# Paranoid mode
# ----------------------------------------------------------------------
def test_paranoid_env_var(monkeypatch):
    set_paranoid(None)
    monkeypatch.delenv("REPRO_PARANOID", raising=False)
    assert not paranoid_enabled()
    monkeypatch.setenv("REPRO_PARANOID", "1")
    assert paranoid_enabled()
    monkeypatch.setenv("REPRO_PARANOID", "off")
    assert not paranoid_enabled()
    # The programmatic override wins over the environment.
    set_paranoid(True)
    assert paranoid_enabled()
    monkeypatch.setenv("REPRO_PARANOID", "1")
    set_paranoid(False)
    assert not paranoid_enabled()


def test_maybe_audit_noop_when_disabled():
    set_paranoid(False)
    f = filled_file(40)
    f._size += 5  # corrupt — but paranoia is off
    maybe_audit(f, "corrupted on purpose")


def test_maybe_audit_skips_unregistered_types():
    set_paranoid(True)
    maybe_audit(object(), "no audit for this")


def test_maybe_audit_raises_at_the_faulty_op():
    set_paranoid(True)
    f = filled_file(40)
    maybe_audit(f, "healthy")
    f._size += 5
    with pytest.raises(ParanoidAuditError) as info:
        maybe_audit(f, "after corruption")
    assert info.value.context == "after corruption"
    assert not info.value.report.ok
