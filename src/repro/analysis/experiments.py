"""One function per reproduced table or figure.

Each function regenerates the data behind one artifact of the paper's
evaluation (see the per-experiment index in DESIGN.md / EXPERIMENTS.md)
and returns it as a list of row dictionaries ready for
:func:`~repro.analysis.reporting.format_table`. Sizes default to the
paper's (5 000 keys, ``b`` in 10..50) but scale down for fast tests.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

from ..btree import BPlusTree
from ..core.balance import depth_report
from ..core.errors import InvalidKeyError, KeyNotFoundError
from ..core.file import THFile
from ..core.merge import mergeable_couples
from ..core.mlth import MLTHFile
from ..core.policies import SplitPolicy
from ..storage.buckets import BucketStore
from ..storage.disk import SimulatedDisk
from ..storage.layout import Layout
from ..workloads.generators import KeyGenerator
from .metrics import access_cost, file_metrics
from .simulator import insert_all

__all__ = [
    "ablation_overflow",
    "concurrency_table",
    "fig10_ascending",
    "fig11_descending",
    "sec31_random",
    "sec32_unexpected",
    "sec32_expected",
    "sec45_guarantees",
    "sec45_redistribution",
    "growth_rate_table",
    "sec5_btree_comparison",
    "mlth_access_table",
    "deletions_table",
    "ablation_nil_nodes",
    "ablation_balance",
    "ablation_buffer",
]

Row = dict[str, object]


def _round(value: float, digits: int = 3) -> float:
    return round(value, digits)


# ----------------------------------------------------------------------
# Figure 10 — THCL, expected ascending insertions
# ----------------------------------------------------------------------
def fig10_ascending(
    count: int = 5000,
    bucket_capacities: Sequence[int] = (10, 20, 50),
    d_values: Sequence[int] = (0, 1, 2, 3, 4, 6, 8),
    seed: int = 42,
) -> list[Row]:
    """Load factor ``a%``, trie size ``M`` and file size ``N`` versus
    ``d = b - m`` for sorted (ascending) insertions of random keys.

    The paper's claims: ``a = 100%`` at ``d = 0``; ``M`` passes through a
    minimum at small ``d`` while ``a`` stays high; the growth rate ``s``
    at full load is well above the minimum-``M`` point's.
    """
    keys = KeyGenerator(seed).sorted_keys(count)
    rows: list[Row] = []
    for b in bucket_capacities:
        for d in d_values:
            if d >= b:
                continue
            policy = SplitPolicy(
                split_position=-(d + 1),
                bounding_offset=None,
                nil_nodes=False,
                merge="guaranteed",
            )
            f = insert_all(THFile(b, policy), keys)
            rows.append(
                {
                    "b": b,
                    "d": d,
                    "a%": _round(100 * f.load_factor(), 1),
                    "M": f.trie_size(),
                    "N": f.bucket_count(),
                    "s": _round(f.growth_rate(), 2),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 11 — THCL, expected descending insertions
# ----------------------------------------------------------------------
def fig11_descending(
    count: int = 5000,
    bucket_capacities: Sequence[int] = (10, 20, 50),
    d_values: Sequence[int] = (0, 1, 2, 3, 4, 6, 8),
    seed: int = 42,
) -> list[Row]:
    """Same sweep for descending insertions: ``m = 1`` and the bounding
    key at position ``m + 1 + d`` (the paper's ``d = m'' - m - 1``).

    Claims: ``a = 100%`` at ``d = 0``; ``M`` drops ~30% within small
    ``d`` then flattens, with ``a`` staying over 90%.
    """
    keys = KeyGenerator(seed).descending_keys(count)
    rows: list[Row] = []
    for b in bucket_capacities:
        for d in d_values:
            if d + 2 > b + 1:
                continue
            policy = SplitPolicy.thcl_descending(d)
            f = insert_all(THFile(b, policy), keys)
            rows.append(
                {
                    "b": b,
                    "d": d,
                    "a%": _round(100 * f.load_factor(), 1),
                    "M": f.trie_size(),
                    "N": f.bucket_count(),
                    "s": _round(f.growth_rate(), 2),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Section 3.1 — random insertions
# ----------------------------------------------------------------------
def sec31_random(
    count: int = 5000,
    bucket_capacities: Sequence[int] = (10, 20, 50),
    seed: int = 42,
    layout: Optional[Layout] = None,
) -> list[Row]:
    """Basic TH under random insertions: ``a_r`` ≈ 70%, negligible nil
    leaves, trie of ~N six-byte cells versus B-tree branch bytes."""
    layout = layout or Layout()
    keys = KeyGenerator(seed).uniform(count)
    rows: list[Row] = []
    for b in bucket_capacities:
        f = insert_all(THFile(b), keys)
        t = BPlusTree(leaf_capacity=b, layout=layout)
        for k in keys:
            t.insert(k)
        rows.append(
            {
                "b": b,
                "a_r%": _round(100 * f.load_factor(), 1),
                "M": f.trie_size(),
                "N+1": f.bucket_count(),
                "nil%": _round(100 * f.nil_leaf_fraction(), 2),
                "trie_bytes": layout.trie_bytes(f.trie_size()),
                "btree_a%": _round(100 * t.load_factor(), 1),
                "btree_index_bytes": t.index_bytes(),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Section 3.2 — unexpected ordered insertions
# ----------------------------------------------------------------------
def sec32_unexpected(
    count: int = 5000,
    bucket_capacities: Sequence[int] = (10, 20, 50),
    fractions: Sequence[float] = (0.5, 0.4),
    seed: int = 42,
) -> list[Row]:
    """Basic TH receiving sorted keys with the split key tuned for random
    insertions: ``a_a`` within 60-73%, ``a_d`` within 40-55% at
    ``m = 0.5b``; lowering ``m`` toward ``0.4b`` trades ``a_a`` for
    ``a_d`` (both can exceed 50%), with ``a_r`` almost unaffected."""
    generator = KeyGenerator(seed)
    ascending = generator.sorted_keys(count)
    descending = list(reversed(ascending))
    shuffled = generator.uniform(count)
    rows: list[Row] = []
    for b in bucket_capacities:
        for fraction in fractions:
            policy = SplitPolicy(split_fraction=fraction)
            f_a = insert_all(THFile(b, policy), ascending)
            f_d = insert_all(THFile(b, policy), descending)
            f_r = insert_all(THFile(b, policy), shuffled)
            rows.append(
                {
                    "b": b,
                    "m": policy.split_index(b),
                    "a_a%": _round(100 * f_a.load_factor(), 1),
                    "a_d%": _round(100 * f_d.load_factor(), 1),
                    "a_r%": _round(100 * f_r.load_factor(), 1),
                    "nil_a%": _round(100 * f_a.nil_leaf_fraction(), 2),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Section 3.2 / Figures 5-6 — expected ordered insertions, basic method
# ----------------------------------------------------------------------
def sec32_expected(
    count: int = 5000,
    bucket_capacities: Sequence[int] = (10, 20, 50),
    seed: int = 42,
) -> list[Row]:
    """Basic TH with the split key shifted for the expected order:
    ``m = b`` for ascending and ``m = 1`` for descending. Nil nodes
    (ascending) and split randomness (descending) cap the load at
    60-80% — the motivation for THCL."""
    generator = KeyGenerator(seed)
    ascending = generator.sorted_keys(count)
    descending = list(reversed(ascending))
    rows: list[Row] = []
    for b in bucket_capacities:
        f_a = insert_all(THFile(b, SplitPolicy(split_position=-1)), ascending)
        f_d = insert_all(THFile(b, SplitPolicy(split_position=1)), descending)
        rows.append(
            {
                "b": b,
                "a_a% (m=b)": _round(100 * f_a.load_factor(), 1),
                "nil_a%": _round(100 * f_a.nil_leaf_fraction(), 1),
                "a_d% (m=1)": _round(100 * f_d.load_factor(), 1),
                "nil_d%": _round(100 * f_d.nil_leaf_fraction(), 1),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Section 4.5 — THCL guarantees
# ----------------------------------------------------------------------
def sec45_guarantees(
    count: int = 3000, bucket_capacity: int = 20, seed: int = 42
) -> list[Row]:
    """THCL's deterministic guarantees: 100% for the expected ordered
    load, exactly ~50% for unexpected ordered insertions in *either*
    direction, ~70% random, and a 50% floor under heavy deletions."""
    generator = KeyGenerator(seed)
    ascending = generator.sorted_keys(count)
    descending = list(reversed(ascending))
    shuffled = generator.uniform(count)
    b = bucket_capacity
    rows: list[Row] = []

    f = insert_all(THFile(b, SplitPolicy.thcl_ascending(0)), ascending)
    rows.append({"case": "expected ascending, d=0", "a%": _round(100 * f.load_factor(), 1)})
    f = insert_all(THFile(b, SplitPolicy.thcl_descending(0)), descending)
    rows.append({"case": "expected descending, d=0", "a%": _round(100 * f.load_factor(), 1)})
    f = insert_all(THFile(b, SplitPolicy.thcl_guaranteed_half()), ascending)
    rows.append({"case": "unexpected ascending", "a%": _round(100 * f.load_factor(), 1)})
    f = insert_all(THFile(b, SplitPolicy.thcl_guaranteed_half()), descending)
    rows.append({"case": "unexpected descending", "a%": _round(100 * f.load_factor(), 1)})
    f = insert_all(THFile(b, SplitPolicy.thcl_guaranteed_half()), shuffled)
    rows.append({"case": "random insertions", "a%": _round(100 * f.load_factor(), 1)})

    f = insert_all(THFile(b, SplitPolicy.thcl()), shuffled)
    rng = random.Random(seed)
    victims = list(ascending)
    rng.shuffle(victims)
    for key in victims[: int(count * 0.8)]:
        f.delete(key)
    min_fill = min(
        len(f.store.peek(a)) for a in f.store.live_addresses()
    )
    rows.append(
        {
            "case": "after deleting 80% (floor b//2)",
            "a%": _round(100 * f.load_factor(), 1),
            "min_bucket": min_fill,
        }
    )
    return rows


def sec45_redistribution(
    count: int = 3000, bucket_capacity: int = 20, seed: int = 42
) -> list[Row]:
    """Redistribution raises the random load toward the ~87% peak and
    pushes unexpected ordered loads toward 100% (Section 4.5), at the
    cost of extra accesses per split."""
    generator = KeyGenerator(seed)
    ascending = generator.sorted_keys(count)
    shuffled = generator.uniform(count)
    b = bucket_capacity
    rows: list[Row] = []
    for label, keys in (("random", shuffled), ("unexpected ascending", ascending)):
        for policy_label, policy in (
            ("plain THCL", SplitPolicy.thcl_guaranteed_half()),
            ("with redistribution", SplitPolicy.thcl_redistributing()),
            ("redistribution, compact", SplitPolicy.thcl_redistributing("compact")),
        ):
            f = insert_all(THFile(b, policy), keys)
            rows.append(
                {
                    "order": label,
                    "policy": policy_label,
                    "a%": _round(100 * f.load_factor(), 1),
                    "M": f.trie_size(),
                    "redistributions": f.stats.redistributions,
                    "splits": f.stats.splits,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Section 4.5 — trie growth rate and bytes per split
# ----------------------------------------------------------------------
def growth_rate_table(
    count: int = 5000,
    bucket_capacities: Sequence[int] = (10, 20, 50),
    seed: int = 42,
    layout: Optional[Layout] = None,
) -> list[Row]:
    """The growth rate ``s = M/N`` and bytes per split for full-load and
    near-minimal-``M`` configurations, against the B-tree's key+pointer
    bytes per split (20-50 bytes typical)."""
    layout = layout or Layout()
    generator = KeyGenerator(seed)
    ascending = generator.sorted_keys(count)
    descending = list(reversed(ascending))
    rows: list[Row] = []
    for b in bucket_capacities:
        cases = [
            ("ascending, full load (d=0)", THFile(b, SplitPolicy.thcl_ascending(0)), ascending),
            (
                "ascending, near-min M (d=2)",
                THFile(
                    b,
                    SplitPolicy(
                        split_position=-(3),
                        bounding_offset=None,
                        nil_nodes=False,
                        merge="guaranteed",
                    ),
                ),
                ascending,
            ),
            ("descending, full load (d=0)", THFile(b, SplitPolicy.thcl_descending(0)), descending),
            ("descending, d=3", THFile(b, SplitPolicy.thcl_descending(3)), descending),
        ]
        for label, f, keys in cases:
            insert_all(f, keys)
            s = f.growth_rate()
            rows.append(
                {
                    "b": b,
                    "case": label,
                    "a%": _round(100 * f.load_factor(), 1),
                    "s": _round(s, 2),
                    "bytes/split": _round(s * layout.cell_bytes, 1),
                    "btree bytes/split": layout.key_bytes + layout.pointer_bytes,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Section 5 — the B-tree comparison
# ----------------------------------------------------------------------
def sec5_btree_comparison(
    count: int = 5000,
    bucket_capacity: int = 20,
    seed: int = 42,
    layout: Optional[Layout] = None,
) -> list[Row]:
    """TH/THCL versus a B+-tree on the paper's criteria: load factor,
    disk accesses per search and per insert, and index size — for random
    and for ordered insertions."""
    layout = layout or Layout()
    generator = KeyGenerator(seed)
    shuffled = generator.uniform(count)
    ascending = sorted(shuffled)
    b = bucket_capacity
    probe = generator.uniform(200, salt=9)
    rows: list[Row] = []

    def measure(name: str, build, keys) -> None:
        f = build()
        # Average insert cost over the whole load.
        total_before = sum(d.stats.accesses for d in _disks(f))
        for k in keys:
            f.insert(k)
        insert_cost = (
            sum(d.stats.accesses for d in _disks(f)) - total_before
        ) / len(keys)
        search_costs = []
        for key in probe:
            search_costs.append(
                access_cost(f, lambda k=key: _safe_get(f, k))["accesses"]
            )
        metrics = file_metrics(f, layout)
        rows.append(
            {
                "method": name,
                "order": "random" if keys is shuffled else "ascending",
                "a%": _round(100 * metrics.get("load_factor", 0.0), 1),
                "search_acc": _round(sum(search_costs) / len(search_costs), 2),
                "insert_acc": _round(insert_cost, 2),
                "index_bytes": int(metrics.get("index_bytes", 0)),
            }
        )

    for keys in (shuffled, ascending):
        measure("TH (basic)", lambda: THFile(b), keys)
        measure(
            "THCL (m=b, shared leaves)" if keys is ascending else "THCL",
            lambda keys=keys: THFile(
                b,
                SplitPolicy.thcl_ascending(0)
                if keys is ascending
                else SplitPolicy.thcl_guaranteed_half(),
            ),
            keys,
        )
        measure(
            "B+-tree (0.5)" if keys is shuffled else "B+-tree (compact 1.0)",
            lambda keys=keys: BPlusTree(
                leaf_capacity=b,
                split_fraction=1.0 if keys is ascending else 0.5,
                layout=layout,
                pin_root=False,
            ),
            keys,
        )
    return rows


def _disks(file) -> list[SimulatedDisk]:
    disks = []
    if hasattr(file, "store"):
        disks.append(file.store.disk)
    if hasattr(file, "page_disk"):
        disks.append(file.page_disk)
    if hasattr(file, "disk") and file.disk not in disks:
        disks.append(file.disk)
    return disks


def _safe_get(file, key: str):
    try:
        return file.get(key)
    except (KeyNotFoundError, InvalidKeyError):
        return None


# ----------------------------------------------------------------------
# Section 3.1 — MLTH access behaviour
# ----------------------------------------------------------------------
def mlth_access_table(
    counts: Sequence[int] = (500, 2000, 8000),
    bucket_capacity: int = 10,
    page_capacity: int = 32,
    seed: int = 42,
) -> list[Row]:
    """MLTH: levels, page loads and per-search accesses as the file
    grows — two page levels (and thus two disk accesses with the root in
    core) covering large files."""
    rows: list[Row] = []
    for count in counts:
        keys = KeyGenerator(seed).uniform(count)
        f = MLTHFile(
            bucket_capacity=bucket_capacity, page_capacity=page_capacity
        )
        insert_all(f, keys)
        probes = keys[:100]
        page_reads = bucket_reads = 0
        for key in probes:
            p, bkt = f.search_cost(key)
            page_reads += p
            bucket_reads += bkt
        rows.append(
            {
                "records": count,
                "levels": f.levels(),
                "pages": f.page_count(),
                "page_load%": _round(100 * f.page_load_factor(), 1),
                "bucket_a%": _round(100 * f.load_factor(), 1),
                "page_reads/search": _round(page_reads / len(probes), 2),
                "bucket_reads/search": _round(bucket_reads / len(probes), 2),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Sections 2.4 / 3.3 / 4.3 — deletions
# ----------------------------------------------------------------------
def deletions_table(
    count: int = 2000, bucket_capacity: int = 10, seed: int = 42
) -> list[Row]:
    """Deletion behaviour: the basic method's limited sibling merging
    (with the 4-vs-8-couples rotation analysis) against THCL's
    guaranteed floor."""
    generator = KeyGenerator(seed)
    keys = generator.uniform(count)
    victims = list(keys)
    random.Random(seed).shuffle(victims)
    cut = int(count * 0.75)
    rows: list[Row] = []

    basic = insert_all(THFile(bucket_capacity), keys)
    siblings, rotations = mergeable_couples(basic.trie)
    couples = max(len(basic.trie.leaves_in_order()) - 1, 1)
    for key in victims[:cut]:
        basic.delete(key)
    rows.append(
        {
            "method": "basic TH",
            "mergeable": f"{len(siblings)}/{couples}",
            "with_rotations": f"{len(rotations)}/{couples}",
            "a% after 75% deleted": _round(100 * basic.load_factor(), 1),
            "min_bucket": min(
                (len(basic.store.peek(a)) for a in basic.store.live_addresses()),
                default=0,
            ),
        }
    )

    rotating = insert_all(
        THFile(bucket_capacity, SplitPolicy(merge="rotations")), keys
    )
    for key in victims[:cut]:
        rotating.delete(key)
    rows.append(
        {
            "method": "basic TH + rotations",
            "mergeable": "-",
            "with_rotations": "-",
            "a% after 75% deleted": _round(100 * rotating.load_factor(), 1),
            "min_bucket": min(
                (
                    len(rotating.store.peek(a))
                    for a in rotating.store.live_addresses()
                ),
                default=0,
            ),
        }
    )

    thcl = insert_all(THFile(bucket_capacity, SplitPolicy.thcl()), keys)
    for key in victims[:cut]:
        thcl.delete(key)
    rows.append(
        {
            "method": "THCL (guaranteed)",
            "mergeable": "all couples",
            "with_rotations": "-",
            "a% after 75% deleted": _round(100 * thcl.load_factor(), 1),
            "min_bucket": min(
                (len(thcl.store.peek(a)) for a in thcl.store.live_addresses()),
                default=0,
            ),
        }
    )
    return rows


# ----------------------------------------------------------------------
# Section 6 / /VID87/ — concurrency
# ----------------------------------------------------------------------
def concurrency_table(
    count: int = 2000,
    operations: int = 1000,
    client_counts: Sequence[int] = (1, 4, 16),
    bucket_capacity: int = 10,
    seed: int = 42,
) -> list[Row]:
    """TH vs B-tree under concurrent clients (/VID87/'s claim).

    The same mixed workload (50% searches, 50% inserts) is replayed
    through each method's locking protocol: TH locks only the target
    bucket (plus the counter ``N`` on splits); the B-tree lock-couples
    down from the root. Reported: lock conflicts, ticks spent blocked,
    and throughput, per client count.
    """
    from ..concurrency import (
        btree_operation_schedule,
        simulate_clients,
        th_operation_schedule,
    )

    generator = KeyGenerator(seed)
    present = generator.uniform(count)
    fresh = [k for k in generator.uniform(operations, salt=3) if k not in set(present)]
    searches = present[: operations - len(fresh)]

    def schedules(method: str) -> list[list[tuple]]:
        out: list[list[tuple]] = []
        if method == "TH":
            f = THFile(bucket_capacity)
            for k in present:
                f.insert(k)
            for i in range(max(len(fresh), len(searches))):
                if i < len(fresh):
                    out.append(th_operation_schedule(f, "insert", fresh[i]))
                if i < len(searches):
                    out.append(th_operation_schedule(f, "search", searches[i]))
        else:
            t = BPlusTree(leaf_capacity=bucket_capacity)
            for k in present:
                t.insert(k)
            for i in range(max(len(fresh), len(searches))):
                if i < len(fresh):
                    out.append(btree_operation_schedule(t, "insert", fresh[i]))
                if i < len(searches):
                    out.append(btree_operation_schedule(t, "search", searches[i]))
        return out

    rows: list[Row] = []
    for method in ("TH", "B+-tree"):
        ops = schedules(method)
        for clients in client_counts:
            report = simulate_clients(ops, clients)
            rows.append(
                {
                    "method": method,
                    "clients": clients,
                    "conflicts": report.conflicts,
                    "wait_ticks": report.wait_ticks,
                    "makespan": report.makespan,
                    "throughput": _round(1000 * report.throughput, 1),
                    "utilization%": _round(100 * report.utilization, 1),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Ablations (design choices DESIGN.md calls out)
# ----------------------------------------------------------------------
def ablation_nil_nodes(
    count: int = 3000, bucket_capacity: int = 20, seed: int = 42
) -> list[Row]:
    """Nil nodes (basic) vs shared leaves (THCL) at the same split key:
    the paper's surprising Section 4.5 note that the basic method's trie
    is smaller at the middle split key, while THCL wins under shifted
    split keys."""
    generator = KeyGenerator(seed)
    ascending = generator.sorted_keys(count)
    rows: list[Row] = []
    for label, basic_policy, thcl_policy in (
        (
            "m = middle",
            SplitPolicy.basic_th(),
            SplitPolicy(bounding_offset=None, nil_nodes=False, merge="guaranteed"),
        ),
        (
            "m = b",
            SplitPolicy(split_position=-1),
            SplitPolicy(
                split_position=-1,
                bounding_offset=None,
                nil_nodes=False,
                merge="guaranteed",
            ),
        ),
    ):
        f_basic = insert_all(THFile(bucket_capacity, basic_policy), ascending)
        f_thcl = insert_all(THFile(bucket_capacity, thcl_policy), ascending)
        rows.append(
            {
                "split key": label,
                "basic a%": _round(100 * f_basic.load_factor(), 1),
                "basic M": f_basic.trie_size(),
                "basic nil%": _round(100 * f_basic.nil_leaf_fraction(), 1),
                "thcl a%": _round(100 * f_thcl.load_factor(), 1),
                "thcl M": f_thcl.trie_size(),
            }
        )
    return rows


def ablation_balance(
    count: int = 3000, bucket_capacity: int = 10, seed: int = 42
) -> list[Row]:
    """Trie balancing: depth before/after the canonical rebuild, for
    random, ascending and skewed key sources (Section 2.6: only the
    in-core search time changes)."""
    generator = KeyGenerator(seed)
    sources = {
        "random": generator.uniform(count),
        "ascending": generator.sorted_keys(count),
        "skewed": generator.skewed(count),
    }
    rows: list[Row] = []
    for label, keys in sources.items():
        f = insert_all(THFile(bucket_capacity), keys)
        report = depth_report(f.trie)
        rows.append(
            {
                "workload": label,
                "nodes": report.node_count,
                "depth": report.depth_before,
                "balanced depth": report.depth_after,
            }
        )
    return rows


def multikey_grid_table(
    count: int = 1500,
    bucket_capacity: int = 8,
    concentrations: Sequence[float] = (0.0, 1.5, 3.0),
    seed: int = 42,
) -> list[Row]:
    """Multikey TH vs the grid-file directory model (Section 6).

    Two-attribute points at increasing skew: the grid directory (cross
    product of dimension scales) grows multiplicatively with skew while
    the interleaved trie grows like the data. Also reports rectangle
    query selectivity through the z-order scan.
    """
    from ..multikey import GridDirectoryModel, MultikeyTHFile

    generator = KeyGenerator(seed)
    rows: list[Row] = []
    for concentration in concentrations:
        if concentration <= 0:
            a = generator.uniform(count, length=4, salt=1)
            b = generator.uniform(count, length=4, salt=2)
        else:
            a = generator.skewed(count, length=4, concentration=concentration, salt=1)
            b = generator.skewed(count, length=4, concentration=concentration, salt=2)
        points = sorted(set(zip(a, b)))
        grid = GridDirectoryModel(2, bucket_capacity=bucket_capacity)
        trie = MultikeyTHFile((4, 4), bucket_capacity=bucket_capacity)
        for p in points:
            grid.insert(p)
            trie.insert(p)
        matches, scanned = trie.rectangle_stats(("c", "c"), ("j", "j"))
        rows.append(
            {
                "skew": concentration,
                "points": len(points),
                "grid_directory": grid.directory_size(),
                "grid_occupied": grid.occupied_cells(),
                "trie_cells": trie.directory_size(),
                "ratio": _round(grid.directory_size() / max(trie.directory_size(), 1), 2),
                "rect_matches": matches,
                "rect_scanned": scanned,
            }
        )
    return rows


def ablation_overflow(
    count: int = 3000, bucket_capacity: int = 10, seed: int = 42
) -> list[Row]:
    """Deferred splitting (overflow chains) vs plain TH.

    The Section 6 'overflow' idea: spill into a private overflow bucket
    before really splitting. Load factor rises well above ~70%; searches
    pay a second access when they fall through to the chain.
    """
    from ..core.overflow import OverflowTHFile

    keys = KeyGenerator(seed).uniform(count)
    rows: list[Row] = []
    for label, f in (
        ("plain TH", THFile(bucket_capacity, SplitPolicy(merge="none"))),
        ("overflow chaining", OverflowTHFile(bucket_capacity)),
    ):
        for k in keys:
            f.insert(k)
        reads_before = f.store.disk.stats.reads
        probes = keys[:500]
        for k in probes:
            f.get(k)
        per_search = (f.store.disk.stats.reads - reads_before) / len(probes)
        row = {
            "method": label,
            "a%": _round(100 * f.load_factor(), 1),
            "M": f.trie_size(),
            "buckets": f.bucket_count(),
            "reads/search": _round(per_search, 2),
        }
        if hasattr(f, "chain_fraction"):
            row["chained%"] = _round(100 * f.chain_fraction(), 1)
        rows.append(row)
    return rows


def ablation_buffer(
    count: int = 3000,
    bucket_capacity: int = 10,
    buffer_sizes: Sequence[int] = (0, 8, 64),
    seed: int = 42,
) -> list[Row]:
    """Bucket buffer-pool size versus disk reads for a probe workload —
    quantifying how far caching moves the one-access baseline."""
    keys = KeyGenerator(seed).uniform(count)
    probes = KeyGenerator(seed + 1).uniform(500, salt=3)
    rows: list[Row] = []
    for size in buffer_sizes:
        store = BucketStore(buffer_capacity=size)
        f = insert_all(THFile(bucket_capacity, store=store), keys)
        before = store.disk.stats.reads
        hits_before = store.pool.hits
        for key in probes:
            _safe_get(f, key)
        rows.append(
            {
                "buffer (buckets)": size,
                "disk reads / 500 probes": store.disk.stats.reads - before,
                "pool hits": store.pool.hits - hits_before,
            }
        )
    return rows
