"""Unit tests for the THCL expansion (insert_boundary) and collapse pass."""

import pytest

from repro import LOWERCASE, SplitPolicy, THFile, Trie, TrieCorruptionError
from repro.core.thcl_split import collapse_equal_leaf_nodes, insert_boundary

A = LOWERCASE


def leaves(trie):
    return [ptr for _, ptr, _ in trie.leaves_in_order()]


class TestInsertBoundary:
    def test_single_new_digit(self):
        trie = Trie(A, root_ptr=0)
        outcome = insert_boundary(trie, "dog", "d", 0, 1, 0)
        assert outcome.nodes_added == 1
        assert trie.boundaries() == ["d"]
        assert leaves(trie) == [0, 1]

    def test_chain_fills_right_leaves_with_new_bucket(self):
        # Fig 7: the nil leaves of the basic split become leaves of N.
        trie = Trie(A, root_ptr=0)
        outcome = insert_boundary(trie, "oszc", "oszc", 0, 1, 0)
        assert outcome.nodes_added == 4
        assert trie.boundaries() == ["oszc", "osz", "os", "o"]
        assert leaves(trie) == [0, 1, 1, 1, 1]
        trie.check(expect_no_nil=True)

    def test_repoints_trailing_leaves(self):
        # Bucket 0 holds two regions; a cut below both moves the tail.
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "m", "m", 0, 1, 0)     # 0 | m | 1
        insert_boundary(trie, "f", "f", 0, 2, 0)     # 0 | f | 2 | m | 1
        assert leaves(trie) == [0, 2, 1]
        # Now cut at 'c': everything of bucket 0 above 'c' goes to 3.
        insert_boundary(trie, "a", "c", 0, 3, 0)
        assert leaves(trie) == [0, 3, 2, 1]
        trie.check(expect_no_nil=True)

    def test_step_34_no_new_node(self):
        # The boundary already exists: only pointers change.
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "ca", "cab", 0, 1, 0)  # chain cab,ca,c
        assert trie.boundaries() == ["cab", "ca", "c"]
        assert leaves(trie) == [0, 1, 1, 1]
        # Bucket 1 spans three gaps; re-cut it at the existing 'ca'.
        nodes_before = trie.node_count
        outcome = insert_boundary(trie, "cad", "ca", 1, 2, 1)
        assert outcome.nodes_added == 0
        assert trie.node_count == nodes_before
        assert leaves(trie) == [0, 1, 2, 2]
        trie.check(expect_no_nil=True)

    def test_step_34_proper_prefix_keeps_intermediate_leaves(self):
        # Leaves covering keys <= s must stay with the left bucket even
        # when the anchor's leaf lies several boundaries below s.
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "cab", "cab", 0, 1, 0)   # cab,ca,c chain
        insert_boundary(trie, "caa", "caa", 0, 9, 0)   # refine below cab
        # bucket 1 owns (caa..cab], (cab..ca], (ca..c], (c..inf) minus...
        # Anchor 'cad' maps under 'ca'; cut at existing boundary 'c'.
        insert_boundary(trie, "cad", "c", 1, 5, 1)
        # Gaps of bucket 1 at or below 'c' stayed 1; those above went 5.
        model = trie.to_model()
        for j, child in enumerate(model.children):
            if child == 5:
                assert j > model.gap_of_boundary("c")
        trie.check(expect_no_nil=True)

    def test_anchor_must_map_to_old_bucket(self):
        trie = Trie(A, root_ptr=0)
        with pytest.raises(TrieCorruptionError):
            insert_boundary(trie, "dog", "d", 5, 6, old_bucket=9)

    def test_predecessor_direction(self):
        # Redistribution toward the predecessor: left side repointed.
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "f", "f", 0, 1, 0)          # 0 | f | 1
        # Move the low part of bucket 1 (keys in (f, k]) to bucket 0.
        insert_boundary(trie, "ka", "k", 0, 1, 1)
        assert trie.boundaries() == ["f", "k"]
        assert leaves(trie) == [0, 0, 1]
        trie.check(expect_no_nil=True)


class TestCollapse:
    def test_collapses_equal_leaf_nodes(self):
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "oszc", "oszc", 0, 1, 0)
        # A chain alone has no sibling leaf pairs: nothing to collapse.
        assert collapse_equal_leaf_nodes(trie) == 0
        # Repoint the bottom-left leaf to 1: the whole chain cascades.
        bottom = trie.search("a")
        trie.set_ptr(bottom.location, 1)
        freed = collapse_equal_leaf_nodes(trie)
        assert freed == 4
        assert trie.root == 1
        assert trie.node_count == 0

    def test_collapse_preserves_mapping(self):
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "oszc", "oszc", 0, 1, 0)
        insert_boundary(trie, "paa", "p", 1, 2, 1)
        before = {k: trie.search(k).bucket for k in ("a", "oszz", "ozz", "pz", "q")}
        collapse_equal_leaf_nodes(trie)
        for key, bucket in before.items():
            assert trie.search(key).bucket == bucket

    def test_collapse_idempotent(self):
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "oszc", "oszc", 0, 1, 0)
        collapse_equal_leaf_nodes(trie)
        assert collapse_equal_leaf_nodes(trie) == 0

    def test_collapse_cascades(self):
        # A node whose children become equal only after a child collapse.
        trie = Trie(A, root_ptr=0)
        insert_boundary(trie, "ca", "cab", 0, 1, 0)
        # Make every leaf bucket 1 except the far left:
        insert_boundary(trie, "caa", "ca ", 0, 1, 0)
        collapse_equal_leaf_nodes(trie)
        trie.check(expect_no_nil=True)
        # All equal-leaf nodes are gone:
        for _, cell in trie.cells.live_items():
            assert not (cell.lp == cell.rp and cell.lp >= 0)


class TestTHCLFileSplits:
    def test_no_nil_ever(self, generator):
        keys = generator.uniform(400)
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k)
        assert f.nil_leaf_fraction() == 0.0
        f.check()

    def test_fig7_scenario_fills_bucket(self):
        # THCL m=b ascending: after the chain split, new keys keep
        # filling bucket 1 instead of allocating underloaded buckets.
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl_ascending(0))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k)
        assert f.bucket_count() == 2
        for k in ("oszp", "ota", "ovm"):
            f.insert(k)
        # 'ota' and 'ovm' went into bucket 1 (which covers every gap of
        # the chain) instead of allocating up to four underloaded
        # buckets as the basic method's nil leaves would - Fig 7's point.
        assert f.bucket_count() == 2
        assert len(f.store.peek(1)) == 4  # bucket 1 filled right up
        f.insert("owa")  # now it overflows and bucket 2 appears
        assert f.bucket_count() == 3
        f.check()

    def test_contiguous_leaf_runs_invariant(self, generator):
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl_ascending(0))
        for k in sorted(generator.uniform(300)):
            f.insert(k)
        f.trie.check(expect_no_nil=True)  # includes contiguity

    def test_deterministic_split_moves_exact_count(self):
        # Bounding offset 1: exactly b+1-m records move, always.
        f = THFile(bucket_capacity=6, policy=SplitPolicy.thcl(split_position=4))
        keys = [f"k{i:02d}" for i in range(30)]
        import random

        random.Random(0).shuffle(keys)
        # keys contain digits; use a pure-letter encoding instead:
        keys = ["".join(chr(ord("a") + int(c)) for c in k[1:]) for k in keys]
        for k in keys:
            f.insert(k)
        f.check()
