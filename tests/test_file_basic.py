"""Unit tests for the THFile public API (basic method)."""

import pytest

from repro import (
    DuplicateKeyError,
    InvalidKeyError,
    KeyNotFoundError,
    SplitPolicy,
    THFile,
)


class TestCRUD:
    def test_insert_and_get(self):
        f = THFile()
        f.insert("hello", 1)
        f.insert("world", 2)
        assert f.get("hello") == 1
        assert f.get("world") == 2
        assert len(f) == 2

    def test_get_missing_raises(self):
        f = THFile()
        f.insert("hello")
        with pytest.raises(KeyNotFoundError):
            f.get("absent")

    def test_contains(self):
        f = THFile()
        f.insert("hello")
        assert f.contains("hello")
        assert "hello" in f
        assert "nope" not in f

    def test_duplicate_insert_rejected(self):
        f = THFile()
        f.insert("hello", 1)
        with pytest.raises(DuplicateKeyError):
            f.insert("hello", 2)
        assert f.get("hello") == 1
        assert len(f) == 1

    def test_put_overwrites(self):
        f = THFile()
        f.put("hello", 1)
        f.put("hello", 2)
        assert f.get("hello") == 2
        assert len(f) == 1

    def test_delete_returns_value(self):
        f = THFile()
        f.insert("hello", 42)
        assert f.delete("hello") == 42
        assert "hello" not in f
        assert len(f) == 0

    def test_delete_missing_raises(self):
        f = THFile()
        f.insert("hello")
        with pytest.raises(KeyNotFoundError):
            f.delete("absent")

    def test_invalid_keys_rejected_everywhere(self):
        f = THFile()
        for op in (f.insert, f.get, f.delete, f.contains):
            with pytest.raises(InvalidKeyError):
                op("UPPER")
            with pytest.raises(InvalidKeyError):
                op("")

    def test_key_canonicalisation(self):
        # Trailing spaces are padding: 'he ' and 'he' are the same key.
        f = THFile()
        f.insert("he ")
        assert f.contains("he")
        with pytest.raises(DuplicateKeyError):
            f.insert("he")

    def test_values_default_to_none(self):
        f = THFile()
        f.insert("hello")
        assert f.get("hello") is None

    def test_arbitrary_value_objects(self):
        f = THFile()
        payload = {"a": [1, 2, 3]}
        f.insert("hello", payload)
        assert f.get("hello") is payload


class TestConstruction:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            THFile(bucket_capacity=1)
        THFile(bucket_capacity=2)

    def test_policy_positions_validated_up_front(self):
        # A split position beyond b fails at construction, not mid-split.
        with pytest.raises(ValueError):
            THFile(bucket_capacity=4, policy=SplitPolicy(split_position=9))

    def test_starts_with_one_bucket(self):
        f = THFile()
        assert f.bucket_count() == 1
        assert f.trie_size() == 0
        assert f.load_factor() == 0.0


class TestOrderedIteration:
    def test_items_sorted(self, generator):
        keys = generator.uniform(200)
        f = THFile(bucket_capacity=4)
        for i, k in enumerate(keys):
            f.insert(k, i)
        out = list(f.items())
        assert [k for k, _ in out] == sorted(keys)
        values = dict(out)
        for i, k in enumerate(keys):
            assert values[k] == i

    def test_keys_iterator(self, small_keys):
        f = THFile(bucket_capacity=8)
        for k in small_keys:
            f.insert(k)
        assert list(f.keys()) == sorted(small_keys)


class TestMetricsAndStats:
    def test_load_factor_definition(self):
        f = THFile(bucket_capacity=4)
        for k in ("aa", "bb", "cc"):
            f.insert(k)
        assert f.load_factor() == pytest.approx(3 / 4)

    def test_stats_counters(self, small_keys):
        f = THFile(bucket_capacity=4)
        for k in small_keys:
            f.insert(k)
        assert f.stats.inserts == len(small_keys)
        assert f.stats.splits + f.stats.nil_allocations == f.bucket_count() - 1
        f.delete(small_keys[0])
        assert f.stats.deletes == 1
        d = f.stats.as_dict()
        assert d["inserts"] == len(small_keys)

    def test_growth_rate(self, small_keys):
        f = THFile(bucket_capacity=4)
        for k in small_keys:
            f.insert(k)
        assert f.growth_rate() == pytest.approx(
            f.trie_size() / (f.stats.splits + f.stats.nil_allocations)
        )

    def test_trie_size_tracks_cells(self, fig1_file):
        assert fig1_file.trie_size() == 10  # the Fig 1 trie

    def test_check_passes_through_life(self, generator):
        keys = generator.uniform(150)
        f = THFile(bucket_capacity=3)
        for i, k in enumerate(keys):
            f.insert(k, i)
            if i % 10 == 0:
                f.check()
        for k in keys[:75]:
            f.delete(k)
            f.check()


class TestSharedStore:
    def test_two_files_can_share_a_disk(self):
        from repro.storage.buckets import BucketStore
        from repro.storage.disk import SimulatedDisk

        disk = SimulatedDisk()
        f1 = THFile(store=BucketStore(disk))
        f2 = THFile(store=BucketStore(disk))
        f1.insert("aa")
        f2.insert("bb")
        assert "aa" in f1 and "aa" not in f2
        assert disk.stats.accesses > 0
