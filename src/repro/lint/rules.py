"""The per-file project ruleset (``TH001``...``TH008``).

Each rule encodes one convention the reproduction's correctness
arguments depend on; the module docstring of :mod:`repro.lint` and
``docs/STATIC_ANALYSIS.md`` explain the why behind each. Rules are pure
functions over a parsed file — no I/O, no imports of the code under
analysis — registered via :func:`repro.lint.engine.rule`.

``TH009`` (blocking calls inside serving coroutines) used to live here
as a direct-call check; it is retired in favor of the interprocedural
``TH010`` in :mod:`repro.lint.flow.rules`, which catches the same calls
through any sync helper chain. Existing ``disable=TH009`` suppressions
keep working — the flow engine treats the code as an alias for TH010.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .engine import LintContext, LintViolation, rule

__all__ = []  # rules are reached through the registry, not by name

#: Layers whose behaviour must replay bit-identically from a seed.
DETERMINISTIC_SCOPE = (
    "repro/core/",
    "repro/storage/",
    "repro/distributed/",
    "repro/concurrency/",
)

_WALLCLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "sleep",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
_SEEDED_RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}

#: Builtin exception names the distributed layer must not raise directly
#: (AssertionError is exempt: invariant checks and the chaos differential
#: report divergence — a bug in *this* library — through it by design).
_BUILTIN_EXCEPTIONS = {
    "ArithmeticError",
    "AttributeError",
    "BaseException",
    "BufferError",
    "EOFError",
    "Exception",
    "IOError",
    "IndexError",
    "KeyError",
    "LookupError",
    "MemoryError",
    "NameError",
    "NotImplementedError",
    "OSError",
    "OverflowError",
    "RuntimeError",
    "StopIteration",
    "SystemError",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
}

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
}


def _terminal_name(node: ast.AST) -> str:
    """The final identifier of a Name/Attribute chain (else '')."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


@rule(
    "TH001",
    "unseeded-nondeterminism",
    "no unseeded random or wall-clock reads in replay-critical layers",
    scope=DETERMINISTIC_SCOPE,
)
def check_determinism(context: LintContext) -> Iterator[LintViolation]:
    """FaultPlan replay and the crash-point sweep require that ``core``,
    ``storage``, ``distributed`` and ``concurrency`` derive every random
    draw from an explicitly seeded ``random.Random`` and every clock
    from the simulated one."""
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in _SEEDED_RANDOM_OK
                ]
                if bad:
                    yield context.violation(
                        "TH001",
                        node,
                        f"importing unseeded randomness from random: "
                        f"{', '.join(bad)} (use random.Random(seed))",
                    )
            elif node.module == "time":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name in _WALLCLOCK_TIME_ATTRS
                ]
                if bad:
                    yield context.violation(
                        "TH001",
                        node,
                        f"importing wall-clock primitives from time: "
                        f"{', '.join(bad)} (use the simulated clock)",
                    )
            elif node.module == "secrets":
                yield context.violation(
                    "TH001", node, "secrets is never deterministic"
                )
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        owner = func.value
        owner_name = _terminal_name(owner)
        if owner_name == "random" and isinstance(owner, ast.Name):
            if func.attr not in _SEEDED_RANDOM_OK:
                yield context.violation(
                    "TH001",
                    node,
                    f"random.{func.attr}() draws from the unseeded "
                    "module-global RNG; use a random.Random(seed) instance",
                )
        elif owner_name == "time" and isinstance(owner, ast.Name):
            if func.attr in _WALLCLOCK_TIME_ATTRS:
                yield context.violation(
                    "TH001",
                    node,
                    f"time.{func.attr}() reads the wall clock; replay "
                    "depends on the simulated clock only",
                )
        elif owner_name in ("datetime", "date"):
            if func.attr in _WALLCLOCK_DATETIME_ATTRS:
                yield context.violation(
                    "TH001",
                    node,
                    f"{owner_name}.{func.attr}() reads the wall clock",
                )
        elif owner_name == "os" and func.attr == "urandom":
            yield context.violation(
                "TH001", node, "os.urandom() is never deterministic"
            )
        elif owner_name == "uuid" and func.attr in ("uuid1", "uuid4"):
            yield context.violation(
                "TH001", node, f"uuid.{func.attr}() is never deterministic"
            )
        elif owner_name == "secrets":
            yield context.violation(
                "TH001", node, "secrets draws are never deterministic"
            )


@rule(
    "TH002",
    "broad-except",
    "no bare/blind exception handlers outside justified fault sites",
    scope=("repro/",),
)
def check_broad_except(context: LintContext) -> Iterator[LintViolation]:
    """A blind handler swallows TrieCorruptionError and CrashError alike,
    turning injected faults and real bugs into silent wrong answers.
    Genuine fault-boundary sites (the poisoned-session guards, the claim
    harness) carry a justified ``# repro-lint: disable=TH002``."""
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield context.violation(
                "TH002", node, "bare `except:` hides every failure mode"
            )
            continue
        names = []
        if isinstance(node.type, ast.Tuple):
            names = [_terminal_name(el) for el in node.type.elts]
        else:
            names = [_terminal_name(node.type)]
        broad = [n for n in names if n in ("Exception", "BaseException")]
        if broad:
            yield context.violation(
                "TH002",
                node,
                f"`except {broad[0]}` is blind; catch the concrete error "
                "types (or justify with a disable comment)",
            )


@rule(
    "TH003",
    "untyped-distributed-error",
    "distributed modules raise repro.distributed.errors types only",
    scope=("repro/distributed/",),
)
def check_distributed_errors(context: LintContext) -> Iterator[LintViolation]:
    """The retry/dedup protocol dispatches on the DistributedError
    hierarchy; a builtin ValueError thrown mid-protocol bypasses the
    retryable/terminal split and reaches callers untyped."""
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = ""
        if isinstance(exc, ast.Call):
            name = _terminal_name(exc.func)
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_EXCEPTIONS:
            yield context.violation(
                "TH003",
                node,
                f"raise {name}: distributed code must raise "
                "repro.distributed.errors types (AssertionError is the "
                "one exemption, for invariant/divergence reporting)",
            )


@rule(
    "TH004",
    "buffer-pool-bypass",
    "no direct SimulatedDisk read/write outside the storage layer",
    scope=("repro/",),
)
def check_buffer_discipline(context: LintContext) -> Iterator[LintViolation]:
    """Access counts are the paper's currency: a read that bypasses the
    BufferPool skews every hit-rate and access-ratio claim. Outside
    ``repro/storage``, disk payloads flow through the pool (or the
    non-accounting ``peek`` for invariant checks). The full mutation
    surface is covered — ``allocate``/``free`` included — so a flat
    backend like ``CompactTrie`` cannot shuffle payloads on or off the
    ``SimulatedDisk`` behind the pool's accounting."""
    if context.module_path.startswith("repro/storage/"):
        return
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in ("read", "write", "allocate", "free"):
            continue
        receiver = _terminal_name(func.value)
        if "disk" in receiver.lower():
            yield context.violation(
                "TH004",
                node,
                f"{receiver}.{func.attr}() bypasses the BufferPool; route "
                "accounted access through the pool (peek() for checks)",
            )


@rule(
    "TH005",
    "assert-for-validation",
    "no `assert` statements for runtime validation in src/",
    scope=("repro/",),
)
def check_no_asserts(context: LintContext) -> Iterator[LintViolation]:
    """``python -O`` strips asserts, so an assert-guarded invariant is an
    invariant the production interpreter never checks. Raise
    TrieCorruptionError (or the layer's typed error) instead."""
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Assert):
            yield context.violation(
                "TH005",
                node,
                "assert vanishes under `python -O`; raise a typed error "
                "(e.g. TrieCorruptionError) for runtime validation",
            )


@rule(
    "TH006",
    "mutable-default",
    "no mutable default argument values",
    scope=("repro/",),
)
def check_mutable_defaults(context: LintContext) -> Iterator[LintViolation]:
    """A mutable default is shared across calls; with files and plans
    passed around by reference this turns into cross-run state leakage
    that replay cannot reproduce."""
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ):
                yield context.violation(
                    "TH006",
                    default,
                    f"mutable default in {node.name}(); use None and "
                    "construct inside the body",
                )
            elif (
                isinstance(default, ast.Call)
                and _terminal_name(default.func) in _MUTABLE_CALLS
            ):
                yield context.violation(
                    "TH006",
                    default,
                    f"mutable default {_terminal_name(default.func)}() in "
                    f"{node.name}(); use None and construct inside the body",
                )


@rule(
    "TH007",
    "float-equality",
    "no float equality comparisons in the analysis layer",
    scope=("repro/analysis/",),
)
def check_float_equality(context: LintContext) -> Iterator[LintViolation]:
    """Load factors and access ratios are floats; `== 0.85` silently
    depends on rounding. Compare with math.isclose or an explicit
    tolerance."""
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if not has_eq:
            continue
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, float
            ):
                yield context.violation(
                    "TH007",
                    node,
                    f"float equality against {operand.value!r}; use "
                    "math.isclose or an explicit tolerance",
                )
                break


@rule(
    "TH008",
    "untyped-public-api",
    "public core/storage functions carry complete type annotations",
    scope=("repro/core/", "repro/storage/"),
)
def check_public_annotations(context: LintContext) -> Iterator[LintViolation]:
    """The mypy floor in CI only binds where annotations exist; the
    public surface of the two foundation layers must be fully typed so
    downstream layers type-check against real signatures."""

    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found: list[LintViolation] = []
            self._class_stack: list[str] = []
            self._function_depth = 0

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self._class_stack.append(node.name)
            self.generic_visit(node)
            self._class_stack.pop()

        def _visit_function(self, node) -> None:
            if self._function_depth == 0 and not node.name.startswith("_"):
                enclosing_private = any(
                    name.startswith("_") for name in self._class_stack
                )
                if not enclosing_private:
                    self._audit(node)
            self._function_depth += 1
            self.generic_visit(node)
            self._function_depth -= 1

        visit_FunctionDef = _visit_function
        visit_AsyncFunctionDef = _visit_function

        def _audit(self, node) -> None:
            missing = []
            args = node.args
            named = list(args.posonlyargs) + list(args.args)
            if self._class_stack and named:
                decorators = {
                    _terminal_name(d) for d in node.decorator_list
                }
                if "staticmethod" not in decorators:
                    named = named[1:]  # self / cls
            named += list(args.kwonlyargs)
            for arg in named:
                if arg.annotation is None:
                    missing.append(arg.arg)
            if node.returns is None:
                missing.append("return")
            if missing:
                qualname = ".".join(self._class_stack + [node.name])
                self.found.append(
                    context.violation(
                        "TH008",
                        node,
                        f"public {qualname}() missing annotations for: "
                        f"{', '.join(missing)}",
                    )
                )

    visitor = _Visitor()
    visitor.visit(context.tree)
    yield from visitor.found
