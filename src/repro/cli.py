"""Command-line entry point: regenerate any reproduced experiment.

Installed as ``trie-hashing``. Examples::

    trie-hashing list
    trie-hashing run fig10 --count 5000
    trie-hashing run sec5 --count 2000 --bucket-capacity 20
    trie-hashing run fig10 --count 5000 --metrics out.json --trace out.jsonl
    trie-hashing trace list --trace chaos.jsonl
    trie-hashing trace report c1-42 --trace chaos.jsonl
    trie-hashing reproduce --quick
    trie-hashing demo

``demo`` builds the paper's Fig 1 example file and prints its buckets
and trie, which doubles as a smoke test of an installation. ``trace``
reconstructs causal span trees from a JSONL trace or a flight-recorder
dump (see :mod:`repro.obs.causal`); ``reproduce`` runs the benchmark
harness into a per-run artifact directory and refreshes the committed
``BENCH_*.json`` trajectory (see :mod:`repro.bench`).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from . import THFile, __version__
from .analysis import (
    ablation_balance,
    capacity_table,
    ablation_overflow,
    concurrency_table,
    ablation_buffer,
    ablation_nil_nodes,
    deletions_table,
    fig10_ascending,
    fig11_descending,
    format_table,
    growth_rate_table,
    mlth_access_table,
    multikey_grid_table,
    sec31_random,
    sec32_expected,
    sec32_unexpected,
    sec45_guarantees,
    sec45_redistribution,
    sec5_btree_comparison,
)
from .distributed.chaos import chaos_table
from .distributed.report import distributed_table
from .workloads import MOST_USED_WORDS

__all__ = ["main"]

#: Experiment id -> (runner, description). Runners accept count/b kwargs
#: where meaningful; see ``repro.analysis.experiments`` for semantics.
EXPERIMENTS: dict[str, tuple] = {
    "fig10": (fig10_ascending, "THCL ascending sweep: a%, M, N vs d = b - m"),
    "fig11": (fig11_descending, "THCL descending sweep: a%, M, N vs bounding d"),
    "sec31": (sec31_random, "random insertions: a_r, nil leaves, index bytes"),
    "sec32-unexpected": (sec32_unexpected, "unexpected ordered insertions"),
    "sec32-expected": (sec32_expected, "expected ordered insertions, basic TH"),
    "sec45": (sec45_guarantees, "THCL guarantees (100% / 50% / deletions)"),
    "sec45-redistribution": (sec45_redistribution, "redistribution loads"),
    "growth": (growth_rate_table, "trie growth rate s and bytes per split"),
    "capacity": (capacity_table, "Section 3.1 capacity arithmetic"),
    "sec5": (sec5_btree_comparison, "TH vs B+-tree comparison"),
    "concurrency": (concurrency_table, "TH vs B-tree lock conflicts (/VID87/)"),
    "mlth": (mlth_access_table, "MLTH levels, page loads, accesses"),
    "multikey": (multikey_grid_table, "multikey TH vs grid-file directory"),
    "deletions": (deletions_table, "deletion/merging behaviour"),
    "ablation-nil": (ablation_nil_nodes, "nil nodes vs shared leaves"),
    "ablation-balance": (ablation_balance, "trie balancing depths"),
    "ablation-buffer": (ablation_buffer, "buffer pool vs disk reads"),
    "ablation-overflow": (ablation_overflow, "deferred splitting via overflow chains"),
    "distributed": (distributed_table, "TH* client image convergence vs scale-out"),
    "chaos": (chaos_table, "TH* differential convergence under injected faults"),
}


def _demo() -> None:
    """Build and print the Fig 1 example file (31 English words, b=4)."""
    f = THFile(bucket_capacity=4)
    for word in MOST_USED_WORDS:
        f.insert(word)
    print("Fig 1 example file — 31 most-used English words, b = 4")
    print(f"records={len(f)} buckets={f.bucket_count()} cells={f.trie_size()} "
          f"load={f.load_factor():.3f}")
    print("\nbuckets:")
    for address in sorted(f.store.live_addresses()):
        print(f"  {address}: {' '.join(f.store.peek(address).keys)}")
    print("\ntrie boundaries (in order):")
    print(" ", " | ".join(f.trie.boundaries()))


def _trace_command(args) -> int:
    """The ``trace list`` / ``trace report`` subcommands."""
    from .obs.causal import (
        CausalError,
        build_traces,
        find_rid,
        hop_rows,
        load_events,
        render_tree,
        trace_summary_rows,
    )

    if args.trace_command not in ("list", "report"):
        print("usage: trie-hashing trace {list,report} --trace PATH",
              file=sys.stderr)
        return 1
    try:
        records = load_events(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 1
    traces = build_traces(records)
    if args.trace_command == "list":
        rows = trace_summary_rows(traces)
        if not rows:
            print("no completed spans in trace")
            return 0
        print(format_table(rows, title=f"traces in {args.trace_file}"))
        return 0
    try:
        root = find_rid(traces, args.rid)
    except CausalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_tree(root, max_depth=args.max_depth))
    print()
    print(format_table(hop_rows(root), title=f"per-hop latency for {args.rid}"))
    return 0


def _serve_command(args) -> int:
    import asyncio
    import contextlib
    import signal

    from .distributed import Cluster, ShardPolicy
    from .serving import ServingServer

    cluster = Cluster(
        shards=args.shards,
        bucket_capacity=args.bucket_capacity,
        shard_policy=ShardPolicy(shard_capacity=args.shard_capacity),
        durable=not args.volatile,
        trie_backend=args.trie_backend,
        replication=args.replicas,
    )
    server = ServingServer(
        cluster,
        health_interval=0.1 if args.replicas else 0.0,
    )

    async def _serve() -> None:
        if args.uds:
            where = await server.start_unix(args.uds)
            print(f"serving on unix:{where}", flush=True)
        else:
            host, port = await server.start_tcp(args.host, args.port)
            print(f"serving on {host}:{port}", flush=True)
        # SIGINT/SIGTERM trigger a *graceful* shutdown: stop accepting,
        # drain in-flight batches behind their group fsync, take a
        # final WAL commit on every live durable shard, then exit. No
        # acked write is lost to a deploy or a ctrl-C.
        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stopping.set)
        try:
            await stopping.wait()
            print("draining: refusing new connections", flush=True)
            drained = await server.shutdown()
            print(f"shutdown complete ({drained} batches drained)", flush=True)
        except asyncio.CancelledError:
            await server.stop()
            raise

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _client_command(args) -> int:
    import json

    from .core.errors import TrieHashingError
    from .serving import connect

    if args.op in ("get", "delete") and args.key is None:
        print(f"error: {args.op} needs a KEY", file=sys.stderr)
        return 2
    if args.op in ("insert", "put") and (
        args.key is None or args.value is None
    ):
        print(f"error: {args.op} needs KEY and VALUE", file=sys.stderr)
        return 2
    try:
        with connect(path=args.uds, host=args.host, port=args.port) as session:
            file = session.file
            if args.op == "get":
                print(file.get(args.key))
            elif args.op == "insert":
                file.insert(args.key, args.value)
                print("ok")
            elif args.op == "put":
                file.put(args.key, args.value)
                print("ok")
            elif args.op == "delete":
                print(file.delete(args.key))
            elif args.op == "len":
                print(len(file))
            elif args.op == "scan":
                for key, value in file.items():
                    print(f"{key}\t{value}")
            elif args.op == "stats":
                print(
                    json.dumps(
                        session.transport.control({"cmd": "stats"}), indent=2
                    )
                )
    except (TrieHashingError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv: list[str] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="trie-hashing",
        description="Trie Hashing with Controlled Load - reproduction harness",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("demo", help="build and print the Fig 1 example file")
    sub.add_parser(
        "validate", help="re-check every reproduced claim (PASS/FAIL)"
    )
    lint = sub.add_parser(
        "lint", help="run the project linter (python -m repro.lint)"
    )
    lint.add_argument("paths", nargs="*", default=["src"])
    lint.add_argument("--json", action="store_true", dest="lint_json")
    lint.add_argument("--select", default=None, dest="lint_select")
    lint.add_argument("--flow", action="store_true", dest="lint_flow")
    lint.add_argument(
        "--graph", choices=["dot"], default=None, dest="lint_graph"
    )
    lint.add_argument("--sarif", default=None, dest="lint_sarif")
    lint.add_argument("--baseline", default=None, dest="lint_baseline")
    tr = sub.add_parser(
        "trace",
        help="reconstruct causal trees from a trace or flight dump",
    )
    tr_sub = tr.add_subparsers(dest="trace_command")
    tr_list = tr_sub.add_parser(
        "list", help="one summary row per causal trace in the file"
    )
    tr_list.add_argument(
        "--trace",
        metavar="PATH",
        required=True,
        dest="trace_file",
        help="JSONL trace or flight-recorder dump to read",
    )
    tr_report = tr_sub.add_parser(
        "report",
        help="render one rid's causal tree and per-hop latency table",
    )
    tr_report.add_argument(
        "rid", help='request id, e.g. "c1-42" (see trace list)'
    )
    tr_report.add_argument(
        "--trace",
        metavar="PATH",
        required=True,
        dest="trace_file",
        help="JSONL trace or flight-recorder dump to read",
    )
    tr_report.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="truncate the rendered tree below this depth",
    )
    rep = sub.add_parser(
        "reproduce",
        help="run the benchmark harness and refresh BENCH_*.json",
    )
    rep.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --profile quick (the CI / baseline size)",
    )
    rep.add_argument(
        "--profile",
        choices=("quick", "full"),
        default=None,
        help="workload sizes per suite (default: quick)",
    )
    rep.add_argument(
        "--suite",
        action="append",
        dest="suites",
        choices=(
            "core", "distributed", "chaos", "throughput", "compact",
            "serving",
        ),
        help="run only this suite (repeatable; default: all)",
    )
    rep.add_argument(
        "--trie-backend",
        choices=("cells", "compact"),
        default="cells",
        help="trie representation the suites build with (recorded in "
        "every BENCH config block; the compact suite measures both)",
    )
    rep.add_argument(
        "--out-root",
        default="benchmarks/results/runs",
        help="where per-run artifact directories accumulate",
    )
    rep.add_argument(
        "--bench-dir",
        default=".",
        help="where BENCH_*.json are refreshed ('-' to skip)",
    )
    rep.add_argument(
        "--seed", type=int, default=None, help="override every suite's seed"
    )
    srv = sub.add_parser(
        "serve",
        help="serve a cluster over TCP or a Unix-domain socket",
    )
    srv.add_argument(
        "--uds", metavar="PATH", default=None,
        help="listen on a Unix-domain socket at PATH",
    )
    srv.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (default: localhost)"
    )
    srv.add_argument(
        "--port", type=int, default=0,
        help="TCP bind port (default: an ephemeral port, printed at start)",
    )
    srv.add_argument(
        "--shards", type=int, default=4, help="initial shard servers"
    )
    srv.add_argument(
        "--bucket-capacity", type=int, default=8, help="bucket capacity b"
    )
    srv.add_argument(
        "--shard-capacity", type=int, default=512,
        help="records per shard before the coordinator splits it",
    )
    srv.add_argument(
        "--volatile", action="store_true",
        help="serve non-durable shards (no WAL; testing only)",
    )
    srv.add_argument(
        "--replicas", choices=("semisync", "async"), default=None,
        help="replicate every shard to a backup (WAL shipping) and run "
        "wall-clock failover detection",
    )
    srv.add_argument(
        "--trie-backend", choices=("cells", "compact"), default="cells",
        help="trie representation of the shard files",
    )
    cli = sub.add_parser(
        "client",
        help="run one operation against a serving endpoint",
    )
    cli.add_argument("--uds", metavar="PATH", default=None)
    cli.add_argument("--host", default=None)
    cli.add_argument("--port", type=int, default=None)
    cli.add_argument(
        "op",
        choices=("get", "insert", "put", "delete", "len", "scan", "stats"),
    )
    cli.add_argument("key", nargs="?", default=None)
    cli.add_argument("value", nargs="?", default=None)
    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--paranoid",
        action="store_true",
        help="audit every registered structure after each mutating op "
        "(same switch as REPRO_PARANOID=1)",
    )
    run.add_argument("--count", type=int, default=None, help="number of keys")
    run.add_argument(
        "--bucket-capacity", type=int, default=None, help="bucket capacity b"
    )
    run.add_argument("--seed", type=int, default=None, help="workload seed")
    run.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="trace the run and write a JSON metrics snapshot here",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace the run and write a JSONL event trace here",
    )
    run.add_argument(
        "--prometheus",
        metavar="PATH",
        default=None,
        help="trace the run and write a Prometheus text snapshot here",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:22s} {EXPERIMENTS[name][1]}")
        return 0
    if args.command == "demo":
        _demo()
        return 0
    if args.command == "validate":
        from .analysis.validation import validate_all

        results = validate_all()
        return 0 if all(r["ok"] for r in results) else 1
    if args.command == "trace":
        return _trace_command(args)
    if args.command == "reproduce":
        from .bench import reproduce

        # --quick is the spelled-out alias CI uses; quick is also the
        # default because the committed baselines are quick-profile.
        profile = args.profile if args.profile is not None else "quick"
        try:
            reproduce(
                profile=profile,
                out_root=args.out_root,
                bench_dir=None if args.bench_dir == "-" else args.bench_dir,
                suites=args.suites,
                seed=args.seed,
                trie_backend=args.trie_backend,
            )
        except OSError as exc:
            print(f"error: cannot write artifacts: {exc}", file=sys.stderr)
            return 1
        return 0
    if args.command == "serve":
        return _serve_command(args)
    if args.command == "client":
        return _client_command(args)
    if args.command == "lint":
        from .lint.__main__ import main as lint_main

        lint_argv = list(args.paths)
        if args.lint_json:
            lint_argv.append("--json")
        if args.lint_select:
            lint_argv.extend(["--select", args.lint_select])
        if args.lint_flow:
            lint_argv.append("--flow")
        if args.lint_graph:
            lint_argv.extend(["--graph", args.lint_graph])
        if args.lint_sarif:
            lint_argv.extend(["--sarif", args.lint_sarif])
        if args.lint_baseline:
            lint_argv.extend(["--baseline", args.lint_baseline])
        return lint_main(lint_argv)
    if args.command == "run":
        if args.paranoid:
            from .check import set_paranoid

            set_paranoid(True)
        runner: Callable = EXPERIMENTS[args.experiment][0]
        kwargs = {}
        import inspect

        accepted = inspect.signature(runner).parameters
        if args.count is not None and "count" in accepted:
            kwargs["count"] = args.count
        if args.bucket_capacity is not None:
            if "bucket_capacity" in accepted:
                kwargs["bucket_capacity"] = args.bucket_capacity
            elif "bucket_capacities" in accepted:
                kwargs["bucket_capacities"] = (args.bucket_capacity,)
        if args.seed is not None and "seed" in accepted:
            kwargs["seed"] = args.seed
        observing = args.metrics or args.trace or args.prometheus
        if observing:
            from .obs import (
                JsonlTraceWriter,
                MetricsRegistry,
                prometheus_text,
                trace,
                write_metrics_json,
            )

            registry = MetricsRegistry()
            sinks = []
            try:
                if args.trace:
                    sinks.append(JsonlTraceWriter(args.trace))
            except OSError as exc:
                print(f"error: cannot write trace: {exc}", file=sys.stderr)
                return 1
            with trace(sinks=sinks, registry=registry):
                rows = runner(**kwargs)
            print(format_table(rows, title=args.experiment))
            try:
                if args.metrics:
                    write_metrics_json(registry, args.metrics)
                if args.prometheus:
                    with open(args.prometheus, "w", encoding="utf-8") as fh:
                        fh.write(prometheus_text(registry))
            except OSError as exc:
                print(f"error: cannot write metrics: {exc}", file=sys.stderr)
                return 1
            return 0
        else:
            rows = runner(**kwargs)
        print(format_table(rows, title=args.experiment))
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
