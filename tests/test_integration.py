"""Cross-module integration tests.

These exercise the whole stack the way a user would: large mixed
workloads, cross-method equivalence (TH vs THCL vs MLTH vs B-tree all
storing the same data), persistence round trips, and the English-corpus
workload the paper proposes for validation.
"""

import random

import pytest

from repro import (
    BPlusTree,
    MLTHFile,
    SplitPolicy,
    THFile,
    bulk_load_compact,
)
from repro.core.reconstruct import reconstruct_trie
from repro.storage.serializer import (
    deserialize_bucket,
    deserialize_trie,
    serialize_bucket,
    serialize_trie,
)
from repro.workloads import KeyGenerator, synthetic_dictionary


class TestCrossMethodEquivalence:
    def test_all_methods_store_the_same_dictionary(self, generator):
        keys = generator.uniform(600)
        stores = [
            THFile(bucket_capacity=8),
            THFile(bucket_capacity=8, policy=SplitPolicy.thcl()),
            THFile(bucket_capacity=8, policy=SplitPolicy.thcl_redistributing()),
            MLTHFile(bucket_capacity=8, page_capacity=12),
            BPlusTree(leaf_capacity=8),
        ]
        for i, k in enumerate(keys):
            for s in stores:
                s.insert(k, i)
        expected = sorted(keys)
        for s in stores:
            assert [k for k, _ in s.items()] == expected
            assert len(s) == len(keys)
            for i, k in enumerate(keys[:50]):
                assert s.get(k) == i

    def test_range_queries_agree(self, generator):
        keys = generator.uniform(400)
        s = sorted(keys)
        lo, hi = s[40], s[300]
        th = THFile(bucket_capacity=6)
        bt = BPlusTree(leaf_capacity=6)
        ml = MLTHFile(bucket_capacity=6, page_capacity=10)
        for k in keys:
            th.insert(k)
            bt.insert(k)
            ml.insert(k)
        want = s[40:301]
        assert [k for k, _ in th.range_items(lo, hi)] == want
        assert [k for k, _ in bt.range_items(lo, hi)] == want
        assert [k for k, _ in ml.range_items(lo, hi)] == want


class TestLifecycleScenarios:
    def test_compact_load_then_readonly_serving(self, generator):
        # The paper's motivating use: create a compact file from sorted
        # insertions, then serve reads (back-up / log / temp file).
        words = synthetic_dictionary(3000, seed=11)
        f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_ascending(0))
        for w in words:
            f.insert(w)
        f.check()
        assert f.load_factor() > 0.95
        reads_before = f.store.disk.stats.reads
        for w in words[::37]:
            assert f.contains(w)
        probes = len(words[::37])
        assert f.store.disk.stats.reads - reads_before == probes

    def test_churn_grow_shrink_grow(self, generator):
        keys = generator.uniform(800)
        f = THFile(bucket_capacity=6, policy=SplitPolicy.thcl())
        rng = random.Random(13)
        present = set()
        for round_no in range(3):
            batch = keys[round_no * 250 : (round_no + 1) * 250]
            for k in batch:
                f.insert(k)
                present.add(k)
            victims = rng.sample(sorted(present), len(present) // 2)
            for k in victims:
                f.delete(k)
                present.discard(k)
            f.check()
            assert set(f.keys()) == present

    def test_persistence_roundtrip_whole_file(self, generator):
        # Serialise trie + every bucket, rebuild, verify all lookups.
        keys = generator.uniform(300)
        f = THFile(bucket_capacity=6)
        for k in keys:
            f.insert(k, k[::-1])
        trie_bytes = serialize_trie(f.trie)
        bucket_bytes = {
            a: serialize_bucket(f.store.peek(a))
            for a in f.store.live_addresses()
        }
        restored_trie = deserialize_trie(trie_bytes)
        restored = {a: deserialize_bucket(b) for a, b in bucket_bytes.items()}
        for k in keys:
            address = restored_trie.search(k).bucket
            assert restored[address].get(k) == k[::-1]

    def test_crash_recovery_story(self, generator):
        # "Destroy" the trie; reconstruct from bucket headers; keep
        # serving and even keep inserting afterwards.
        keys = generator.uniform(400)
        f = THFile(bucket_capacity=6)
        for k in keys:
            f.insert(k)
        f.trie = reconstruct_trie(f.store, f.alphabet)
        for k in keys:
            assert f.contains(k)
        for k in generator.uniform(50, salt=99):
            if not f.contains(k):
                f.insert(k)
        f.check()


class TestEnglishCorpus:
    def test_dictionary_load_statistics(self):
        # The 20k-word validation run the paper proposes, scaled to 5k.
        words = synthetic_dictionary(5000, seed=1981)
        f = THFile(bucket_capacity=20)
        rng = random.Random(1981)
        shuffled = list(words)
        rng.shuffle(shuffled)
        for w in shuffled:
            f.insert(w)
        f.check()
        assert 0.6 <= f.load_factor() <= 0.8  # the ~70% random claim
        assert f.nil_leaf_fraction() < 0.02
        # Trie stays around one cell per bucket.
        assert f.trie_size() == pytest.approx(f.bucket_count(), rel=0.3)

    def test_dictionary_sorted_load_thcl(self):
        words = synthetic_dictionary(5000, seed=1981)
        f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_ascending(1))
        for w in words:
            f.insert(w)
        f.check()
        assert f.load_factor() > 0.85


class TestScale:
    def test_ten_thousand_records_mixed(self):
        keys = KeyGenerator(31).uniform(10000, length=7)
        f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k)
        f.check()
        assert len(f) == 10000
        assert list(f.keys()) == sorted(keys)

    def test_mlth_three_levels(self):
        keys = KeyGenerator(32).uniform(6000)
        f = MLTHFile(bucket_capacity=5, page_capacity=10)
        for k in keys:
            f.insert(k)
        f.check()
        assert f.levels() >= 3
        pages, buckets = f.search_cost(keys[0])
        assert buckets == 1
        assert pages == f.levels() - 1  # root pinned

    def test_compact_btree_vs_compact_th_space(self):
        # Both reach ~100% data load; the trie index stays far smaller.
        words = synthetic_dictionary(4000, seed=7)
        th = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_ascending(0))
        for w in words:
            th.insert(w)
        bt = bulk_load_compact(((w, None) for w in words), leaf_capacity=20)
        assert th.load_factor() > 0.95 and bt.load_factor() > 0.95
        trie_bytes = 6 * th.trie_size()
        btree_bytes = bt.index_bytes()
        assert trie_bytes < btree_bytes
