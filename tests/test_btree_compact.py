"""Compact B-tree (bulk load) tests — /ROS81/."""

import pytest

from repro import BPlusTree, bulk_load_compact
from repro.core.errors import CapacityError


class TestBulkLoad:
    def test_full_fill(self, sorted_keys):
        t = bulk_load_compact(((k, None) for k in sorted_keys), leaf_capacity=10)
        t.check()
        assert t.load_factor() > 0.95
        assert list(t.keys()) == sorted_keys

    def test_partial_fill(self, sorted_keys):
        t = bulk_load_compact(
            ((k, None) for k in sorted_keys), leaf_capacity=10, fill=0.75
        )
        t.check()
        assert t.load_factor() == pytest.approx(0.75, abs=0.1)

    def test_values_survive(self, sorted_keys):
        t = bulk_load_compact(
            ((k, str(i)) for i, k in enumerate(sorted_keys)), leaf_capacity=8
        )
        for i, k in enumerate(sorted_keys):
            assert t.get(k) == str(i)

    def test_unsorted_input_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_compact([("b", None), ("a", None)], leaf_capacity=4)

    def test_duplicate_input_rejected(self):
        with pytest.raises(CapacityError):
            bulk_load_compact([("a", None), ("a", None)], leaf_capacity=4)

    def test_invalid_fill(self):
        with pytest.raises(CapacityError):
            bulk_load_compact([("a", None)], fill=0.0)

    def test_single_record(self):
        t = bulk_load_compact([("only", 1)], leaf_capacity=4)
        assert t.get("only") == 1
        assert t.height == 1

    def test_searchable_and_updatable_after_load(self, sorted_keys):
        t = bulk_load_compact(((k, None) for k in sorted_keys), leaf_capacity=10)
        # The compact file accepts further inserts (splits resume).
        t.insert("zzzzzzz")
        t.check()
        assert "zzzzzzz" in t

    def test_random_inserts_degrade_compact_load(self, sorted_keys, generator):
        # The paper's warning: a few random insertions push a compact
        # B-tree back toward ~50-70%.
        t = bulk_load_compact(((k, None) for k in sorted_keys), leaf_capacity=10)
        full = t.load_factor()
        for k in generator.uniform(200, salt=17):
            if k not in t:
                t.insert(k)
        assert t.load_factor() < full - 0.15

    def test_range_scan_efficiency(self, sorted_keys):
        # Compact files scan fewer leaves for the same range.
        compact = bulk_load_compact(((k, None) for k in sorted_keys), leaf_capacity=10)
        loose = BPlusTree(leaf_capacity=10)
        for k in sorted_keys:
            loose.insert(k)
        def scan_reads(t):
            before = t.disk.stats.reads
            list(t.range_items())
            return t.disk.stats.reads - before
        assert scan_reads(compact) < scan_reads(loose)
