"""The paranoid-mode switch and mutation hook, as an import leaf.

Mutating methods across the tree (``THFile.insert``,
``DurableFile.put_many``, ``TrieImage.patch``...) call
:func:`maybe_audit` so paranoid runs re-verify the structure at the op
that corrupted it. Those modules sit *below* :mod:`repro.check.framework`
in the import graph (the framework needs ``repro.core.errors``, and the
``repro.check`` package body registers every audit), so the hook lives
here with no imports beyond :mod:`os` — a structure module can import it
at module level in any import order. The framework machinery loads
lazily on the first paranoid hit.

Reentrancy: a ``PARANOID`` audit may re-derive state by replaying
records through a *fresh* structure, whose own mutators call this hook
again. The in-flight guard makes nested calls no-ops, so an audit can
use the very structures it audits without recursing.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["maybe_audit", "paranoid_enabled", "set_paranoid"]

_TRUTHY = ("1", "true", "yes", "on")

#: Tri-state programmatic override: None defers to the environment.
_paranoid_override: Optional[bool] = None

#: Non-zero while an audit is running (the reentrancy guard).
_active = 0


def set_paranoid(enabled: Optional[bool]) -> None:
    """Force paranoid mode on/off; ``None`` defers to ``REPRO_PARANOID``."""
    global _paranoid_override
    _paranoid_override = enabled


def paranoid_enabled() -> bool:
    """Is paranoid auditing active (override first, then the env var)?"""
    if _paranoid_override is not None:
        return _paranoid_override
    return os.environ.get("REPRO_PARANOID", "").strip().lower() in _TRUTHY


def maybe_audit(obj: object, context: str = "") -> None:
    """Paranoid hook for mutation sites: audit ``obj`` when enabled.

    No-op unless paranoid mode is on; objects with no registered audit
    are skipped (harnesses can call this on anything they touch), as
    are calls made from inside a running audit.
    Raises :class:`~repro.check.framework.ParanoidAuditError` when the
    audit is not ok.
    """
    global _active
    if _active or not paranoid_enabled():
        return
    from . import framework  # deferred: the hook sits below the framework

    fn = framework.find_audit(type(obj))
    if fn is None:
        return
    _active += 1
    try:
        report = framework.audit(obj, framework.AuditLevel.PARANOID)
    finally:
        _active -= 1
    if not report.ok:
        # Black-box the failure site: dump the flight recorder's recent
        # events (with the report attached) before the error surfaces —
        # a no-op unless a forensics directory is configured.
        from ..obs.flight import FLIGHT

        FLIGHT.dump("paranoid-audit", extra=report.as_dict())
        raise framework.ParanoidAuditError(report, context=context)
