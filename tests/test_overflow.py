"""Tests for the overflow-chaining (deferred splitting) variant."""

import pytest

from repro import DuplicateKeyError, KeyNotFoundError, SplitPolicy, THFile
from repro.core.errors import CapacityError
from repro.core.overflow import OverflowTHFile


def build(keys, b=4, policy=None):
    f = OverflowTHFile(bucket_capacity=b, policy=policy)
    for i, k in enumerate(keys):
        f.insert(k, i)
    return f


class TestBasics:
    def test_crud(self):
        f = OverflowTHFile(bucket_capacity=4)
        f.insert("aa", 1)
        assert f.get("aa") == 1
        assert "aa" in f
        with pytest.raises(DuplicateKeyError):
            f.insert("aa")
        f.put("aa", 2)
        assert f.get("aa") == 2
        assert f.delete("aa") == 2
        with pytest.raises(KeyNotFoundError):
            f.get("aa")

    def test_policy_restrictions(self):
        with pytest.raises(CapacityError):
            OverflowTHFile(policy=SplitPolicy.thcl())  # merge=guaranteed

    def test_overflow_defers_the_split(self):
        f = OverflowTHFile(bucket_capacity=4)
        for k in ("aa", "ab", "ac", "ad"):
            f.insert(k)
        assert f.bucket_count() == 1
        f.insert("ae")  # would split a plain THFile; chains instead
        assert f.stats.splits == 0
        assert f.bucket_count() == 2  # primary + its overflow
        assert f.chain_fraction() == 1.0
        f.check()

    def test_split_happens_when_chain_full(self):
        f = OverflowTHFile(bucket_capacity=2)
        for k in ("aa", "ab", "ac", "ad"):
            f.insert(k)  # primary 2 + chain 2
        assert f.stats.splits == 0
        f.insert("ae")  # 2b + 1 records: the real split
        assert f.stats.splits == 1
        f.check()
        assert sorted(f.keys()) == ["aa", "ab", "ac", "ad", "ae"]

    def test_search_costs(self, generator):
        keys = generator.uniform(200)
        f = build(keys, b=4)
        reads = 0
        before = f.store.disk.stats.reads
        for k in keys:
            f.get(k)
        reads = f.store.disk.stats.reads - before
        # Between 1 and 2 accesses per search.
        assert len(keys) <= reads <= 2 * len(keys)

    def test_everything_retrievable(self, small_keys):
        f = build(small_keys)
        f.check()
        for i, k in enumerate(small_keys):
            assert f.get(k) == i
        assert list(f.keys()) == sorted(small_keys)

    def test_range_items(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        assert [k for k, _ in f.range_items(s[20], s[80])] == s[20:81]


class TestLoadEffect:
    def test_higher_load_than_plain(self, generator):
        keys = generator.uniform(1500)
        plain = THFile(bucket_capacity=8)
        deferred = OverflowTHFile(bucket_capacity=8)
        for k in keys:
            plain.insert(k)
            deferred.insert(k)
        deferred.check()
        assert deferred.load_factor() > plain.load_factor()
        assert deferred.load_factor() > 0.72

    def test_fewer_trie_cells(self, generator):
        keys = generator.uniform(1500)
        plain = THFile(bucket_capacity=8)
        deferred = OverflowTHFile(bucket_capacity=8)
        for k in keys:
            plain.insert(k)
            deferred.insert(k)
        assert deferred.trie_size() < plain.trie_size()

    def test_thcl_policy_supported(self, generator):
        keys = sorted(generator.uniform(400))
        policy = SplitPolicy(
            split_position=-1, bounding_offset=None, nil_nodes=False, merge="none"
        )
        f = build(keys, b=6, policy=policy)
        f.check()
        assert list(f.keys()) == keys


class TestDeletes:
    def test_delete_from_chain_and_primary(self, generator):
        keys = generator.uniform(300)
        f = build(keys, b=4)
        for k in keys[:200]:
            f.delete(k)
            if hash(k) % 37 == 0:
                f.check()
        f.check()
        assert sorted(f.keys()) == sorted(keys[200:])

    def test_chain_freed_when_empty(self):
        f = OverflowTHFile(bucket_capacity=2)
        for k in ("aa", "ab", "ac"):
            f.insert(k)
        assert f.chain_fraction() > 0
        f.delete("ac")
        f.delete("ab")
        f.check()
        assert f.chain_fraction() == 0.0

    def test_delete_missing(self, generator):
        f = build(generator.uniform(50))
        with pytest.raises(KeyNotFoundError):
            f.delete("zzzzzzzz")
