"""Small-scale runs of every experiment, asserting the paper's *shapes*.

The benchmark harness runs these at the paper's sizes; here each
experiment runs at reduced size and the qualitative claims are asserted:
who wins, what is guaranteed, where curves bend.
"""

import pytest

from repro.analysis import (
    ablation_balance,
    ablation_buffer,
    ablation_nil_nodes,
    deletions_table,
    fig10_ascending,
    fig11_descending,
    growth_rate_table,
    mlth_access_table,
    sec31_random,
    sec32_expected,
    sec32_unexpected,
    sec45_guarantees,
    sec45_redistribution,
    sec5_btree_comparison,
)

N = 1200  # small but big enough for stable shapes


class TestFig10:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig10_ascending(count=N, bucket_capacities=(10,), d_values=(0, 1, 2, 4, 6))

    def test_d0_is_compact(self, rows):
        assert rows[0]["d"] == 0 and rows[0]["a%"] == 100

    def test_load_declines_with_d(self, rows):
        loads = [r["a%"] for r in rows]
        assert loads == sorted(loads, reverse=True)

    def test_m_has_interior_minimum_or_decline(self, rows):
        # M falls from its d=0 peak: the paper's headline saving.
        ms = [r["M"] for r in rows]
        assert min(ms[1:]) < ms[0]

    def test_growth_rate_at_full_load(self, rows):
        assert 1.4 <= rows[0]["s"] <= 2.6  # the paper's 1.6-2.13 band


class TestFig11:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig11_descending(count=N, bucket_capacities=(10,), d_values=(0, 1, 2, 4, 6))

    def test_d0_is_compact(self, rows):
        assert rows[0]["a%"] == 100

    def test_m_drops_then_flattens(self, rows):
        ms = [r["M"] for r in rows]
        assert ms[1] < ms[0]
        # No interior minimum: the tail is (weakly) lower than the start.
        assert min(ms) == min(ms[1:])

    def test_load_stays_high_for_small_d(self, rows):
        assert all(r["a%"] > 85 for r in rows if r["d"] <= 4)


class TestSec31:
    def test_random_loads(self):
        rows = sec31_random(count=N, bucket_capacities=(10, 20))
        for r in rows:
            assert 62 <= r["a_r%"] <= 78  # the ~70% claim
            assert r["nil%"] < 2.0
            assert r["trie_bytes"] < r["btree_index_bytes"]
            # M ~ N: one cell per split.
            assert r["M"] == pytest.approx(r["N+1"], rel=0.25)


class TestSec32:
    def test_unexpected_ordered(self):
        rows = sec32_unexpected(count=N, bucket_capacities=(10,), fractions=(0.5, 0.4))
        mid = rows[0]
        assert 55 <= mid["a_a%"] <= 80   # paper: 60-73
        assert 38 <= mid["a_d%"] <= 60   # paper: 40-55
        low = rows[1]
        assert low["a_d%"] > mid["a_d%"]  # lowering m helps descending

    def test_expected_ordered_capped_by_basic_method(self):
        rows = sec32_expected(count=N, bucket_capacities=(10,))
        r = rows[0]
        # Nil nodes / randomness keep the basic method under ~90%.
        assert 55 <= r["a_a% (m=b)"] <= 90
        assert 55 <= r["a_d% (m=1)"] <= 90
        assert r["nil_a%"] > 0


class TestSec45:
    def test_guarantees(self):
        rows = {r["case"]: r for r in sec45_guarantees(count=N, bucket_capacity=10)}
        assert rows["expected ascending, d=0"]["a%"] == 100
        assert rows["expected descending, d=0"]["a%"] == 100
        assert rows["unexpected ascending"]["a%"] >= 49
        assert rows["unexpected descending"]["a%"] >= 49
        assert 60 <= rows["random insertions"]["a%"] <= 80
        floor_row = rows["after deleting 80% (floor b//2)"]
        assert floor_row["min_bucket"] >= 5

    def test_redistribution(self):
        rows = sec45_redistribution(count=N, bucket_capacity=10)
        by = {(r["order"], r["policy"]): r for r in rows}
        assert (
            by[("random", "with redistribution")]["a%"]
            > by[("random", "plain THCL")]["a%"]
        )
        assert by[("random", "with redistribution")]["a%"] >= 80
        assert by[("unexpected ascending", "with redistribution")]["a%"] >= 95


class TestGrowthRate:
    def test_trie_grows_cheaper_than_btree(self):
        rows = growth_rate_table(count=N, bucket_capacities=(10,))
        for r in rows:
            assert r["bytes/split"] < r["btree bytes/split"]
        full = [r for r in rows if "full load" in r["case"]]
        tuned = [r for r in rows if "d=" in r["case"]]
        assert min(f["s"] for f in full) >= max(t["s"] for t in tuned) - 0.2


class TestSec5:
    def test_th_beats_btree_on_accesses(self):
        rows = sec5_btree_comparison(count=N, bucket_capacity=10)
        th = [r for r in rows if r["method"].startswith("TH (basic)")]
        bt = [r for r in rows if r["method"].startswith("B+-tree")]
        for t, b in zip(th, bt):
            assert t["search_acc"] < b["search_acc"]
            assert t["insert_acc"] < b["insert_acc"]
            assert t["index_bytes"] < b["index_bytes"]

    def test_compact_parity_on_ordered(self):
        rows = sec5_btree_comparison(count=N, bucket_capacity=10)
        asc = {r["method"]: r for r in rows if r["order"] == "ascending"}
        thcl = [v for k, v in asc.items() if k.startswith("THCL")][0]
        btree = [v for k, v in asc.items() if k.startswith("B+-tree")][0]
        assert thcl["a%"] >= 99 and btree["a%"] >= 99  # both reach 100%

    def test_th_search_is_one_access(self):
        rows = sec5_btree_comparison(count=N, bucket_capacity=10)
        for r in rows:
            if r["method"].startswith("TH") or r["method"].startswith("THCL"):
                assert r["search_acc"] == 1


class TestMLTH:
    def test_two_page_levels_suffice(self):
        rows = mlth_access_table(counts=(300, 1500), bucket_capacity=5, page_capacity=16)
        assert rows[-1]["levels"] >= 2
        assert rows[-1]["bucket_reads/search"] == 1
        # With the root pinned, page reads = levels - 1.
        assert rows[-1]["page_reads/search"] == rows[-1]["levels"] - 1


class TestDeletions:
    def test_table_shape(self):
        rows = deletions_table(count=800, bucket_capacity=8)
        basic, rotating, thcl = rows
        assert basic["method"] == "basic TH"
        assert thcl["min_bucket"] >= 4
        # Basic merging cannot guarantee the floor.
        assert basic["min_bucket"] <= thcl["min_bucket"]
        # Rotations recover space the sibling rule cannot.
        assert (
            rotating["a% after 75% deleted"]
            >= basic["a% after 75% deleted"]
        )


class TestAblations:
    def test_nil_nodes(self):
        rows = ablation_nil_nodes(count=N, bucket_capacity=10)
        at_b = [r for r in rows if r["split key"] == "m = b"][0]
        assert at_b["thcl a%"] == 100
        assert at_b["basic a%"] < 95  # nil stranding

    def test_balance(self):
        rows = ablation_balance(count=N, bucket_capacity=8)
        asc = [r for r in rows if r["workload"] == "ascending"][0]
        assert asc["balanced depth"] < asc["depth"]

    def test_buffer(self):
        rows = ablation_buffer(count=N, bucket_capacity=8, buffer_sizes=(0, 64))
        assert rows[0]["disk reads / 500 probes"] == 500
        assert rows[1]["disk reads / 500 probes"] < 500
