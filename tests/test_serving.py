"""The asyncio serving tier: codec, frames, server, clients, chaos.

Four layers of coverage, innermost first:

* the wire codec — every encodable value roundtrips to an equal value
  of the same type, exceptions come back as fresh typed instances, and
  malformed payloads raise :class:`ProtocolError` rather than
  misdecoding;
* the frame envelope — version gating and the length cap;
* a live server over a Unix-domain socket — point ops, scans, batches,
  IAM convergence, typed errors, pipelining, group fsync amortisation,
  deadlines with dedup, backpressure, crash controls and TCP;
* the acceptance bridge — the chaos differential schedule replayed
  over a real socket converges exactly like the simulated fabric.
"""

import asyncio
import struct

import pytest

from repro import (
    Cluster,
    DuplicateKeyError,
    KeyNotFoundError,
    ShardPolicy,
)
from repro.distributed import (
    MessageLostError,
    OpTimeoutError,
    RetryPolicy,
    ServerDownError,
    UnknownShardError,
    run_chaos,
)
from repro.distributed.codec import (
    ERROR_CODES,
    FRAME_REQUEST,
    WIRE_VERSION,
    decode_op,
    decode_reply,
    decode_value,
    encode_op,
    encode_reply,
    encode_value,
    pack_frame,
    unpack_frame,
)
from repro.distributed.errors import ConfigurationError, ProtocolError
from repro.distributed.messages import Op, Reply
from repro.serving import ServingFixture, connect, read_frame
from repro.serving.client import DEFAULT_WALL_TIMEOUT, LoopRunner
from repro.serving.server import ServingServer

_U32 = struct.Struct(">I")


def _counter_sum(registry, name):
    return sum(
        inst.value
        for inst in registry.instruments()
        if inst.name == name and not hasattr(inst, "set") and hasattr(inst, "value")
    )


def _keys(count):
    """Alphabet-legal distinct keys spread across the key space."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    return [
        letters[i % 26] + letters[(i * 7) % 26] + letters[(i * 3) % 26]
        for i in range(count)
    ]


# ======================================================================
# The value codec
# ======================================================================
class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            2**100,          # the big-int escape
            -(2**100),
            1.5,
            -0.0,
            "",
            "héllo ünïcode ✓",
            b"",
            b"\x00\xff\x7f",
            [1, [2, [3, "x"]]],
            (1, (2, None)),
            {"k": (1, 2), "nested": {"a": [True]}},
            {1, 2, 3},
            frozenset(),
            [("iam", "entry", 3), ("rid",), {"mixed": b"\x01"}],
        ],
    )
    def test_roundtrip_is_equal_and_type_exact(self, value):
        back = decode_value(encode_value(value))
        assert back == value
        assert type(back) in (type(value), set)  # frozenset lands as set

    def test_tuples_and_lists_stay_distinct(self):
        # IAM entries, rids and scan records are pattern-matched as
        # tuples on the far side — a list coming back would be a bug.
        assert decode_value(encode_value((1, 2))) == (1, 2)
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)

    @pytest.mark.parametrize("klass", sorted(ERROR_CODES.values(), key=repr))
    def test_every_registered_exception_roundtrips_typed(self, klass):
        back = decode_value(encode_value(klass("boom")))
        assert type(back) is klass
        assert "boom" in str(back)

    def test_unregistered_subclass_degrades_to_nearest_ancestor(self):
        class Exotic(KeyNotFoundError):
            pass

        back = decode_value(encode_value(Exotic("gone")))
        assert type(back) is KeyNotFoundError
        assert "gone" in str(back)

    def test_error_code_registry_is_injective(self):
        # Codes are wire contract: append-only, no aliases.
        assert len(set(ERROR_CODES)) == len(ERROR_CODES)
        assert len(set(ERROR_CODES.values())) == len(ERROR_CODES)

    def test_flow_lint_found_exceptions_are_registered(self):
        # TH011 (wire exhaustiveness) proved these escape the dispatch
        # surface: a scan cursor invalidated by a split, an injected
        # crash point, a paranoid audit tripping at a mutation site.
        # Before registration each one degraded to the code-1 catch-all
        # and came back as a bare TrieHashingError.
        from repro.check import ParanoidAuditError
        from repro.core.cursor import CursorInvalidError
        from repro.core.errors import CrashError

        assert ERROR_CODES[21] is CursorInvalidError
        assert ERROR_CODES[22] is CrashError
        assert ERROR_CODES[23] is ParanoidAuditError
        for klass in (CursorInvalidError, CrashError, ParanoidAuditError):
            back = decode_value(encode_value(klass("sliced")))
            assert type(back) is klass
            assert "sliced" in str(back)

    def test_paranoid_audit_error_accepts_a_plain_message(self):
        # The wire decoder rebuilds exceptions as klass(message); the
        # report-carrying constructor must tolerate that shape.
        from repro.check import ParanoidAuditError

        err = ParanoidAuditError("replayed off the wire")
        assert err.report is None
        assert "replayed off the wire" in str(err)

    def test_unencodable_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode_value(object())

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode_value(encode_value(1) + b"\x00")

    def test_truncated_payload_rejected(self):
        data = encode_value("hello world")
        with pytest.raises(ProtocolError):
            decode_value(data[:-3])

    def test_decoded_values_never_alias_the_input(self):
        value = {"deep": [1, {"x": 2}]}
        back = decode_value(encode_value(value))
        back["deep"][1]["x"] = 999
        assert value["deep"][1]["x"] == 2


# ======================================================================
# The message codec
# ======================================================================
class TestMessageCodec:
    def test_op_roundtrips_every_slot(self):
        op = Op.insert("key", {"v": [1, 2]})
        op.rid = (7, 42)
        op.ctx = (123, 456)
        back = decode_op(encode_op(op))
        assert (back.kind, back.key, back.value) == ("insert", "key", {"v": [1, 2]})
        assert back.rid == (7, 42)
        assert back.ctx == (123, 456)

    def test_scan_op_roundtrips_bounds(self):
        back = decode_op(encode_op(Op.scan("aa", "zz", after="mm")))
        assert (back.low, back.high, back.after) == ("aa", "zz", "mm")

    def test_reply_roundtrips_error_and_iam(self):
        reply = Reply(
            value=None,
            error=DuplicateKeyError("key exists"),
            iam=[("g", "t", 5)],
            forwards=2,
            owner=5,
            records=[("aa", 1), ("ab", 2)],
            region_high="t",
            done=False,
            dedup=True,
        )
        back = decode_reply(encode_reply(reply))
        assert type(back.error) is DuplicateKeyError
        assert back.iam == [("g", "t", 5)]
        assert isinstance(back.iam[0], tuple)
        assert back.records == [("aa", 1), ("ab", 2)]
        assert (back.forwards, back.owner, back.region_high) == (2, 5, "t")
        assert (back.done, back.dedup) == (False, True)

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ProtocolError):
            decode_op(encode_value((1, 2, 3)))
        with pytest.raises(ProtocolError):
            decode_reply(encode_value("not a reply"))


# ======================================================================
# The frame envelope
# ======================================================================
class TestFrames:
    def test_pack_unpack_roundtrip(self):
        frame = pack_frame(FRAME_REQUEST, 77, b"payload")
        (length,) = _U32.unpack(frame[:4])
        assert length == len(frame) - 4
        assert unpack_frame(frame[4:]) == (FRAME_REQUEST, 77, b"payload")

    def test_foreign_wire_version_rejected(self):
        body = bytearray(pack_frame(FRAME_REQUEST, 0, b"x")[4:])
        body[0] = WIRE_VERSION + 1
        with pytest.raises(ProtocolError, match="wire version"):
            unpack_frame(bytes(body))

    def test_short_body_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_frame(b"\x01\x01")

    def test_read_frame_enforces_the_length_cap(self):
        async def oversized():
            reader = asyncio.StreamReader()
            reader.feed_data(_U32.pack(10**9))
            with pytest.raises(ProtocolError, match="exceeds"):
                await read_frame(reader, max_frame=1024)

        asyncio.new_event_loop().run_until_complete(oversized())


# ======================================================================
# A live server over a Unix-domain socket
# ======================================================================
class TestServingEndToEnd:
    def test_point_ops_and_len(self):
        with ServingFixture(Cluster(shards=2)) as fx:
            with fx.open_session() as session:
                f = session.file
                f.insert("apple", "A")
                f.put("bird", {"weight": 12})
                assert f.get("apple") == "A"
                assert f.get("bird") == {"weight": 12}
                assert f.contains("apple")
                assert not f.contains("missing")
                assert len(f) == 2
                assert f.delete("apple") == "A"
                assert len(f) == 1

    def test_typed_errors_cross_the_wire(self):
        with ServingFixture(Cluster(shards=2)) as fx:
            with fx.open_session() as session:
                f = session.file
                f.insert("apple", "A")
                with pytest.raises(DuplicateKeyError):
                    f.insert("apple", "B")
                with pytest.raises(KeyNotFoundError):
                    f.get("missing")
                assert f.get("apple") == "A"

    def test_scans_and_batches(self):
        keys = sorted(set(_keys(50)))
        with ServingFixture(Cluster(shards=3)) as fx:
            with fx.open_session() as session:
                f = session.file
                f.put_many((k, k.upper()) for k in keys)
                assert [k for k, _ in f.items()] == keys
                low, high = keys[5], keys[-5]
                expected = [k for k in keys if low <= k <= high]
                assert [k for k, _ in f.range_items(low, high)] == expected
                got = f.get_many(keys[:10] + ["nosuchkey"])
                assert got == {k: k.upper() for k in keys[:10]}

    def test_cold_client_converges_via_iams(self):
        keys = sorted(set(_keys(40)))
        with ServingFixture(Cluster(shards=4)) as fx:
            with fx.open_session() as loader:
                for key in keys:
                    loader.file.insert(key, key.upper())
            with fx.open_session() as session:
                f = session.file
                for key in keys:
                    assert f.get(key) == key.upper()
                assert f.ops_forwarded > 0  # the cold start paid forwards
                assert len(f.image) == 4    # ...and learned the partition
                f.reset_window()
                for key in keys:
                    assert f.get(key) == key.upper()
                assert f.convergence(window=True) == 1.0

    def test_distinct_sessions_get_distinct_client_ids(self):
        with ServingFixture(Cluster(shards=1)) as fx:
            a = fx.open_session()
            b = fx.open_session()
            assert a.file.client_id != b.file.client_id
            a.file.insert("apple", "A")
            b.file.insert("bird", "B")
            assert fx.server.router.duplicate_applies() == 0

    def test_unknown_shard_refused_with_typed_error(self):
        with ServingFixture(Cluster(shards=1)) as fx:
            runner, conn = fx.open_conn()
            with pytest.raises(UnknownShardError):
                runner.call(conn.request(99, Op.get("a"), 5.0), 10.0)

    def test_crash_and_restart_controls(self):
        with ServingFixture(Cluster(shards=1, durable=True)) as fx:
            runner, conn = fx.open_conn()
            with fx.open_session() as session:
                session.file.insert("apple", "A")
                runner.call(conn.control({"cmd": "crash", "shard": 0}), 10.0)
                with pytest.raises(ServerDownError):
                    runner.call(conn.request(0, Op.get("apple"), 5.0), 10.0)
                runner.call(conn.control({"cmd": "restart", "shard": 0}), 10.0)
                assert session.file.get("apple") == "A"

    def test_scale_out_behind_the_wire(self):
        keys = sorted(set(_keys(60)))
        cluster = Cluster(
            shards=1, durable=True, shard_policy=ShardPolicy(shard_capacity=16)
        )
        with ServingFixture(cluster) as fx:
            with fx.open_session() as session:
                f = session.file
                for key in keys:
                    f.insert(key, key.upper())
                stats = session.transport.control({"cmd": "stats"})
                assert stats["shards"] > 1
                assert stats["records"] == len(keys)
                assert stats["duplicate_applies"] == 0
                assert [k for k, _ in f.items()] == keys
        cluster.check()

    def test_tcp_roundtrip(self):
        cluster = Cluster(shards=2)
        runner = LoopRunner()
        server = ServingServer(cluster)
        try:
            host, port = runner.call(server.start_tcp(), DEFAULT_WALL_TIMEOUT)
            with connect(host=host, port=port) as session:
                session.file.insert("apple", "A")
                assert session.file.get("apple") == "A"
                assert len(session.file) == 1
        finally:
            runner.call(server.stop(), DEFAULT_WALL_TIMEOUT)
            runner.stop()


# ======================================================================
# Pipelining and group fsync
# ======================================================================
class TestPipelining:
    def test_gathered_burst_matches_replies_to_requests(self):
        keys = sorted(set(_keys(30)))
        with ServingFixture(Cluster(shards=3)) as fx:
            with fx.open_session() as loader:
                for key in keys:
                    loader.file.insert(key, key.upper())
            runner, conn = fx.open_conn()

            async def burst():
                return await asyncio.gather(
                    *[conn.request(0, Op.get(k), 10.0) for k in keys]
                )

            replies = runner.call(burst(), 30.0)
            # Correlation ids matched every reply to its request even
            # though all were in flight at once (and some forwarded).
            assert [r.value for r in replies] == [k.upper() for k in keys]
            assert all(r.error is None for r in replies)

    def test_pipelined_mutations_amortise_the_fsync_barrier(self):
        keys = sorted(set(_keys(40)))
        cluster = Cluster(shards=2, durable=True)
        servers = cluster.coordinator.servers

        def fsyncs():
            return sum(s.file.stable.stats.fsyncs for s in servers.values())

        with ServingFixture(cluster) as fx:
            runner, conn = fx.open_conn()
            before = fsyncs()
            grouped_before = fx.server.grouped_batches
            # Park the dispatcher so the whole burst queues up and
            # drains as few micro-batches, then fire it pipelined.
            runner.call(conn.control({"cmd": "stall", "seconds": 0.2}), 10.0)

            async def burst():
                ops = []
                for i, key in enumerate(keys):
                    op = Op.insert(key, key.upper())
                    op.rid = (999, i + 1)
                    ops.append(conn.request(0, op, 10.0))
                return await asyncio.gather(*ops)

            replies = runner.call(burst(), 30.0)
            assert all(r.error is None for r in replies)
            # Every insert is WAL-durable, but the fsync barrier was
            # paid per micro-batch per file — far fewer than one per op.
            delta = fsyncs() - before
            assert delta >= 1
            assert delta < len(keys)
            assert fx.server.grouped_batches > grouped_before
            with fx.open_session() as session:
                assert [k for k, _ in session.file.items()] == keys
            assert fx.server.router.duplicate_applies() == 0


# ======================================================================
# Deadlines over a real wire
# ======================================================================
class TestDeadlines:
    def test_stalled_server_times_out_then_retries_into_dedup(self):
        # The op deadline is a real asyncio timeout: the dispatcher is
        # parked past it, the client times out and retries, and the
        # duplicate delivery dies in the owner's dedup window once the
        # server wakes — the wire version of the ambiguous-ack story.
        cluster = Cluster(shards=1, durable=True)
        retry = RetryPolicy(
            timeout=0.15, max_retries=8, base_delay=0.05, max_delay=0.1
        )
        with ServingFixture(cluster) as fx:
            with fx.open_session(retry=retry) as session:
                session.transport.control({"cmd": "stall", "seconds": 0.6})
                session.file.insert("apple", "A")
                assert session.file.retries_total >= 1
                assert session.file.get("apple") == "A"
        assert _counter_sum(cluster.registry, "dist_dedup_hits_total") >= 1
        assert cluster.router.duplicate_applies() == 0

    def test_late_reply_is_dropped_on_the_floor(self):
        with ServingFixture(Cluster(shards=1)) as fx:
            with fx.open_session() as loader:
                loader.file.insert("apple", "A")
            runner, conn = fx.open_conn()
            runner.call(conn.control({"cmd": "stall", "seconds": 0.3}), 10.0)
            with pytest.raises(OpTimeoutError):
                runner.call(conn.request(0, Op.get("apple"), 0.05), 10.0)
            # The connection survives: the stale answer's correlation id
            # no longer has a waiter, and fresh requests are unaffected.
            reply = runner.call(conn.request(0, Op.get("apple"), 10.0), 20.0)
            assert reply.value == "A"


# ======================================================================
# Backpressure and wire damage
# ======================================================================
class TestTransportEdges:
    def test_tiny_queue_survives_a_pipelined_burst(self):
        # max_queue=2: the readers block on the bounded queue and the
        # kernel socket buffer absorbs the rest. Nothing is dropped;
        # the burst completes exactly.
        keys = sorted(set(_keys(80)))
        with ServingFixture(Cluster(shards=2), max_queue=2, batch_max=2) as fx:
            with fx.open_session() as loader:
                loader.file.put_many((k, k.upper()) for k in keys)
            runner, conn = fx.open_conn()

            async def burst():
                return await asyncio.gather(
                    *[conn.request(0, Op.get(k), 20.0) for k in keys]
                )

            replies = runner.call(burst(), 60.0)
            assert [r.value for r in replies] == [k.upper() for k in keys]

    def test_foreign_version_frame_hangs_up_the_connection(self):
        with ServingFixture(Cluster(shards=1)) as fx:
            runner, conn = fx.open_conn()
            poison = bytearray(pack_frame(FRAME_REQUEST, 0, b""))
            poison[4] = WIRE_VERSION + 1  # bytes 0-3 are the length

            async def send_poison():
                conn._writer.write(bytes(poison))
                await conn._writer.drain()

            runner.call(send_poison(), 10.0)
            # The stream can no longer be framed; the server hangs up
            # and every in-flight op surfaces as a lost message.
            with pytest.raises(MessageLostError):
                runner.call(conn.request(0, Op.get("a"), 5.0), 10.0)


# ======================================================================
# The chaos schedule over a real socket
# ======================================================================
class TestServingChaos:
    def test_chaos_converges_over_uds(self):
        report = run_chaos(
            ops=400,
            shards=2,
            seed=9,
            durable=True,
            drop=0.02,
            duplicate=0.02,
            delay=0.02,
            crash_cycles=2,
            shard_capacity=64,
            scan_every=80,
            transport="uds",
        )
        assert report.converged
        assert report.duplicate_applies == 0
        assert report.faults > 0
        assert report.retries > 0
        assert report.crashes >= 2
        assert report.recoveries >= 2

    def test_transport_argument_is_validated(self):
        with pytest.raises(ConfigurationError):
            run_chaos(ops=10, transport="carrier-pigeon")
        with pytest.raises(ConfigurationError):
            run_chaos(ops=10, transport="uds", trace_path="/tmp/x.jsonl")


# ======================================================================
# Group commit in isolation
# ======================================================================
class TestGroupCommit:
    def test_group_pays_one_fsync_and_nests(self):
        from repro.storage.recovery import DurableFile
        from repro.storage.wal import StableStore

        f = DurableFile.open(StableStore(), engine="th", capacity=8)
        base = f.stable.stats.fsyncs
        with f.group_commit():
            with f.group_commit():
                f.insert("aa", "1")
                f.insert("ab", "2")
            # The inner exit is not the barrier — only the outermost is.
            assert f.stable.stats.fsyncs == base
            f.insert("ac", "3")
        assert f.stable.stats.fsyncs == base + 1
        f.insert("ad", "4")  # outside any group: per-op durability
        assert f.stable.stats.fsyncs == base + 2
        assert f.get("aa") == "1"


# ======================================================================
# Graceful shutdown: drain, final fsync, no acked write lost
# ======================================================================
class TestGracefulShutdown:
    def test_acked_writes_survive_shutdown_and_crash(self):
        cluster = Cluster(shards=2, durable=True)
        fx = ServingFixture(cluster)
        try:
            with fx.open_session() as session:
                for i in range(40):
                    session.file.insert(f"k{chr(97 + i % 26)}{chr(97 + i // 26)}", "v")
            drained = fx.runner.call(fx.server.shutdown(), 30.0)
            assert drained >= 0
            # Every ack preceded its fsync: a crash right after the
            # graceful stop must lose nothing.
            for server in cluster.coordinator.servers.values():
                server.crash()
                server.restart()
            f = cluster.client(warm=True)
            for i in range(40):
                assert f.contains(f"k{chr(97 + i % 26)}{chr(97 + i // 26)}")
        finally:
            fx.close()  # stop() after shutdown() is a no-op

    def test_shutdown_refuses_new_connections(self):
        cluster = Cluster(shards=1)
        fx = ServingFixture(cluster)
        try:
            fx.runner.call(fx.server.shutdown(), 30.0)
            with pytest.raises((ConnectionError, OSError)):
                fx.open_conn()
        finally:
            fx.close()

    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        import os
        import pathlib
        import signal
        import subprocess
        import sys
        import time

        root = pathlib.Path(__file__).resolve().parents[1]
        sock = tmp_path / "drain.sock"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--uds", str(sock), "--shards", "2", "--replicas", "semisync",
            ],
            cwd=root,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 15.0
            while not sock.exists():
                assert proc.poll() is None, "server died before listening"
                assert time.monotonic() < deadline, "socket never appeared"
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=15.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "draining" in out
        assert "shutdown complete" in out
