"""Compact B-tree loading (/ROS81/).

A compact B-tree packs every leaf to a chosen fill (up to 100%) during an
initial sorted load, then serves reads or further (ideally random)
inserts. The paper uses it as the reference point for THCL's compact
files: back-up copies, logs, transferred files, temporaries of query
processing.

Two routes are provided:

* :func:`bulk_load_compact` — bottom-up build from a sorted sequence at
  an exact fill factor;
* incremental loading with ``BPlusTree(split_fraction=1.0)``, which the
  load-control benches exercise (the split fraction is /ROS81/'s linear
  load knob).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from ..core.errors import CapacityError
from .btree import BPlusTree
from .node import BranchNode, LeafNode

__all__ = ["bulk_load_compact"]


def bulk_load_compact(
    records: Iterable[tuple[str, object]],
    leaf_capacity: int = 20,
    branch_capacity: Optional[int] = None,
    fill: float = 1.0,
    **tree_kwargs,
) -> BPlusTree:
    """Build a B+-tree bottom-up from sorted records at fill ``fill``.

    ``records`` must be sorted by key and duplicate-free. The resulting
    tree's leaves each hold ``round(fill * leaf_capacity)`` records
    (except the last), giving a load factor of exactly ``fill`` up to
    rounding — the /ROS81/ compact B-tree.
    """
    if not 0.0 < fill <= 1.0:
        raise CapacityError("fill must be in (0, 1]")
    tree = BPlusTree(
        leaf_capacity=leaf_capacity, branch_capacity=branch_capacity, **tree_kwargs
    )
    per_leaf = max(1, round(fill * leaf_capacity))

    # Build the leaf level.
    leaves = []  # (node id, max key)
    current = tree.disk.peek(tree.root_id)  # the initial empty leaf
    current_id = tree.root_id
    count = 0
    previous_key = None
    for key, value in records:
        if previous_key is not None and key <= previous_key:
            raise CapacityError("bulk load requires sorted, unique keys")
        previous_key = key
        if len(current) >= per_leaf:
            leaves.append((current_id, current.keys[-1]))
            fresh = LeafNode()
            fresh_id = tree.pool.allocate(fresh)
            current.next_leaf = fresh_id
            fresh.prev_leaf = current_id
            tree.pool.write(current_id, current)
            current, current_id = fresh, fresh_id
        current.keys.append(key)
        current.values.append(value)
        count += 1
    tree.pool.write(current_id, current)
    leaves.append((current_id, current.keys[-1] if current.keys else ""))
    tree._size = count

    # Build branch levels bottom-up, packed to the branch capacity.
    branch_capacity = tree.branch_capacity
    level = leaves
    height = 1
    while len(level) > 1:
        next_level = []
        i = 0
        while i < len(level):
            group = level[i : i + branch_capacity + 1]
            # Avoid a trailing single-child branch: rebalance the tail.
            remaining = len(level) - i - len(group)
            if remaining == 1:
                group = group[:-1]
            node = BranchNode()
            node.children = [nid for nid, _ in group]
            node.keys = [mx for _, mx in group[:-1]]
            node_id = tree.pool.allocate(node)
            tree.pool.write(node_id, node)
            next_level.append((node_id, group[-1][1]))
            i += len(group)
        level = next_level
        height += 1
    root_id, _ = level[0]
    if tree.pin_root:
        tree.pool.unpin(tree.root_id)
        tree.pool.pin(root_id)
    tree.root_id = root_id
    tree._height = height
    return tree
