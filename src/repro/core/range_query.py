"""Range queries over a trie-hashing file.

Trie hashing preserves key order (the logical paths partition the key
space order-preservingly, Section 2.2), so a range query is a position
search followed by a walk over successive leaves. THCL's shared leaves
even make some scans cheaper: consecutive leaves carrying the same bucket
cost a single access (Section 4.1).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Optional, TYPE_CHECKING

from .cells import is_nil
from .cursor import CursorInvalidError
from .keys import prefix_gt

if TYPE_CHECKING:  # pragma: no cover
    from .file import THFile

__all__ = ["scan", "count_range"]


def scan(
    file: THFile, low: Optional[str] = None, high: Optional[str] = None
) -> Iterator[tuple[str, object]]:
    """Yield records with ``low <= key <= high`` in key order.

    Bounds are inclusive; ``None`` means open. Buckets are read through
    the metered store, so the caller can measure the paper's range-query
    access costs directly.

    The scan snapshots the file's structure generation when iteration
    starts; a split or merge under a live scan raises
    :class:`~repro.core.cursor.CursorInvalidError` (the cursor's
    contract) instead of silently skipping or duplicating records.
    """
    alphabet = file.alphabet
    if low is not None:
        low = alphabet.validate_key(low)
    if high is not None:
        high = alphabet.validate_key(high)
    if low is not None and high is not None and low > high:
        return

    generation = file.structure_generation

    def check_fresh() -> None:
        if file.structure_generation != generation:
            raise CursorInvalidError(
                "the file split or merged buckets during this scan"
            )

    previous = None
    for _, ptr, path in file.trie.leaves_in_order():
        if low is not None and prefix_gt(low, path, alphabet):
            continue  # this leaf's whole range lies below the low bound
        if is_nil(ptr) or ptr == previous:
            continue
        previous = ptr
        check_fresh()
        bucket = file.store.read(ptr)
        keys = bucket.keys
        begin = 0 if low is None else bisect.bisect_left(keys, low)
        for i in range(begin, len(keys)):
            check_fresh()
            if high is not None and keys[i] > high:
                return
            yield keys[i], bucket.values[i]


def count_range(
    file: THFile, low: Optional[str] = None, high: Optional[str] = None
) -> int:
    """Number of records in the (inclusive) key range."""
    return sum(1 for _ in scan(file, low, high))
