"""Unit tests for ordered alphabets."""

import pytest

from repro import ALPHANUMERIC, LOWERCASE, PRINTABLE, Alphabet, InvalidKeyError


class TestConstruction:
    def test_lowercase_contains_space_and_letters(self):
        assert " " in LOWERCASE
        assert "a" in LOWERCASE
        assert "z" in LOWERCASE
        assert len(LOWERCASE) == 27

    def test_min_and_max_digits(self):
        assert LOWERCASE.min_digit == " "
        assert LOWERCASE.max_digit == "z"
        assert PRINTABLE.min_digit == " "
        assert PRINTABLE.max_digit == "~"

    def test_rejects_out_of_order_digits(self):
        with pytest.raises(InvalidKeyError):
            Alphabet("ba")

    def test_rejects_duplicate_digits(self):
        with pytest.raises(InvalidKeyError):
            Alphabet("aab")

    def test_rejects_single_digit(self):
        with pytest.raises(InvalidKeyError):
            Alphabet("a")

    def test_rejects_multicharacter_digits(self):
        with pytest.raises(InvalidKeyError):
            Alphabet(["ab", "cd"])

    def test_custom_alphabet(self):
        binary = Alphabet("01")
        assert binary.min_digit == "0"
        assert binary.max_digit == "1"
        assert len(binary) == 2

    def test_equality_and_hash(self):
        assert Alphabet(" ab") == Alphabet(" ab")
        assert Alphabet(" ab") != Alphabet(" ac")
        assert hash(Alphabet(" ab")) == hash(Alphabet(" ab"))

    def test_iteration_order(self):
        assert list(Alphabet("abc")) == ["a", "b", "c"]


class TestDigitOperations:
    def test_index(self):
        assert LOWERCASE.index(" ") == 0
        assert LOWERCASE.index("a") == 1
        assert LOWERCASE.index("z") == 26

    def test_index_rejects_foreign_digit(self):
        with pytest.raises(InvalidKeyError):
            LOWERCASE.index("A")

    def test_successor_predecessor(self):
        assert LOWERCASE.successor("a") == "b"
        assert LOWERCASE.predecessor("b") == "a"
        assert LOWERCASE.successor(" ") == "a"

    def test_successor_of_max_fails(self):
        with pytest.raises(InvalidKeyError):
            LOWERCASE.successor("z")

    def test_predecessor_of_min_fails(self):
        with pytest.raises(InvalidKeyError):
            LOWERCASE.predecessor(" ")

    def test_digit_at_pads_with_space(self):
        assert LOWERCASE.digit_at("ab", 0) == "a"
        assert LOWERCASE.digit_at("ab", 1) == "b"
        assert LOWERCASE.digit_at("ab", 2) == " "
        assert LOWERCASE.digit_at("ab", 99) == " "


class TestKeyValidation:
    def test_canonicalises_trailing_spaces(self):
        assert LOWERCASE.validate_key("abc  ") == "abc"

    def test_rejects_empty(self):
        with pytest.raises(InvalidKeyError):
            LOWERCASE.validate_key("")

    def test_rejects_all_spaces(self):
        with pytest.raises(InvalidKeyError):
            LOWERCASE.validate_key("   ")

    def test_rejects_foreign_digits(self):
        with pytest.raises(InvalidKeyError):
            LOWERCASE.validate_key("aBc")
        with pytest.raises(InvalidKeyError):
            LOWERCASE.validate_key("a1c")

    def test_rejects_non_string(self):
        with pytest.raises(InvalidKeyError):
            LOWERCASE.validate_key(42)

    def test_interior_space_is_a_digit(self):
        # Space is a legitimate digit anywhere but the tail.
        assert LOWERCASE.validate_key("a b") == "a b"

    def test_alphanumeric_accepts_digits(self):
        assert ALPHANUMERIC.validate_key("abc123") == "abc123"
