"""Section 6 future work: the multikey case vs grid files.

The paper expects digit tries to offer "an alternative to the grid
files without the phenomenon of exponential growth of the directory".
Expected shape: the grid directory (a cross product of per-dimension
scales) outgrows the interleaved trie's cell count at every skew level,
and the gap widens as the data gets more skewed, with a large share of
the grid directory pointing at empty cells.
"""

from conftest import once

from repro.analysis import multikey_grid_table


def test_multikey_vs_grid(benchmark, report):
    rows = once(
        benchmark,
        lambda: multikey_grid_table(
            count=2000, bucket_capacity=8, concentrations=(0.0, 1.5, 3.0)
        ),
    )
    report(
        "multikey_grid",
        rows,
        "Multikey TH (interleaved) vs grid-file directory model",
    )
    for r in rows:
        assert r["grid_directory"] > r["trie_cells"]
        assert r["rect_matches"] <= r["rect_scanned"]
        # A large share of the grid directory points at empty cells.
        assert r["grid_occupied"] < r["grid_directory"]
    # The directory stays several times the trie at every skew level
    # (the skew-trend direction is scale-dependent; see EXPERIMENTS.md).
    assert min(r["ratio"] for r in rows) > 3
