"""The client-side distributed file: THFile semantics over shards.

A :class:`DistributedFile` exposes the single-node
:class:`~repro.core.file.THFile` record API — ``insert`` / ``put`` /
``get`` / ``contains`` / ``delete`` / ``range_items`` — but routes every
operation through its cached :class:`~repro.core.image.TrieImage`. The
image may be arbitrarily stale (a cold client believes the whole key
space lives on shard 0); servers forward misaddressed operations and the
reply's IAM refines the image, so the miss rate decays as the client
works — the TH* convergence property, which :meth:`convergence`
measures and reports through :mod:`repro.obs`.

Under a faulty fabric the client is also the resilience layer. Every
delivery runs inside a retry loop governed by a
:class:`~repro.distributed.faults.RetryPolicy`: transient failures
(:class:`~repro.distributed.errors.RetryableError` — lost messages,
timeouts, a crashed server) are retried with capped exponential backoff
plus jitter, up to a bounded budget, after which the typed
:class:`~repro.distributed.errors.ShardUnavailableError` surfaces with
the last transport error chained. Retries are **exactly-once** for
mutating operations: each logical mutation is stamped once with a
per-client monotonic request id, every redelivery carries the same id,
and the owning server's dedup window short-circuits duplicates (see
:mod:`repro.storage.dedup`).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable, Iterator
from typing import Optional

from ..core.image import TrieImage
from ..obs.metrics import LATENCY_BUCKETS
from ..obs.tracer import TRACER
from .errors import (
    ConfigurationError,
    ReplicaStaleError,
    RetryableError,
    ShardUnavailableError,
)
from .faults import RetryPolicy
from .messages import MUTATING_OPS, Op, Reply, rid_str

__all__ = ["DistributedFile"]


class DistributedFile:
    """A client handle on a :class:`~repro.distributed.coordinator.Cluster`.

    Obtain one from :meth:`Cluster.client` — cold (blank image, the TH*
    initial state) or warm (a snapshot of the current partition).

    The client is written against the
    :class:`~repro.distributed.transport.Transport` seam: everything it
    needs from ``cluster`` is a transport (``cluster.router``), the
    alphabet, a metrics registry, and coordinator *metadata* (the first
    shard id for a cold image, the record total for ``len``). It never
    reaches into server objects, so the same class serves records over
    the in-process fabric and over a real socket — see
    :func:`repro.serving.connect`, which hands it a
    :class:`~repro.serving.client.RemoteTransport` bound to a live
    ``trie-hashing serve`` process instead.
    """

    def __init__(
        self,
        cluster,
        image: Optional[TrieImage] = None,
        client_id: int = 0,
        retry: Optional[RetryPolicy] = None,
        read_preference: str = "primary",
    ):
        if read_preference not in ("primary", "replica"):
            raise ConfigurationError(
                "read_preference must be 'primary' or 'replica', "
                f"got {read_preference!r}"
            )
        self.cluster = cluster
        self.router = cluster.router
        self.alphabet = cluster.alphabet
        self.client_id = client_id
        self.retry = retry if retry is not None else RetryPolicy()
        #: Scan-leg routing: ``"replica"`` tries the region owner's
        #: backup first and falls back to the primary on staleness.
        self.read_preference = read_preference
        self.replica_fallbacks = 0
        if image is None:
            # The TH* initial image: one region, assumed on the first shard.
            first = min(cluster.coordinator.servers)
            image = TrieImage(self.alphabet, (), (first,))
        self.image = image
        # Lifetime and windowed convergence counters: an op "resolves
        # without forwarding" when the image addressed the owner directly.
        self.ops_total = 0
        self.ops_forwarded = 0
        self.window_total = 0
        self.window_forwarded = 0
        self.iam_boundaries = 0
        self.retries_total = 0
        self._seq = 0
        self._rng = random.Random(client_id)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _fresh_rid(self) -> tuple[int, int]:
        """The next request id — one per *logical* mutating operation."""
        self._seq += 1
        return (self.client_id, self._seq)

    def _send(self, op: Op, shard_for: Callable[[], int]) -> Reply:
        """Deliver ``op``, retrying transient faults within the policy.

        With tracing on, the whole delivery — every retry included —
        runs inside one ``client_<kind>`` span that roots the op's
        causal tree; each attempt stamps the span's context onto the op
        so every server-side span (including redeliveries the fabric
        duplicates) parents back under this root.

        ``shard_for`` re-derives the target from the (possibly patched)
        image on every attempt. Non-transient errors — routing bugs,
        protocol violations — propagate immediately; transient ones are
        retried until the budget is spent, then surface as
        :class:`ShardUnavailableError` with the last failure chained.
        """
        if not TRACER.enabled:
            return self._send_inner(op, shard_for)
        fields: dict[str, object] = {"client": self.client_id}
        if op.key is not None:
            fields["key"] = op.key
        rid = rid_str(op.rid)
        if rid is not None:
            fields["rid"] = rid
        with TRACER.span("client_" + op.kind, **fields):
            return self._send_inner(op, shard_for)

    def _send_inner(self, op: Op, shard_for: Callable[[], int]) -> Reply:
        policy = self.retry
        registry = self.cluster.registry
        start = getattr(self.router, "now", None)
        attempt = 0
        while True:
            if TRACER.enabled:
                # Stamp per attempt, not per op: a forward overwrites
                # the context with the forwarding server's span, and the
                # next retry must parent under the client root again.
                ctx = TRACER.current_context()
                if ctx is not None:
                    op.ctx = ctx.to_wire()
            try:
                reply = self.router.client_send(
                    shard_for(), op, timeout=policy.timeout
                )
            except RetryableError as exc:
                attempt += 1
                if attempt > policy.max_retries:
                    raise ShardUnavailableError(
                        f"{op.kind} gave up after {attempt} attempts: {exc}"
                    ) from exc
                reason = type(exc).__name__
                self.retries_total += 1
                registry.counter(
                    "dist_retries_total", {"op": op.kind, "reason": reason}
                ).inc()
                if TRACER.enabled:
                    TRACER.emit(
                        "op_retry",
                        client=self.client_id,
                        op=op.kind,
                        attempt=attempt,
                        reason=reason,
                    )
                self.router.sleep(policy.backoff(attempt, self._rng))
                continue
            if start is not None:
                registry.histogram(
                    "dist_op_seconds", bounds=LATENCY_BUCKETS
                ).observe(self.router.now - start)
            return reply

    def _absorb(self, reply: Reply) -> None:
        registry = self.cluster.registry
        # The IAM is authoritative whatever the outcome — a reply whose
        # operation failed (duplicate key, missing key) still teaches
        # the client the true region cuts.
        learned = self.image.patch(reply.iam)
        self.iam_boundaries += learned
        if learned:
            registry.counter(
                "dist_iam_boundaries_total", {"client": self.client_id}
            ).inc(learned)
        if reply.error is not None:
            # Only resolved operations count toward convergence: an
            # errored reply measures the keyspace, not the routing.
            return
        self.ops_total += 1
        self.window_total += 1
        routed = "direct"
        if reply.forwards:
            self.ops_forwarded += 1
            self.window_forwarded += 1
            routed = "forwarded"
        registry.counter(
            "dist_client_ops_total", {"client": self.client_id, "routed": routed}
        ).inc()
        registry.gauge(
            "dist_client_convergence", {"client": self.client_id}
        ).set(self.convergence())

    def _point(self, op: Op) -> object:
        if op.kind in MUTATING_OPS:
            op.rid = self._fresh_rid()
        reply = self._send(op, lambda: self.image.shard_for_key(op.key))
        self._absorb(reply)
        if reply.error is not None:
            raise reply.error
        return reply.value

    # ------------------------------------------------------------------
    # The record API (THFile-compatible)
    # ------------------------------------------------------------------
    def insert(self, key: str, value: object = None) -> None:
        """Insert a new record; raises ``DuplicateKeyError`` if present."""
        self._point(Op.insert(self.alphabet.validate_key(key), value))

    def put(self, key: str, value: object = None) -> None:
        """Insert or overwrite the record under ``key``."""
        self._point(Op.put(self.alphabet.validate_key(key), value))

    def get(self, key: str) -> object:
        """Return the value stored under ``key``."""
        return self._point(Op.get(self.alphabet.validate_key(key)))

    def contains(self, key: str) -> bool:
        """True when ``key`` is stored in the file."""
        return bool(self._point(Op.contains(self.alphabet.validate_key(key))))

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def delete(self, key: str) -> object:
        """Remove ``key``'s record and return its value."""
        return self._point(Op.delete(self.alphabet.validate_key(key)))

    def __len__(self) -> int:
        """Record count (authoritative metadata, not a routed op)."""
        return self.cluster.coordinator.total_records()

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------
    def _batch_rounds(
        self, pending: list, send_round, resume_on_error: bool = False
    ) -> None:
        """Drive a batch to completion through leftover re-batching.

        Each round groups ``pending`` by the *image's* shard for the
        first element's key and sends one leg per shard; whatever a
        shard does not own comes back as leftovers alongside IAM entries
        for every region the leg touched, so the next round addresses
        the true owners. With an authoritative coordinator one extra
        round always suffices; the progress guard catches a wedged image
        (a round that shrinks nothing) and is defensive only.

        ``resume_on_error`` is for idempotent (read) batches: a leg that
        exhausts its retry budget parks its keys back in ``pending`` so
        the other legs still make progress, instead of abandoning the
        whole batch. Mutating batches must stay fail-fast — re-sending
        an exhausted leg would travel under a fresh request id, and
        "maybe applied, retry anyway" is exactly what the exactly-once
        protocol exists to rule out.

        When the guard does fire, the error carries a bounded sample of
        the unplaced keys and chains the last leg failure (if any) as
        ``__cause__``, so a wedged image is diagnosable from the
        exception alone.
        """
        rounds = 0
        last_error: Optional[ShardUnavailableError] = None
        while pending:
            rounds += 1
            groups: dict[int, list] = {}
            for entry in pending:
                key = entry[0] if isinstance(entry, tuple) else entry
                groups.setdefault(self.image.shard_for_key(key), []).append(entry)
            before = len(pending)
            pending = []
            for shard, batch in sorted(groups.items()):
                try:
                    pending.extend(send_round(batch))
                except ShardUnavailableError as exc:
                    if not resume_on_error:
                        raise
                    last_error = exc
                    pending.extend(batch)
            if pending and len(pending) >= before and rounds > len(self.image) + 2:
                sample = sorted(
                    entry[0] if isinstance(entry, tuple) else entry
                    for entry in pending[:8]
                )
                raise ShardUnavailableError(
                    f"batch made no routing progress after {rounds} rounds "
                    f"({len(pending)} keys unplaced; sample: {sample!r})"
                ) from last_error

    def get_many(self, keys: Iterable[str]) -> dict[str, object]:
        """Batched :meth:`get`: one routed leg per shard touched.

        Returns ``{key: value}`` for the keys that exist; absent keys
        are simply omitted (no :class:`KeyNotFoundError`), matching
        :meth:`THFile.get_many <repro.core.file.THFile.get_many>`.

        Reads are idempotent, so an unreachable shard only parks its
        own leg: the other legs complete, and the batch surfaces
        :class:`ShardUnavailableError` (with the leg failure chained)
        only once no round can make progress.
        """
        out: dict[str, object] = {}
        pending = sorted({self.alphabet.validate_key(k) for k in keys})

        def send_round(batch: list) -> list:
            op = Op.get_many(batch)
            reply = self._send(
                op, lambda: self.image.shard_for_key(batch[0])
            )
            self._absorb(reply)
            if reply.error is not None:  # pragma: no cover - defensive
                raise reply.error
            out.update(reply.value)
            return reply.records or []

        self._batch_rounds(pending, send_round, resume_on_error=True)
        return out

    def put_many(self, items: Iterable[tuple[str, object]]) -> None:
        """Batched :meth:`put`: per-shard legs, one request id per leg.

        Duplicate keys collapse last-wins before routing (the
        :meth:`THFile.put_many <repro.core.file.THFile.put_many>`
        contract). Every leg is stamped with its own fresh request id,
        so a retried leg short-circuits on the owner's dedup window
        while re-batched leftovers travel under new ids.
        """
        last_wins: dict[str, object] = {}
        for key, value in items:
            last_wins[self.alphabet.validate_key(key)] = value
        pending = sorted(last_wins.items())

        def send_round(batch: list) -> list:
            op = Op.put_many(batch)
            op.rid = self._fresh_rid()
            reply = self._send(
                op, lambda: self.image.shard_for_key(batch[0][0])
            )
            self._absorb(reply)
            if reply.error is not None:  # pragma: no cover - defensive
                raise reply.error
            return reply.records or []

        self._batch_rounds(pending, send_round)

    # ------------------------------------------------------------------
    # Ordered access
    # ------------------------------------------------------------------
    def range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, object]]:
        """Records with ``low <= key <= high`` in key order.

        The scan walks the authoritative regions left to right, one
        routed leg per region; each leg is addressed with the client's
        image (and counted toward convergence), and its IAM teaches the
        client the region's true cuts. Legs retry like point ops; a leg
        that repeats after a lost reply re-reads its region, which is
        safe — scans mutate nothing.
        """
        if low is not None:
            low = self.alphabet.validate_key(low)
        if high is not None:
            high = self.alphabet.validate_key(high)
        if low is not None and high is not None and low > high:
            return
        after: Optional[str] = None
        first = True
        while True:
            if first:
                def shard_for() -> int:
                    return (
                        self.image.shard_for_key(low)
                        if low is not None
                        else self.image.shards[0]
                    )
            else:
                def shard_for(after=after) -> int:
                    return self.image.shards[self.image.gap_above(after)]
            op = Op.scan(low, high, after)
            if self.read_preference == "replica":
                reply = self._scan_leg_replica(op, shard_for)
            else:
                reply = self._send(op, shard_for)
            self._absorb(reply)
            if reply.error is not None:
                # An errored leg measured the keyspace, not the routing:
                # _absorb already excluded it from convergence; surface
                # it exactly as the shard raised it.
                raise reply.error
            yield from reply.records
            if reply.done:
                return
            after = reply.region_high
            first = False

    def _replica_for(self, shard_id: int) -> Optional[int]:
        """The live backup shadowing ``shard_id`` (None when unknown)."""
        resolve = getattr(self.cluster.coordinator, "replica_of", None)
        if resolve is None:
            return None
        return resolve(shard_id)

    def _scan_leg_replica(self, op: Op, shard_for: Callable[[], int]) -> Reply:
        """One scan leg with replica preference.

        Resolves the (image-guessed) region owner's backup and sends
        the leg there. A replica that cannot serve — stale beyond its
        bound, shadowing a different owner, crashed — falls back to the
        primary path for this leg only; the preference stands for the
        next leg.
        """
        replica = self._replica_for(shard_for())
        if replica is None:
            return self._send(op, shard_for)
        try:
            return self._send(op, lambda: replica)
        except (ReplicaStaleError, ShardUnavailableError):
            self.replica_fallbacks += 1
            self.cluster.registry.counter(
                "dist_replica_fallbacks_total"
            ).inc()
            return self._send(op, shard_for)

    def items(self) -> Iterator[tuple[str, object]]:
        """Iterate every record in key order."""
        return self.range_items()

    def keys(self) -> Iterator[str]:
        """Iterate every key in order."""
        for key, _ in self.range_items():
            yield key

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def convergence(self, window: bool = False) -> float:
        """Fraction of ops the image addressed without a forward.

        ``window=True`` restricts to the ops since the last
        :meth:`reset_window` (how the warm-up criterion is measured).
        """
        total = self.window_total if window else self.ops_total
        missed = self.window_forwarded if window else self.ops_forwarded
        return 1.0 if total == 0 else 1.0 - missed / total

    def reset_window(self) -> None:
        """Start a fresh convergence measurement window."""
        self.window_total = 0
        self.window_forwarded = 0

    def stats(self) -> dict:
        """The client's routing counters as a plain dict."""
        return {
            "ops": self.ops_total,
            "forwarded": self.ops_forwarded,
            "iam_boundaries": self.iam_boundaries,
            "retries": self.retries_total,
            "convergence": round(self.convergence(), 4),
            "image_regions": len(self.image),
        }
