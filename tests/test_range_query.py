"""Range query tests (order preservation, Section 2.2)."""

import pytest

from repro import SplitPolicy, THFile
from repro.core.range_query import count_range


def build(keys, policy=None, b=6):
    f = THFile(bucket_capacity=b, policy=policy)
    for i, k in enumerate(keys):
        f.insert(k, i)
    return f


class TestBasicRanges:
    def test_full_scan(self, small_keys):
        f = build(small_keys)
        assert [k for k, _ in f.range_items()] == sorted(small_keys)

    def test_closed_range(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        lo, hi = s[30], s[200]
        assert [k for k, _ in f.range_items(lo, hi)] == s[30:201]

    def test_bounds_inclusive(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        out = [k for k, _ in f.range_items(s[5], s[5])]
        assert out == [s[5]]

    def test_open_low(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        assert [k for k, _ in f.range_items(None, s[50])] == s[:51]

    def test_open_high(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        assert [k for k, _ in f.range_items(s[250], None)] == s[250:]

    def test_bounds_need_not_be_stored(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        lo = s[30] + "a"  # strictly between s[30] and its successor
        out = [k for k, _ in f.range_items(lo, s[200])]
        assert out == s[31:201]

    def test_empty_range(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        assert list(f.range_items(s[10], s[5])) == []

    def test_values_travel_with_keys(self, small_keys):
        f = build(small_keys)
        lookup = {k: i for i, k in enumerate(small_keys)}
        for k, v in f.range_items():
            assert lookup[k] == v

    def test_count_range(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        assert count_range(f, s[0], s[-1]) == len(s)
        assert count_range(f, s[10], s[19]) == 10


class TestAcrossPolicies:
    @pytest.mark.parametrize(
        "policy",
        [
            None,
            SplitPolicy.thcl(),
            SplitPolicy.thcl_ascending(0),
            SplitPolicy.thcl_redistributing(),
        ],
        ids=["basic", "thcl", "compact", "redistributing"],
    )
    def test_ranges_identical_across_policies(self, policy, sorted_keys):
        f = build(sorted_keys, policy=policy)
        s = sorted_keys
        assert [k for k, _ in f.range_items(s[17], s[170])] == s[17:171]

    def test_range_through_nil_leaves(self):
        # Basic m=b splits create nil leaves; ranges must skip them.
        f = build(
            ["oaaa", "obbb", "osza", "oszc", "oszh", "ota", "oza"],
            policy=SplitPolicy(split_position=-1),
            b=4,
        )
        assert f.nil_leaf_fraction() > 0
        out = [k for k, _ in f.range_items("oa", "ozz")]
        assert out == sorted(["oaaa", "obbb", "osza", "oszc", "oszh", "ota", "oza"])


class TestAccessCosts:
    def test_shared_leaf_buckets_read_once(self, sorted_keys):
        # THCL compact: several leaves share buckets; a scan still reads
        # each bucket exactly once.
        f = build(sorted_keys, policy=SplitPolicy.thcl_ascending(0), b=10)
        reads_before = f.store.disk.stats.reads
        list(f.range_items())
        reads = f.store.disk.stats.reads - reads_before
        assert reads == f.bucket_count()

    def test_narrow_range_reads_few_buckets(self, sorted_keys):
        f = build(sorted_keys, b=10)
        s = sorted_keys
        reads_before = f.store.disk.stats.reads
        list(f.range_items(s[40], s[45]))
        assert f.store.disk.stats.reads - reads_before <= 3

    def test_compact_file_scans_fewer_buckets(self, sorted_keys):
        # The paper: high load improves range-query efficiency.
        half = build(sorted_keys, policy=SplitPolicy.thcl_guaranteed_half(), b=10)
        full = build(sorted_keys, policy=SplitPolicy.thcl_ascending(0), b=10)
        def scan_cost(f):
            before = f.store.disk.stats.reads
            list(f.range_items())
            return f.store.disk.stats.reads - before
        assert scan_cost(full) < scan_cost(half)


class TestScanStaleness:
    """Regression: a split/merge under a live scan must raise, not skip.

    ``scan`` snapshots ``structure_generation`` when iteration starts and
    raises the cursor's ``CursorInvalidError`` on the next step after any
    structural change (the old code silently skipped or duplicated
    records read through stale leaf pointers).
    """

    def test_split_mid_scan_raises(self, small_keys):
        from repro.core.cursor import CursorInvalidError

        f = build(small_keys)
        it = f.range_items()
        for _ in range(3):
            next(it)
        before = f.structure_generation
        i = 0
        extra = ["zzz" + c for c in "abcdefghijklmnop"]
        while f.structure_generation == before and i < len(extra):
            f.insert(extra[i])
            i += 1
        assert f.structure_generation > before
        with pytest.raises(CursorInvalidError):
            next(it)

    def test_merge_mid_scan_raises(self, small_keys):
        from repro.core.cursor import CursorInvalidError

        f = build(small_keys, policy=SplitPolicy.thcl(), b=4)
        it = f.range_items()
        next(it)
        before = f.structure_generation
        for k in sorted(small_keys, reverse=True):
            f.delete(k)
            if f.structure_generation > before:
                break
        assert f.structure_generation > before
        with pytest.raises(CursorInvalidError):
            next(it)

    def test_value_updates_keep_scan_alive(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        it = f.range_items()
        next(it)
        f.put(s[-1], "rewritten")  # no structural change
        assert [k for k, _ in it] == s[1:]

    def test_structural_change_before_first_step_raises(self, small_keys):
        # The generation is snapshotted lazily at the first next(); a
        # change after that first step still invalidates the iterator.
        from repro.core.cursor import CursorInvalidError

        f = build(small_keys)
        it = f.range_items()
        next(it)
        before = f.structure_generation
        i = 0
        extra = ["zz" + c for c in "abcdefghijklmnopqrstuv"]
        while f.structure_generation == before and i < len(extra):
            f.insert(extra[i])
            i += 1
        with pytest.raises(CursorInvalidError):
            list(it)
