"""Fault-injection tests: storage errors surface cleanly and recovery
via trie reconstruction works."""

import pytest

from repro import StorageError, THFile
from repro.core.reconstruct import reconstruct_trie
from repro.obs.tracer import trace
from repro.storage.buckets import BucketStore
from repro.storage.faults import FaultyDisk


def faulty_file(keys, b=6):
    disk = FaultyDisk()
    f = THFile(bucket_capacity=b, store=BucketStore(disk))
    for k in keys:
        f.insert(k)
    return f, disk


class TestFaultyDisk:
    def test_fail_on_specific_access(self):
        disk = FaultyDisk()
        block = disk.allocate("x")
        disk.fail_on_access(2)
        disk.read(block)  # access 1: fine
        with pytest.raises(StorageError):
            disk.read(block)  # access 2: injected
        disk.read(block)  # access 3: fine again
        assert disk.faults_raised == 1

    def test_fail_block(self):
        disk = FaultyDisk()
        good = disk.allocate("a")
        bad = disk.allocate("b")
        disk.fail_block(bad)
        assert disk.read(good) == "a"
        with pytest.raises(StorageError):
            disk.read(bad)
        disk.heal()
        assert disk.read(bad) == "b"

    def test_fail_from_now_on(self):
        disk = FaultyDisk()
        block = disk.allocate("x")
        disk.read(block)
        disk.fail_from_now_on()
        with pytest.raises(StorageError):
            disk.read(block)
        with pytest.raises(StorageError):
            disk.write(block, "y")
        disk.heal()
        assert disk.read(block) == "x"  # failed write never landed

    def test_failed_write_preserves_payload(self):
        disk = FaultyDisk()
        block = disk.allocate("before")
        disk.fail_on_access(1)
        with pytest.raises(StorageError):
            disk.write(block, "after")
        assert disk.peek(block) == "before"


class TestFileUnderFaults:
    def test_search_error_propagates(self, generator):
        f, disk = faulty_file(generator.uniform(100))
        disk.fail_from_now_on()
        with pytest.raises(StorageError):
            f.get(generator.uniform(100)[0])
        disk.heal()
        assert f.contains(generator.uniform(100)[0])

    def test_insert_retries_after_heal(self, generator):
        keys = generator.uniform(100)
        f, disk = faulty_file(keys)
        disk.fail_from_now_on()
        with pytest.raises(StorageError):
            f.insert("zzzzzz")
        disk.heal()
        # The failed insert never reached a bucket; retry succeeds.
        if not f.contains("zzzzzz"):
            f.insert("zzzzzz")
        assert f.contains("zzzzzz")

    def test_crash_then_reconstruct(self, generator):
        keys = generator.uniform(300)
        f, disk = faulty_file(keys)
        # Lose the in-core trie (a crash) while the disk stays intact.
        f.trie = None
        f.trie = reconstruct_trie(f.store, f.alphabet)
        f.check()
        for k in keys[:50]:
            assert f.contains(k)

    def test_transient_read_fault_counts(self, generator):
        keys = generator.uniform(50)
        f, disk = faulty_file(keys)
        disk.fail_on_access(1)
        with pytest.raises(StorageError):
            f.get(keys[0])
        assert disk.faults_raised == 1
        assert f.get(keys[0]) is None  # next attempt fine


class TestFaultAccounting:
    def test_faults_count_in_disk_stats(self):
        disk = FaultyDisk()
        block = disk.allocate("x")
        disk.read(block)
        disk.fail_on_access(1, 2)
        for _ in range(2):
            with pytest.raises(StorageError):
                disk.read(block)
        assert disk.stats.faults == 2
        assert disk.faults_raised == disk.stats.faults
        # The rejected accesses never touched the payload, so they are
        # not reads: only the successful access counts.
        assert disk.stats.reads == 1

    def test_faults_survive_snapshot_delta_reset(self):
        disk = FaultyDisk()
        block = disk.allocate("x")
        before = disk.stats.snapshot()
        disk.fail_on_access(1)
        with pytest.raises(StorageError):
            disk.read(block)
        delta = disk.stats.delta(before)
        assert delta.faults == 1 and delta.reads == 0
        assert disk.stats.snapshot().faults == 1
        disk.stats.reset()
        assert disk.stats.faults == 0

    def test_fault_emits_obs_event(self):
        disk = FaultyDisk(name="flaky")

        class Sink:
            events = []

            def on_event(self, event):
                self.events.append(event)

        block = disk.allocate("x")
        disk.fail_block(block)
        sink = Sink()
        with trace([sink]):
            with pytest.raises(StorageError):
                disk.write(block, "y")
        faults = [e for e in sink.events if e.name == "disk_fault"]
        assert len(faults) == 1
        assert faults[0].fields["device"] == "flaky"
        assert faults[0].fields["block"] == block
        assert faults[0].fields["write"] is True

    def test_fail_on_write_of_lets_reads_through(self):
        disk = FaultyDisk()
        block = disk.allocate("before")
        disk.fail_on_write_of(block)
        assert disk.read(block) == "before"  # reads unaffected
        with pytest.raises(StorageError):
            disk.write(block, "after")
        assert disk.peek(block) == "before"
        disk.heal()
        disk.write(block, "after")
        assert disk.peek(block) == "after"


class TestDurableSessionUnderDeviceFaults:
    def _durable_th_on_faulty_disk(self, capacity=4):
        """A durable TH file whose bucket device is a FaultyDisk."""
        from repro.storage.recovery import DurableFile
        from repro.storage.wal import StableStore

        stable = StableStore()
        f = DurableFile.open(stable, engine="th", capacity=capacity)
        old = f.file.store.disk
        faulty = FaultyDisk(name=old.name)
        faulty._blocks = old._blocks
        faulty._next_id = old._next_id
        faulty.stats = old.stats
        f.file.store.disk = faulty
        f.file.store.pool.disk = faulty
        return stable, f, faulty

    def test_device_fault_mid_split_poisons_session(self):
        """Kill one bucket write inside a split: the op must not ack.

        The in-memory structure is torn mid-change, so the session
        refuses further work; reopening the stable store recovers
        exactly the acknowledged operations.
        """
        from repro.storage.recovery import DurableFile
        from repro.storage.wal import StableStore

        stable, f, faulty = self._durable_th_on_faulty_disk(capacity=4)
        acked = {}
        doomed = None
        for key in ["ape", "bat", "cat", "dog", "eel", "fox", "gnu", "hen"]:
            # Arm the fault on the bucket the next split will allocate:
            # the first write of a fresh block id.
            if len(acked) == 4 and doomed is None:
                doomed = key
                faulty.fail_on_write_of(faulty._next_id)
            try:
                f.insert(key, key[:1])
                acked[key] = key[:1]
            except StorageError:
                assert key == doomed
                break
        assert doomed is not None and doomed not in acked
        assert faulty.stats.faults == 1
        with pytest.raises(StorageError):
            f.insert("later", "x")  # poisoned
        g = DurableFile.open(stable, engine="th", capacity=4)
        assert dict(g.items()) == acked
        g.check()
