"""Trie balancing tests (Section 2.6)."""

from repro import THFile, Trie
from repro.core.balance import balance, depth_report


class TestBalance:
    def test_mapping_preserved(self, fig1_file, words):
        balanced = balance(fig1_file.trie)
        balanced.check()
        for w in words:
            assert (
                balanced.search(w).bucket == fig1_file.trie.search(w).bucket
            )

    def test_disk_metrics_unaffected(self, fig1_file):
        trie = fig1_file.trie
        balanced = balance(trie)
        assert balanced.node_count == trie.node_count
        assert balanced.boundaries() == trie.boundaries()
        assert [p for _, p, _ in balanced.leaves_in_order()] == [
            p for _, p, _ in trie.leaves_in_order()
        ]

    def test_ordered_insertions_benefit_most(self, generator):
        keys = sorted(generator.uniform(400))
        f = THFile(bucket_capacity=4)
        for k in keys:
            f.insert(k)
        report = depth_report(f.trie)
        # Ordered insertion tries are heavily one-sided; the canonical
        # rebuild gets them near log2(M).
        assert report.depth_after < report.depth_before
        import math

        assert report.depth_after <= 4 * math.log2(report.node_count + 2)

    def test_search_cost_bounded_after_balance(self, generator):
        keys = sorted(generator.uniform(400))
        f = THFile(bucket_capacity=4)
        for k in keys:
            f.insert(k)
        balanced = balance(f.trie)
        sample = keys[::8]
        worst_before = max(f.trie.search(k).nodes_visited for k in sample)
        worst_after = max(balanced.search(k).nodes_visited for k in sample)
        # Balancing bounds the worst case by the (much smaller) depth.
        assert worst_after <= balanced.depth() <= f.trie.depth()
        assert worst_after <= worst_before

    def test_balance_already_balanced_is_stable(self, fig1_file):
        once = balance(fig1_file.trie)
        twice = balance(once)
        assert once.to_model() == twice.to_model()
        assert twice.depth() <= once.depth() + 1

    def test_skewed_picks(self, fig1_file):
        for pick in ("first", "last"):
            t = balance(fig1_file.trie, pick=pick)
            t.check()
            assert t.to_model() == fig1_file.trie.to_model()

    def test_empty_and_tiny_tries(self):
        from repro import LOWERCASE

        t = Trie(LOWERCASE)
        assert balance(t).to_model() == t.to_model()
