"""CI benchmark smoke run: small, fast, machine-readable snapshots.

Runs a trimmed version of the core and distributed workloads and writes
``BENCH_core.json`` / ``BENCH_distributed.json`` — one JSON document per
subsystem with throughput figures and the structural/convergence
metrics that should stay stable run over run. The CI job uploads both
as artifacts so regressions show up as a diffable number, without the
noise-sensitivity of full pytest-benchmark timings.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [--out-dir DIR] [--count N]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro import Cluster, ShardPolicy, THFile, __version__, bulk_load_th
from repro.core.cursor import Cursor
from repro.obs import MetricsRecorder, MetricsRegistry, TRACER
from repro.workloads import KeyGenerator


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def core_smoke(count: int) -> dict:
    """Single-node TH: insert/search/scan/cursor/bulk-load rates."""
    keys = KeyGenerator(7).uniform(count)
    ordered = sorted(keys)

    f, insert_s = _timed(lambda: _build(keys))
    probes = keys[::3]
    _, get_s = _timed(lambda: [f.get(k) for k in probes])
    lo, hi = ordered[count // 10], ordered[(9 * count) // 10]
    scanned, scan_s = _timed(lambda: sum(1 for _ in f.range_items(lo, hi)))

    def cursor_walk():
        cur = Cursor(f)
        cur.seek(lo)
        n = 0
        while cur.valid and cur.key() <= hi:
            n += 1
            cur.next()
        return n

    walked, cursor_s = _timed(cursor_walk)
    bulk, bulk_s = _timed(
        lambda: bulk_load_th(((k, None) for k in ordered), bucket_capacity=20)
    )
    return {
        "keys": count,
        "insert_ops_per_s": round(count / insert_s),
        "get_ops_per_s": round(len(probes) / get_s),
        "scan_records_per_s": round(scanned / scan_s),
        "cursor_records_per_s": round(walked / cursor_s),
        "bulk_load_ops_per_s": round(count / bulk_s),
        "load_factor": round(f.load_factor(), 4),
        "bulk_load_factor": round(bulk.load_factor(), 4),
        "trie_cells": f.trie_size(),
        "buckets": f.bucket_count(),
        "scan_records": scanned,
        "cursor_records": walked,
    }


def _build(keys):
    f = THFile(bucket_capacity=20)
    for k in keys:
        f.insert(k)
    return f


def distributed_smoke(count: int) -> dict:
    """TH* layer: routed throughput, scale-out, and image convergence."""
    registry = MetricsRegistry()
    TRACER.activate([MetricsRecorder(registry)])
    try:
        cluster = Cluster(
            shards=4,
            bucket_capacity=20,
            shard_policy=ShardPolicy(shard_capacity=max(64, count // 12)),
            registry=registry,
        )
        writer = cluster.client(warm=True)
        keys = KeyGenerator(13).uniform(count)
        _, insert_s = _timed(lambda: [writer.insert(k) for k in keys])

        cold = cluster.client()
        warmup = keys[: max(50, count // 10)]
        for k in warmup:
            cold.contains(k)
        cold.reset_window()
        _, get_s = _timed(lambda: [cold.get(k) for k in keys[::3]])
        scanned, scan_s = _timed(lambda: sum(1 for _ in cold.items()))
        cluster.check()
        snapshot = registry.snapshot()
        return {
            "keys": count,
            "insert_ops_per_s": round(count / insert_s),
            "routed_get_ops_per_s": round(len(keys[::3]) / get_s),
            "scan_records_per_s": round(scanned / scan_s),
            "shards": cluster.shard_count(),
            "writer_convergence": round(writer.convergence(), 4),
            "cold_client_window_convergence": round(
                cold.convergence(window=True), 4
            ),
            "cold_client_iam_boundaries": cold.iam_boundaries,
            "forwards_total": sum(
                v
                for k, v in snapshot["counters"].items()
                if k.startswith("dist_forwards_total")
            ),
            "shard_splits": snapshot["counters"].get(
                "dist_shard_splits_total", 0
            ),
        }
    finally:
        TRACER.deactivate()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument("--count", type=int, default=4000)
    args = parser.parse_args(argv)
    args.out_dir.mkdir(parents=True, exist_ok=True)

    meta = {
        "version": __version__,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    for name, runner in (("core", core_smoke), ("distributed", distributed_smoke)):
        result = {"benchmark": name, **meta, "results": runner(args.count)}
        path = args.out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
        print(json.dumps(result["results"], indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
