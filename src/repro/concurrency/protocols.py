"""Lock-schedule generators: what each operation would lock.

An operation's *schedule* is a list of steps:

* ``("lock", resource, LockMode)`` — must be granted before proceeding;
* ``("unlock", resource)``          — lock coupling releases early;
* ``("io",)``                       — one disk access (one time unit).

The generators execute the operation against the *real* structure (so
splits, nil allocations and path shapes are authentic) while recording
the schedule the corresponding protocol would follow:

* **TH / VID87** — one-level trie in core, cells never physically
  deleted: a search S-locks just the target bucket; an update X-locks
  the bucket; only a split additionally X-locks the allocation counter
  ``N``. No other client is ever blocked by the trie itself because a
  split appends its cell at the end of the table.
* **B+-tree, conservative lock coupling** — X-locks couple down the
  descent, releasing the ancestors once a *safe* (non-full) node is
  reached; searches S-couple. The root is therefore a contention point
  exactly as the paper argues.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..btree.btree import BPlusTree
from ..btree.node import LeafNode
from ..core.file import THFile
from .locks import LockMode

__all__ = ["th_operation_schedule", "btree_operation_schedule"]

Step = tuple


def th_operation_schedule(file: THFile, op: str, key: str) -> list[Step]:
    """Execute ``op`` on the TH file, returning the VID87 schedule."""
    key = file.alphabet.validate_key(key)
    result = file.trie.search(key)
    bucket = ("bucket", result.bucket)
    if op == "search":
        if result.bucket is None:
            return []  # nil leaf: answered from the in-core trie alone
        return [("lock", bucket, LockMode.SHARED), ("io",)]

    if op == "insert":
        if result.bucket is None:
            # Nil allocation: lock N, append the bucket, write it.
            file.insert(key)
            return [("lock", "N", LockMode.EXCLUSIVE), ("io",)]
        before = file.bucket_count()
        splits_before = file.stats.splits
        file.insert(key)
        steps: list[Step] = [("lock", bucket, LockMode.EXCLUSIVE), ("io",)]
        if file.stats.splits > splits_before or file.bucket_count() > before:
            # A split: the only extra lock is the allocation counter N;
            # the new cell is appended, blocking nobody (/VID87/).
            steps += [("lock", "N", LockMode.EXCLUSIVE), ("io",), ("io",)]
        else:
            steps += [("io",)]
        return steps

    if op == "delete":
        if result.bucket is None:
            return []
        file.delete(key)
        return [("lock", bucket, LockMode.EXCLUSIVE), ("io",), ("io",)]

    raise ValueError(f"unknown operation {op!r}")


def btree_operation_schedule(tree: BPlusTree, op: str, key: str) -> list[Step]:
    """Execute ``op`` on the B+-tree, returning the coupling schedule."""
    steps_down = tree._descend(key)
    path = [("node", node_id) for node_id, _, _ in steps_down]
    nodes = [node for _, node, _ in steps_down]

    if op == "search":
        schedule: list[Step] = []
        for i, resource in enumerate(path):
            schedule.append(("lock", resource, LockMode.SHARED))
            schedule.append(("io",))
            if i > 0:
                schedule.append(("unlock", path[i - 1]))
        return schedule

    if op == "insert":
        schedule = []
        held: list[Hashable] = []
        for i, resource in enumerate(path):
            schedule.append(("lock", resource, LockMode.EXCLUSIVE))
            schedule.append(("io",))
            held.append(resource)
            node = nodes[i]
            capacity = (
                tree.leaf_capacity
                if isinstance(node, LeafNode)
                else tree.branch_capacity
            )
            if len(node) < capacity:  # safe: ancestors cannot split
                for ancestor in held[:-1]:
                    schedule.append(("unlock", ancestor))
                held = [resource]
        splits_before = tree.splits
        tree.insert(key)
        schedule.append(("io",))  # write the leaf
        if tree.splits > splits_before:
            schedule.append(("io",))  # write the new sibling
        return schedule

    if op == "delete":
        schedule = []
        held = []
        for i, resource in enumerate(path):
            schedule.append(("lock", resource, LockMode.EXCLUSIVE))
            schedule.append(("io",))
            held.append(resource)
            node = nodes[i]
            capacity = (
                tree.leaf_capacity
                if isinstance(node, LeafNode)
                else tree.branch_capacity
            )
            if len(node) > capacity // 2:  # safe: cannot underflow up
                for ancestor in held[:-1]:
                    schedule.append(("unlock", ancestor))
                held = [resource]
        tree.delete(key)
        schedule.append(("io",))
        return schedule

    raise ValueError(f"unknown operation {op!r}")
