"""The standard (cell list) representation of a TH-trie.

Following /LIT81/ and Section 2.1 of the paper, the trie is stored as a
table of *cells*. A cell holds one internal node: the digit value ``DV``,
the digit number ``DN``, and two pointers ``LP`` and ``RP`` for the left
and right children. A pointer either designates a *leaf* (a bucket
address), an *edge* to another cell, or the *nil* value of the basic
method.

Pointer encoding
----------------
The paper encodes an edge to cell ``A`` as the negative value ``-A``; cell
0 is always the root so nothing ever points at it and the sign carries the
tag. In this implementation the root can be any cell (cells are recycled
through a free list after merges), so edges are encoded as ``-(index+1)``
and ``NIL`` is a dedicated sentinel. Leaves remain non-negative bucket
addresses. The on-disk serialiser (:mod:`repro.storage.serializer`) packs a
cell into the paper's six bytes: one for DV, one for DN, two per pointer.

This module is deliberately dumb — just the table and the pointer algebra.
All tree logic lives in :mod:`repro.core.trie`.
"""

from __future__ import annotations

from collections.abc import Iterator

from .errors import TrieCorruptionError

__all__ = [
    "NIL",
    "is_nil",
    "is_leaf",
    "is_edge",
    "edge_to",
    "edge_target",
    "leaf_bucket",
    "Cell",
    "CellTable",
]

#: The nil pointer of the basic method (no bucket allocated yet).
NIL: int = -(1 << 60)


def is_nil(ptr: int) -> bool:
    """True when ``ptr`` is the nil leaf value."""
    return ptr == NIL


def is_leaf(ptr: int) -> bool:
    """True when ``ptr`` designates a bucket address (a leaf)."""
    return ptr >= 0


def is_edge(ptr: int) -> bool:
    """True when ``ptr`` designates an edge to another cell."""
    return ptr < 0 and ptr != NIL


def edge_to(cell_index: int) -> int:
    """Encode an edge pointing at cell ``cell_index``."""
    return -(cell_index + 1)


def edge_target(ptr: int) -> int:
    """Decode the cell index an edge pointer designates."""
    if not is_edge(ptr):
        raise TrieCorruptionError(f"pointer {ptr} is not an edge")
    return -ptr - 1


def leaf_bucket(ptr: int) -> int:
    """Decode the bucket address a leaf pointer designates."""
    if not is_leaf(ptr):
        raise TrieCorruptionError(f"pointer {ptr} is not a leaf")
    return ptr


class Cell:
    """One internal node: ``(DV, DN)`` plus the two child pointers."""

    __slots__ = ("dv", "dn", "lp", "rp")

    def __init__(self, dv: str, dn: int, lp: int, rp: int):
        self.dv = dv
        self.dn = dn
        self.lp = lp
        self.rp = rp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        def show(ptr: int) -> str:
            if is_nil(ptr):
                return "nil"
            if is_leaf(ptr):
                return str(ptr)
            return f"->{edge_target(ptr)}"

        return f"Cell(({self.dv!r},{self.dn}), L={show(self.lp)}, R={show(self.rp)})"

    def child(self, side: str) -> int:
        """The pointer on ``side`` (``'L'`` or ``'R'``)."""
        return self.lp if side == "L" else self.rp

    def set_child(self, side: str, ptr: int) -> None:
        """Replace the pointer on ``side``."""
        if side == "L":
            self.lp = ptr
        else:
            self.rp = ptr


class CellTable:
    """A growable table of cells with free-list recycling.

    The paper appends new cells at the end of the table (which is what
    makes its concurrency argument work — a split never moves existing
    cells) and either compacts on deletion or merely marks cells deleted.
    We keep a free list and reuse slots, with :meth:`live_count` exposing
    the number of live cells (the trie size ``M`` of Figures 10–11).
    """

    __slots__ = ("_cells", "_free")

    def __init__(self) -> None:
        self._cells: list[Cell] = []
        self._free: list[int] = []

    def __len__(self) -> int:
        """Physical table length (including freed slots)."""
        return len(self._cells)

    def live_count(self) -> int:
        """Number of live (non-freed) cells — the trie size ``M``."""
        return len(self._cells) - len(self._free)

    def __getitem__(self, index: int) -> Cell:
        cell = self._cells[index]
        if cell is None:
            raise TrieCorruptionError(f"cell {index} was freed")
        return cell

    def allocate(self, dv: str, dn: int, lp: int, rp: int) -> int:
        """Create a cell, reusing a freed slot when available."""
        if self._free:
            index = self._free.pop()
            self._cells[index] = Cell(dv, dn, lp, rp)
            return index
        self._cells.append(Cell(dv, dn, lp, rp))
        return len(self._cells) - 1

    def free(self, index: int) -> None:
        """Release a cell back to the free list."""
        if self._cells[index] is None:
            raise TrieCorruptionError(f"cell {index} freed twice")
        self._cells[index] = None
        self._free.append(index)

    def live_items(self) -> Iterator[tuple[int, Cell]]:
        """Iterate ``(index, cell)`` over live cells, table order."""
        for index, cell in enumerate(self._cells):
            if cell is not None:
                yield index, cell
