"""A discrete-event interleaver of concurrent clients.

Each client works through its list of operation schedules. One tick of
simulated time corresponds to one disk access; lock and unlock steps are
instantaneous (in-core). A blocked client accumulates wait time until
the FIFO lock manager grants its request. At the end of an operation all
remaining locks are released.

Because both protocols acquire resources in a fixed global order (bucket
then ``N`` for TH; root-to-leaf for the B-tree) no deadlock can arise; a
watchdog still guards the loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import NamedTuple

from .locks import LockManager

__all__ = ["ConcurrencyReport", "simulate_clients"]


class ConcurrencyReport(NamedTuple):
    """Outcome of one simulation run."""

    #: Number of clients simulated.
    clients: int
    #: Operations completed.
    operations: int
    #: Total simulated ticks until the last client finished.
    makespan: int
    #: Total disk accesses performed (equal across protocols for the
    #: same logical work only if their schedules are equal - they are
    #: not, which is part of the comparison).
    io_ticks: int
    #: Ticks spent blocked on locks, summed over clients.
    wait_ticks: int
    #: Lock requests that had to queue.
    conflicts: int

    @property
    def throughput(self) -> float:
        """Operations per tick."""
        return self.operations / self.makespan if self.makespan else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of client-ticks doing useful IO."""
        total = self.clients * self.makespan
        return self.io_ticks / total if total else 0.0


class _Client:
    __slots__ = ("cid", "operations", "op_index", "step_index", "waiting")

    def __init__(self, cid: int, operations: list[list[tuple]]):
        self.cid = cid
        self.operations = operations
        self.op_index = 0
        self.step_index = 0
        self.waiting = False

    @property
    def done(self) -> bool:
        return self.op_index >= len(self.operations)


def simulate_clients(
    schedules: Sequence[list[tuple]], clients: int
) -> ConcurrencyReport:
    """Interleave the operation ``schedules`` over ``clients`` workers.

    Operations are dealt round-robin. Within a tick each client advances
    through instantaneous lock/unlock steps until it either performs one
    IO step or blocks on a lock.
    """
    manager = LockManager()
    workers = [
        _Client(cid, [schedules[i] for i in range(cid, len(schedules), clients)])
        for cid in range(clients)
    ]
    io_ticks = 0
    wait_ticks = 0
    ticks = 0
    watchdog = 0
    while any(not w.done for w in workers):
        progressed = False
        for worker in workers:
            if worker.done:
                continue
            did_io = _advance(worker, manager)
            if did_io is None:
                wait_ticks += 1
            else:
                progressed = True
                io_ticks += did_io
        ticks += 1
        if progressed:
            watchdog = 0
        else:
            watchdog += 1
            if watchdog > len(workers) + 2:
                raise RuntimeError("concurrency simulation deadlocked")
    return ConcurrencyReport(
        clients=clients,
        operations=len(schedules),
        makespan=ticks,
        io_ticks=io_ticks,
        wait_ticks=wait_ticks,
        conflicts=manager.conflicts,
    )


def _advance(worker: _Client, manager: LockManager):
    """One tick for one client; returns IO count done or None if blocked."""
    operation = worker.operations[worker.op_index]
    io_done = 0
    while True:
        if worker.step_index >= len(operation):
            manager.release_all(worker.cid)
            worker.op_index += 1
            worker.step_index = 0
            return io_done  # operation finished this tick (0 or 1 io)
        step = operation[worker.step_index]
        kind = step[0]
        if kind == "lock":
            _, resource, mode = step
            if manager.try_acquire(worker.cid, resource, mode):
                worker.step_index += 1
                continue
            if manager.holds(worker.cid, resource):
                worker.step_index += 1
                continue
            return None if io_done == 0 else io_done  # blocked
        if kind == "unlock":
            manager.release(worker.cid, step[1])
            worker.step_index += 1
            continue
        if kind == "io":
            if io_done:
                return io_done  # one IO per tick
            io_done = 1
            worker.step_index += 1
            continue
        raise ValueError(f"unknown step {step!r}")
