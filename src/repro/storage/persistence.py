"""Whole-file persistence: save and load a THFile.

The simulated disk lives in memory; this module gives it a durable form
so a built file (say, a compact back-up created by a sorted load — the
paper's motivating use case) can be written out and reopened later. The
format is a small JSON header (capacity, policy, record count) followed
by the binary trie (six bytes per cell) and length-prefixed binary
buckets; values must be strings or ``None`` (see
:mod:`repro.storage.serializer`).

No pickle is involved, so loading a file cannot execute anything.
"""

from __future__ import annotations

import dataclasses
import io
import json
import struct
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, BinaryIO, Union

if TYPE_CHECKING:  # runtime cycle: core.mlth pulls in storage
    from ..core.mlth import MLTHFile

from ..core.errors import StorageError
from ..core.file import THFile
from ..core.policies import SplitPolicy
from .buckets import BucketStore
from .serializer import (
    deserialize_bucket,
    deserialize_trie,
    serialize_bucket,
    serialize_trie,
)

__all__ = [
    "save_file",
    "load_file",
    "dump_bytes",
    "load_bytes",
    "dump_mlth_bytes",
    "load_mlth_bytes",
]

_MAGIC = b"THCL1\n"
_MAGIC_MLTH = b"MLTH1\n"


def _seal(body: bytes) -> bytes:
    """Append the image checksum (CRC32 of everything before it)."""
    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


def _unseal(data: bytes, what: str) -> bytes:
    """Verify and strip the image checksum; raise a clean StorageError."""
    if len(data) < 4:
        raise StorageError(f"not a {what}: image too short")
    body, (stored,) = data[:-4], struct.unpack(">I", data[-4:])
    if zlib.crc32(body) & 0xFFFFFFFF != stored:
        raise StorageError(
            f"corrupt {what}: checksum mismatch (truncated or altered image)"
        )
    return body


@contextmanager
def _parsing(what: str):
    """Convert low-level decoding failures into a clean StorageError.

    Without this, a truncated or bit-flipped image surfaces as a raw
    ``struct.error``/``UnicodeDecodeError``/``KeyError`` traceback from
    the codec internals; callers should only ever see StorageError.
    """
    try:
        yield
    except StorageError:
        raise
    except (
        struct.error,
        UnicodeDecodeError,
        json.JSONDecodeError,
        KeyError,
        IndexError,
        ValueError,
        TypeError,
    ) as exc:
        raise StorageError(f"corrupt {what}: {exc}") from None


def dump_bytes(file: THFile) -> bytes:
    """Serialise the whole file (trie + every bucket) to bytes."""
    out = io.BytesIO()
    out.write(_MAGIC)
    header = {
        "capacity": file.capacity,
        "records": len(file),
        "policy": dataclasses.asdict(file.policy),
        "max_address": file.store.max_address(),
        "live": file.store.live_addresses(),
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    out.write(struct.pack(">I", len(header_bytes)))
    out.write(header_bytes)
    trie_bytes = serialize_trie(file.trie)
    out.write(struct.pack(">I", len(trie_bytes)))
    out.write(trie_bytes)
    for address in file.store.live_addresses():
        bucket_bytes = serialize_bucket(file.store.peek(address))
        out.write(struct.pack(">II", address, len(bucket_bytes)))
        out.write(bucket_bytes)
    return _seal(out.getvalue())


def load_bytes(data: bytes) -> THFile:
    """Rebuild a :class:`THFile` from :func:`dump_bytes` output."""
    what = "trie-hashing file image"
    stream = io.BytesIO(_unseal(data, what))
    if stream.read(len(_MAGIC)) != _MAGIC:
        raise StorageError("not a trie-hashing file image")
    with _parsing(what):
        (header_len,) = struct.unpack(">I", stream.read(4))
        header = json.loads(stream.read(header_len).decode("utf-8"))
        (trie_len,) = struct.unpack(">I", stream.read(4))
        trie = deserialize_trie(stream.read(trie_len))

    policy = SplitPolicy(**header["policy"])
    file = THFile(
        bucket_capacity=header["capacity"], policy=policy, alphabet=trie.alphabet
    )
    file.trie = trie

    # Recreate the address space: allocate up to max_address, then free
    # the holes, so recycled addresses line up with the trie's leaves.
    store: BucketStore = file.store
    live = set(header["live"])
    for _address in range(1, header["max_address"] + 1):
        store.allocate()
    for address in range(header["max_address"] + 1):
        if address not in live:
            store.free(address)

    total = 0
    with _parsing(what):
        while True:
            chunk = stream.read(8)
            if not chunk:
                break
            address, length = struct.unpack(">II", chunk)
            bucket = deserialize_bucket(stream.read(length))
            store.write(address, bucket)
            total += len(bucket)
    if total != header["records"]:
        raise StorageError(
            f"image promised {header['records']} records, found {total}"
        )
    file._size = total
    return file


def dump_mlth_bytes(file: MLTHFile) -> bytes:
    """Serialise a :class:`~repro.core.mlth.MLTHFile` (pages + buckets).

    Pages are JSON-encodable (boundary strings, child ids, levels and
    chain links), so the whole hierarchy travels in the header; buckets
    use the binary record format.
    """
    out = io.BytesIO()
    out.write(_MAGIC_MLTH)
    pages = {
        str(pid): file.page_disk.peek(pid).to_spec()
        for pid in file._all_page_ids()
    }
    header = {
        "capacity": file.capacity,
        "page_capacity": file.page_capacity,
        "records": len(file),
        "policy": dataclasses.asdict(file.policy),
        "split_node_pick": file.split_node_pick,
        "pin_root": file.pin_root,
        "root": file.root_id,
        "pages": pages,
        "alphabet": file.alphabet.digits,
        "max_address": file.store.max_address(),
        "live": file.store.live_addresses(),
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    out.write(struct.pack(">I", len(header_bytes)))
    out.write(header_bytes)
    for address in file.store.live_addresses():
        bucket_bytes = serialize_bucket(file.store.peek(address))
        out.write(struct.pack(">II", address, len(bucket_bytes)))
        out.write(bucket_bytes)
    return _seal(out.getvalue())


def load_mlth_bytes(data: bytes) -> MLTHFile:
    """Rebuild an :class:`~repro.core.mlth.MLTHFile` from its image."""
    from ..core.alphabet import Alphabet
    from ..core.mlth import MLTHFile
    from ..core.pages import TriePage

    what = "multilevel trie-hashing file image"
    stream = io.BytesIO(_unseal(data, what))
    if stream.read(len(_MAGIC_MLTH)) != _MAGIC_MLTH:
        raise StorageError("not a multilevel trie-hashing file image")
    with _parsing(what):
        (header_len,) = struct.unpack(">I", stream.read(4))
        header = json.loads(stream.read(header_len).decode("utf-8"))

    file = MLTHFile(
        bucket_capacity=header["capacity"],
        page_capacity=header["page_capacity"],
        policy=SplitPolicy(**header["policy"]),
        alphabet=Alphabet(header["alphabet"]),
        pin_root=header["pin_root"],
        split_node_pick=header["split_node_pick"],
    )
    # Rebuild the page space: allocate ids densely up to the maximum,
    # then overwrite those the image defines (unused ids stay as junk
    # never referenced by the hierarchy).
    page_specs = {int(k): v for k, v in header["pages"].items()}
    top = max(page_specs)
    while len(file.page_disk) <= top:
        file.page_pool.allocate(TriePage(0, [], [None]))
    for pid, spec in page_specs.items():
        file.page_pool.write(pid, TriePage.from_spec(spec))
    if file.pin_root:
        file.page_pool.unpin(file.root_id)
    file.root_id = header["root"]
    if file.pin_root:
        file.page_pool.pin(file.root_id)

    store = file.store
    live = set(header["live"])
    for _address in range(1, header["max_address"] + 1):
        store.allocate()
    for address in range(header["max_address"] + 1):
        if address not in live:
            store.free(address)
    total = 0
    with _parsing(what):
        while True:
            chunk = stream.read(8)
            if not chunk:
                break
            address, length = struct.unpack(">II", chunk)
            bucket = deserialize_bucket(stream.read(length))
            store.write(address, bucket)
            total += len(bucket)
    if total != header["records"]:
        raise StorageError("record count mismatch in MLTH image")
    file._size = total
    return file


def save_file(file: THFile, target: Union[str, BinaryIO]) -> None:
    """Write the file image to a path or binary stream."""
    data = dump_bytes(file)
    if isinstance(target, str):
        with open(target, "wb") as handle:
            handle.write(data)
    else:
        target.write(data)


def load_file(source: Union[str, BinaryIO]) -> THFile:
    """Read a file image from a path or binary stream."""
    if isinstance(source, str):
        with open(source, "rb") as handle:
            return load_bytes(handle.read())
    return load_bytes(source.read())
