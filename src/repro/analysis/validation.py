"""One-command validation: does this build still reproduce the paper?

``trie-hashing validate`` runs a condensed version of every reproduced
claim and prints PASS/FAIL per item — the release-gate a downstream user
can run in under a minute, without pytest. Each check is a named
predicate over a freshly built file; sizes are reduced relative to the
benchmark harness but large enough for the statistical bands to hold.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..btree import BPlusTree
from ..core.file import THFile
from ..core.mlth import MLTHFile
from ..core.policies import SplitPolicy
from ..workloads.generators import KeyGenerator

__all__ = ["validate_all", "CLAIMS"]


def _sorted_keys(n=1500, seed=42):
    return KeyGenerator(seed).sorted_keys(n)


def _random_keys(n=1500, seed=42):
    return KeyGenerator(seed).uniform(n)


def _fill(policy, keys, b=20):
    f = THFile(b, policy)
    for k in keys:
        f.insert(k)
    return f


def _check_compact_ascending() -> bool:
    f = _fill(SplitPolicy.thcl_ascending(0), _sorted_keys())
    f.check()
    return f.load_factor() > 0.99


def _check_compact_descending() -> bool:
    f = _fill(SplitPolicy.thcl_descending(0), list(reversed(_sorted_keys())))
    f.check()
    return f.load_factor() > 0.99


def _check_guaranteed_half() -> bool:
    asc = _fill(SplitPolicy.thcl_guaranteed_half(), _sorted_keys())
    desc = _fill(
        SplitPolicy.thcl_guaranteed_half(), list(reversed(_sorted_keys()))
    )
    return asc.load_factor() >= 0.495 and desc.load_factor() >= 0.495


def _check_random_seventy() -> bool:
    f = _fill(SplitPolicy.basic_th(), _random_keys())
    return 0.60 <= f.load_factor() <= 0.78


def _check_one_access_search() -> bool:
    f = _fill(SplitPolicy.basic_th(), _random_keys())
    keys = _random_keys()
    before = f.store.disk.stats.reads
    for k in keys[:100]:
        f.get(k)
    return f.store.disk.stats.reads - before == 100


def _check_deletion_floor() -> bool:
    f = _fill(SplitPolicy.thcl(), _random_keys(), b=10)
    victims = _random_keys()
    random.Random(1).shuffle(victims)
    for k in victims[:1200]:
        f.delete(k)
    f.check()
    live = f.store.live_addresses()
    return len(live) <= 1 or min(len(f.store.peek(a)) for a in live) >= 5


def _check_redistribution_load() -> bool:
    f = _fill(SplitPolicy.thcl_redistributing(), _random_keys())
    return f.load_factor() >= 0.78


def _check_fig10_minimum() -> bool:
    keys = _sorted_keys(2500)
    sizes = []
    for d in (0, 2, 4, 6):
        policy = SplitPolicy(
            split_position=-(d + 1),
            bounding_offset=None,
            nil_nodes=False,
            merge="guaranteed",
        )
        sizes.append(_fill(policy, keys).trie_size())
    return min(sizes[1:]) < sizes[0]


def _check_mlth_two_accesses() -> bool:
    f = MLTHFile(bucket_capacity=5, page_capacity=16)
    keys = _random_keys(2500)
    for k in keys:
        f.insert(k)
    f.check()
    pages, buckets = f.search_cost(keys[0])
    return buckets == 1 and pages == f.levels() - 1


def _check_btree_comparison() -> bool:
    keys = _random_keys()
    th = _fill(SplitPolicy.basic_th(), keys)
    bt = BPlusTree(leaf_capacity=20, pin_root=False)
    for k in keys:
        bt.insert(k)
    th_reads = th.store.disk.stats.snapshot()
    th.get(keys[0])
    th_cost = th.store.disk.stats.delta(th_reads).reads
    bt_reads = bt.disk.stats.snapshot()
    bt.get(keys[0])
    bt_cost = bt.disk.stats.delta(bt_reads).reads
    return th_cost < bt_cost and 6 * th.trie_size() < bt.index_bytes()


def _check_reconstruction() -> bool:
    from ..core.reconstruct import reconstruct_trie

    f = _fill(SplitPolicy.basic_th(), _random_keys(800))
    rebuilt = reconstruct_trie(f.store, f.alphabet)
    return all(
        rebuilt.search(k).bucket == f.trie.search(k).bucket
        for k in _random_keys(800)[:200]
    )


def _check_concurrency() -> bool:
    from ..concurrency import (
        btree_operation_schedule,
        simulate_clients,
        th_operation_schedule,
    )

    gen = KeyGenerator(5)
    present = gen.uniform(600)
    fresh = gen.uniform(150, salt=2)
    f = THFile(10)
    t = BPlusTree(leaf_capacity=10)
    for k in present:
        f.insert(k)
        t.insert(k)
    th_ops = [th_operation_schedule(f, "insert", k) for k in fresh]
    bt_ops = [btree_operation_schedule(t, "insert", k) for k in fresh]
    th_report = simulate_clients(th_ops, 8)
    bt_report = simulate_clients(bt_ops, 8)
    return th_report.conflicts < bt_report.conflicts


#: Claim id -> (description, checker).
CLAIMS: dict[str, tuple] = {
    "compact-ascending": ("THCL d=0 ascending loads to 100%", _check_compact_ascending),
    "compact-descending": ("THCL d=0 descending loads to 100%", _check_compact_descending),
    "guaranteed-half": ("unexpected ordered loads hold >= 50%", _check_guaranteed_half),
    "random-seventy": ("random insertions load ~70%", _check_random_seventy),
    "one-access": ("key search costs one disk access", _check_one_access_search),
    "deletion-floor": ("deletions keep every bucket >= b//2", _check_deletion_floor),
    "redistribution": ("redistribution lifts random load toward 87%", _check_redistribution_load),
    "fig10-minimum": ("Fig 10: trie size has an interior minimum", _check_fig10_minimum),
    "mlth-two-accesses": ("MLTH: levels-1 page reads + 1 bucket read", _check_mlth_two_accesses),
    "btree-comparison": ("TH beats the B-tree on accesses and index size", _check_btree_comparison),
    "reconstruction": ("trie rebuilds from bucket headers", _check_reconstruction),
    "concurrency": ("TH out-concurs the B-tree (/VID87/)", _check_concurrency),
}


def validate_all(
    printer: Callable[[str], None] = print,
) -> list[dict[str, object]]:
    """Run every claim check; print and return the results."""
    results = []
    failures = 0
    for claim_id, (description, checker) in CLAIMS.items():
        try:
            ok = bool(checker())
        # The claim harness must survive *any* checker crash and report
        # it as a failed claim rather than abort the whole validation.
        except Exception as error:  # repro-lint: disable=TH002 -- harness boundary: a crashing claim is a failure with a reason, not an abort
            ok = False
            description = f"{description} (error: {error})"
        failures += 0 if ok else 1
        printer(f"[{'PASS' if ok else 'FAIL'}] {claim_id:20s} {description}")
        results.append({"claim": claim_id, "ok": ok, "description": description})
    printer(
        f"{len(CLAIMS) - failures}/{len(CLAIMS)} claims reproduced"
        + ("" if failures == 0 else f" - {failures} FAILED")
    )
    return results
