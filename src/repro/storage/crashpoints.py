"""Crash-point injection for the durability stack.

Two complementary harnesses over :class:`~repro.storage.wal.StableStore`:

* :class:`CrashingStore` — the *process model*: the Nth physical write
  raises :class:`~repro.core.errors.CrashError` instead of completing,
  after discarding every un-fsynced byte (optionally keeping a torn
  prefix of the payload being appended, the partially-written last
  block). The session that was running is dead — the
  :class:`~repro.storage.recovery.DurableFile` poisons itself — and the
  surviving store holds exactly what a real crash would leave, ready to
  be recovered in place.

* :class:`RecordingStableStore` — the *sweep engine*: it lets one
  workload run to completion while capturing, before every physical
  write, the durable image a crash at that instant would leave (plus
  torn-append variants: half the record, and the whole record without
  its fsync). Sweeping "crash at every Nth write" then costs one
  workload run plus one recovery per captured point, instead of
  re-running the workload once per point. Images are deduplicated by
  content fingerprint.

The crash points cover the interesting boundaries by construction: every
``append`` (record partially or fully in the page cache), every
``fsync`` (the ack barrier itself), and every ``rename``/``unlink`` of
the checkpoint protocol.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..core.errors import CrashError
from .wal import StableStore

__all__ = ["CrashPoint", "CrashingStore", "RecordingStableStore"]


class CrashPoint:
    """One captured crash opportunity: where, and what would survive."""

    __slots__ = ("index", "kind", "name", "variant", "image")

    def __init__(
        self, index: int, kind: str, name: str, variant: str, image: dict[str, bytes]
    ):
        #: Ordinal of the physical write that never completed.
        self.index = index
        #: The interrupted operation: ``append``/``fsync``/``rename``/``unlink``.
        self.kind = kind
        #: Stable-object name the interrupted operation targeted.
        self.name = name
        #: ``clean`` (nothing of the tail survives), ``torn-half`` (half
        #: the appended payload survives) or ``torn-full`` (the whole
        #: payload survives, but its fsync never happened).
        self.variant = variant
        #: The durable image; feed to :meth:`StableStore.from_snapshot`.
        self.image = image

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrashPoint(#{self.index} {self.kind} {self.name!r} {self.variant})"
        )


class CrashingStore(StableStore):
    """A stable store whose Nth physical write kills the process model.

    Parameters
    ----------
    crash_at:
        0-based ordinal (in :attr:`StableStats.write_ops`) of the
        physical write that crashes instead of completing. ``None``
        never crashes.
    torn_bytes:
        When the fatal write is an ``append``, keep this many bytes of
        its payload (on top of the full earlier unflushed tail) — the
        torn last block. 0 models a clean cache loss.

    The crash fires once; afterwards the store behaves normally, so
    recovery can run directly on the surviving object.
    """

    def __init__(self, crash_at: Optional[int] = None, torn_bytes: int = 0):
        super().__init__()
        self.crash_at = crash_at
        self.torn_bytes = torn_bytes
        self.crashes = 0

    def _physical(self, kind: str, name: str, payload: bytes = b"") -> None:
        if self.crash_at is None or self.stats.write_ops != self.crash_at:
            return
        self.crash_at = None
        self.crashes += 1
        torn = None
        if kind == "append" and self.torn_bytes > 0 and payload:
            obj = self._objects.get(name)
            tail = len(obj.data) - obj.durable if obj is not None else 0
            kept = min(len(payload), self.torn_bytes)
            # Let the torn prefix into the page cache so lose_volatile
            # can preserve it along with the earlier unflushed tail.
            if obj is None:
                from .wal import _StableObject

                obj = self._objects[name] = _StableObject(b"", durable=0)
            obj.data += payload[:kept]
            torn = (name, tail + kept)
        self.lose_volatile(torn=torn)
        raise CrashError(
            f"simulated crash at physical write #{self.stats.write_ops} "
            f"({kind} {name!r})"
        )


class RecordingStableStore(StableStore):
    """A stable store that captures every crash point of one run.

    Before each physical write it records the durable image a crash at
    that instant would leave; for appends it additionally records the
    torn variants. Distinct images only — duplicates (appends between
    fsyncs do not change the durable image) are dropped by fingerprint.
    """

    def __init__(self, torn_appends: bool = True):
        super().__init__()
        self.torn_appends = torn_appends
        self.crash_points: list[CrashPoint] = []
        self._seen: set = set()

    def _physical(self, kind: str, name: str, payload: bytes = b"") -> None:
        index = self.stats.write_ops
        self._capture(index, kind, name, "clean", None)
        if kind == "append" and self.torn_appends and payload:
            obj = self._objects.get(name)
            tail = len(obj.data) - obj.durable if obj is not None else 0
            if len(payload) > 1:
                self._capture(
                    index, kind, name, "torn-half",
                    (name, tail + len(payload) // 2, payload),
                )
            self._capture(
                index, kind, name, "torn-full", (name, tail + len(payload), payload)
            )

    def _capture(
        self,
        index: int,
        kind: str,
        name: str,
        variant: str,
        torn: Optional[tuple[str, int, bytes]],
    ) -> None:
        image: dict[str, bytes] = {}
        for oname, obj in self._objects.items():
            data = bytes(obj.data)
            keep = obj.durable
            if torn is not None and oname == torn[0]:
                data += torn[2]  # the payload of the interrupted append
                keep = obj.durable + torn[1]
            image[oname] = data[:keep]
        if torn is not None and torn[0] not in self._objects:
            image[torn[0]] = torn[2][: torn[1]]
        fingerprint = tuple(
            sorted(
                (oname, len(data), zlib.crc32(data) & 0xFFFFFFFF)
                for oname, data in image.items()
            )
        )
        if fingerprint in self._seen:
            return
        self._seen.add(fingerprint)
        self.crash_points.append(CrashPoint(index, kind, name, variant, image))
