"""Stateful (model-based) testing against a plain dict.

Hypothesis drives arbitrary interleavings of insert/put/delete/get/range
operations across the full policy matrix; after every step the file must
agree with the dictionary model, and periodically the deep structural
check must hold. A second machine runs the durable engines (TH, THCL,
MLTH) with crash/recover rules in the mix: a crash drops everything not
yet fsynced, and recovery must restore exactly the acknowledged
operations. Budgets come from the Hypothesis profiles in conftest.py
(HYPOTHESIS_PROFILE=nightly for the deep run).
"""

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DuplicateKeyError, KeyNotFoundError, SplitPolicy, THFile
from repro.check import maybe_audit
from repro.core.boundaries import gap_index
from repro.core.reconstruct import reconstruct_model
from repro.storage.recovery import DurableFile
from repro.storage.wal import StableStore

keys_st = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

POLICIES = [
    SplitPolicy.basic_th(),
    SplitPolicy(merge="rotations"),
    SplitPolicy.thcl(),
    SplitPolicy.thcl_redistributing(),
    SplitPolicy.thcl_ascending(1),
]


class FileAgainstDict(RuleBasedStateMachine):
    @initialize(
        policy_index=st.integers(min_value=0, max_value=len(POLICIES) - 1),
        capacity=st.integers(min_value=2, max_value=6),
    )
    def setup(self, policy_index, capacity):
        self.file = THFile(
            bucket_capacity=capacity, policy=POLICIES[policy_index]
        )
        self.model = {}
        self.steps = 0

    @rule(key=keys_st, value=st.integers())
    def insert(self, key, value):
        self.steps += 1
        if key in self.model:
            try:
                self.file.insert(key, value)
                raise AssertionError("duplicate accepted")
            except DuplicateKeyError:
                pass
        else:
            self.file.insert(key, value)
            self.model[key] = value
        maybe_audit(self.file, f"insert {key!r}")

    @rule(key=keys_st, value=st.integers())
    def put(self, key, value):
        self.steps += 1
        self.file.put(key, value)
        self.model[key] = value
        maybe_audit(self.file, f"put {key!r}")

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        self.steps += 1
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.file.delete(key) == self.model.pop(key)
        maybe_audit(self.file, f"delete {key!r}")

    @rule(key=keys_st)
    def delete_missing(self, key):
        if key in self.model:
            return
        try:
            self.file.delete(key)
            raise AssertionError("deleted a missing key")
        except KeyNotFoundError:
            pass

    @rule(key=keys_st)
    def lookup(self, key):
        if key in self.model:
            assert self.file.get(key) == self.model[key]
        else:
            assert key not in self.file

    @rule(data=st.data())
    def range_scan(self, data):
        if not self.model:
            return
        ordered = sorted(self.model)
        lo = data.draw(st.sampled_from(ordered))
        hi = data.draw(st.sampled_from(ordered))
        if lo > hi:
            lo, hi = hi, lo
        expected = [k for k in ordered if lo <= k <= hi]
        assert [k for k, _ in self.file.range_items(lo, hi)] == expected

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "model"):
            assert len(self.file) == len(self.model)

    @invariant()
    def deep_check_periodically(self):
        if hasattr(self, "model") and self.steps % 7 == 0:
            self.file.check()
            assert dict(self.file.items()) == self.model


TestFileAgainstDict = FileAgainstDict.TestCase
TestFileAgainstDict.settings = settings()  # current profile (conftest.py)


DURABLE_CONFIGS = [
    ("th", dict(capacity=3, policy=SplitPolicy(merge="rotations"))),
    ("th", dict(capacity=3, policy=SplitPolicy.thcl_redistributing())),
    (
        "mlth",
        dict(capacity=3, page_capacity=6, policy=SplitPolicy.thcl(merge="guaranteed")),
    ),
]

values_st = st.text(alphabet=string.ascii_lowercase, max_size=4)


class DurableAgainstDict(RuleBasedStateMachine):
    """Durable engines under crashes: the model tracks *acknowledged*
    operations only. Every mutation is fsynced before it returns, so a
    crash (dropping all volatile store state) followed by recovery must
    reproduce the model exactly — no lost acks, no phantoms.
    """

    @initialize(
        config=st.integers(min_value=0, max_value=len(DURABLE_CONFIGS) - 1),
        checkpoint_every=st.integers(min_value=4, max_value=12),
    )
    def setup(self, config, checkpoint_every):
        self.engine, params = DURABLE_CONFIGS[config]
        self.stable = StableStore()
        self.file = DurableFile.open(
            self.stable,
            engine=self.engine,
            checkpoint_every=checkpoint_every,
            max_chain=3,
            **params,
        )
        self.model = {}
        self.steps = 0

    @rule(key=keys_st, value=values_st)
    def insert(self, key, value):
        self.steps += 1
        if key in self.model:
            try:
                self.file.insert(key, value)
                raise AssertionError("duplicate accepted")
            except DuplicateKeyError:
                pass
        else:
            self.file.insert(key, value)
            self.model[key] = value
        maybe_audit(self.file, f"durable insert {key!r}")

    @rule(key=keys_st, value=values_st)
    def put(self, key, value):
        self.steps += 1
        self.file.put(key, value)
        self.model[key] = value
        maybe_audit(self.file, f"durable put {key!r}")

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        self.steps += 1
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.file.delete(key) == self.model.pop(key)
        maybe_audit(self.file, f"durable delete {key!r}")

    @rule(key=keys_st)
    def delete_missing(self, key):
        if key in self.model:
            return
        try:
            self.file.delete(key)
            raise AssertionError("deleted a missing key")
        except KeyNotFoundError:
            pass

    @rule(key=keys_st)
    def lookup(self, key):
        if key in self.model:
            assert self.file.get(key) == self.model[key]
        else:
            assert key not in self.file

    @rule()
    def crash_and_recover(self):
        self.steps += 1
        self.stable.lose_volatile()  # power cut: volatile bytes gone
        self.file = DurableFile.open(self.stable, engine=self.engine)
        assert dict(self.file.items()) == self.model
        self.file.check()
        self._oracle()
        maybe_audit(self.file, "crash recovery")

    @rule()
    def clean_reopen(self):
        self.steps += 1
        self.file.close()
        self.file = DurableFile.open(self.stable, engine=self.engine)
        assert dict(self.file.items()) == self.model

    def _oracle(self):
        # Differential oracle: for TH engines the bucket headers alone
        # must reproduce the recovered key -> bucket mapping (/TOR83/).
        if self.engine != "th":
            return
        inner = self.file.file
        model = reconstruct_model(inner.store, inner.alphabet)
        for key in inner.keys():
            gap = gap_index(model.boundaries, key, inner.alphabet)
            assert model.children[gap] == inner.trie.search(key).bucket, key

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "model"):
            assert len(self.file) == len(self.model)

    @invariant()
    def deep_check_periodically(self):
        if hasattr(self, "model") and self.steps % 9 == 0:
            self.file.check()
            assert dict(self.file.items()) == self.model


TestDurableAgainstDict = DurableAgainstDict.TestCase
TestDurableAgainstDict.settings = settings()
