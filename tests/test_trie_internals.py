"""Deeper structural tests of the trie machinery.

Crafted shapes (deep chains, pure right spines, wide fans) exercising
the iterative traversals, the successor/predecessor walks at scale, and
cell recycling under churn — the paths where recursion limits or stale
state would hide.
"""

from repro import LOWERCASE, SplitPolicy, THFile, Trie
from repro.core.boundaries import BoundaryModel
from repro.core.cells import NIL, edge_to
from repro.core.trie import ROOT_LOCATION

A = LOWERCASE


def deep_chain_trie(depth: int) -> Trie:
    """Boundaries a, aa, aaa, ... — a pure logical-parent chain."""
    bounds = ["a" * k for k in range(depth, 0, -1)]
    model = BoundaryModel(A, bounds, list(range(depth + 1)))
    return Trie.from_model(model)


class TestDeepStructures:
    def test_chain_of_500_traverses_iteratively(self):
        trie = deep_chain_trie(500)
        trie.check()
        assert trie.depth() == 500
        assert len(trie.boundaries()) == 500
        leaves = trie.leaves_in_order()
        assert [p for _, p, _ in leaves] == list(range(501))

    def test_search_on_deep_chain(self):
        trie = deep_chain_trie(300)
        assert trie.search("a" * 300).bucket == 0
        assert trie.search("a" * 150 + "b").bucket == 150
        assert trie.search("b").bucket == 300

    def test_successor_walk_full_sweep_on_chain(self):
        trie = deep_chain_trie(200)
        result = trie.search("a" * 200)
        ptrs = [p for _, p in trie.successor_leaves(result.trail)]
        assert ptrs == list(range(1, 201))

    def test_right_spine(self):
        # Boundaries a < b < c < ...: a pure right spine when built with
        # pick='first'.
        bounds = [chr(ord("a") + i) for i in range(20)]
        model = BoundaryModel(A, bounds, list(range(21)))
        spine = Trie.from_model(model, pick="first")
        spine.check()
        assert spine.depth() == 20
        balanced = Trie.from_model(model)
        assert balanced.depth() <= 6

    def test_wide_level0_fan(self):
        bounds = [chr(ord("a") + i) for i in range(26)]
        model = BoundaryModel(A, bounds, list(range(27)))
        trie = Trie.from_model(model)
        trie.check()
        for i, b in enumerate(bounds):
            assert trie.search(b).bucket == i


class TestCellRecycling:
    def test_churn_reuses_slots(self, generator):
        keys = generator.uniform(300)
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k)
        table_peak = len(f.trie.cells)
        for k in keys[:250]:
            f.delete(k)
        for k in keys[:250]:
            f.insert(k)
        f.check()
        # The physical table may grow, but not unboundedly: recycling
        # keeps it within a small factor of the peak.
        assert len(f.trie.cells) <= 2 * table_peak

    def test_free_list_integrity_under_merge_storm(self, generator):
        keys = sorted(generator.uniform(200))
        f = THFile(bucket_capacity=4, policy=SplitPolicy(merge="rotations"))
        for k in keys:
            f.insert(k)
        for k in keys[:180]:
            f.delete(k)
            f.check()  # every intermediate state structurally valid


class TestLocationsAndPointers:
    def test_root_location_roundtrip(self):
        trie = Trie(A, root_ptr=7)
        assert trie.get_ptr(ROOT_LOCATION) == 7
        trie.set_ptr(ROOT_LOCATION, edge_to(0))
        trie.cells.allocate("m", 0, 1, 2)
        assert trie.search("a").bucket == 1

    def test_nil_root(self):
        trie = Trie(A, root_ptr=NIL)
        assert trie.search("anything").bucket is None

    def test_matched_counts_digit_progress(self):
        trie = deep_chain_trie(5)  # boundaries aaaaa..a
        result = trie.search("aaa")
        # 'aaa' matches digits down the chain until it exhausts.
        assert result.matched >= 3

    def test_nodes_visited_bounded_by_depth(self, fig1_file):
        for word in ("a", "he", "i", "was", "zz"):
            r = fig1_file.trie.search(word)
            assert r.nodes_visited <= fig1_file.trie.depth()
