"""A TH*-style distributed shard layer over trie-hashing files.

TH* (arXiv:1205.0439) and LH*TH (arXiv:1412.4353) turn trie hashing into
a Scalable Distributed Data Structure: the file spreads over server
shards, clients route with a *possibly outdated trie image*, servers
forward misaddressed operations, and Image Adjustment Messages patch
client images so the miss rate converges to zero. This package
reproduces that design over simulated in-process servers:

* :mod:`~repro.distributed.messages` — the op/reply vocabulary and IAMs;
* :mod:`~repro.distributed.router` — the counted message fabric;
* :mod:`~repro.distributed.server` — one shard: a
  :class:`~repro.core.file.THFile` (optionally a durable session) plus
  forwarding;
* :mod:`~repro.distributed.coordinator` — the authoritative partition,
  shard-split scale-out, and the :class:`Cluster` assembly;
* :mod:`~repro.distributed.client` — :class:`DistributedFile`, the
  THFile-compatible client handle with retries and exactly-once
  mutating operations;
* :mod:`~repro.distributed.errors` — the typed error hierarchy
  (transient :class:`RetryableError` subtypes vs. hard failures);
* :mod:`~repro.distributed.faults` — the fault-injecting fabric:
  :class:`FaultPlan` schedules, :class:`FaultyRouter`,
  :class:`RetryPolicy`;
* :mod:`~repro.distributed.replication` — primary/backup WAL shipping,
  the failure detector behind automatic failover, and live shard
  migration (:class:`ReplicationPolicy`, :class:`Replicator`,
  :class:`Migration`);
* :mod:`~repro.distributed.chaos` — randomized fault schedules run
  against the differential oracle;
* :mod:`~repro.distributed.report` — the convergence experiment table.

Quickstart::

    from repro.distributed import Cluster, ShardPolicy

    cluster = Cluster(shards=4, shard_policy=ShardPolicy(128))
    f = cluster.client()
    for word in words:
        f.insert(word)
    print(f.convergence(), cluster.shard_count())

See ``docs/DISTRIBUTED.md`` for the protocol and the convergence metric.
"""

from .chaos import ChaosReport, run_chaos
from .client import DistributedFile
from .coordinator import Cluster, Coordinator, ShardPolicy
from .errors import (
    DistributedError,
    FailoverError,
    MessageLostError,
    OpTimeoutError,
    ProtocolError,
    ReplicaStaleError,
    ReplicationError,
    RetryableError,
    ServerDownError,
    ShardUnavailableError,
    UnknownShardError,
)
from .faults import FaultPlan, FaultyRouter, RetryPolicy
from .messages import Op, Reply
from .replication import (
    FailureDetector,
    Migration,
    ReplicationPolicy,
    Replicator,
)
from .router import Router
from .server import ShardServer

__all__ = [
    "ChaosReport",
    "Cluster",
    "Coordinator",
    "DistributedError",
    "DistributedFile",
    "FailoverError",
    "FailureDetector",
    "FaultPlan",
    "FaultyRouter",
    "MessageLostError",
    "Migration",
    "Op",
    "OpTimeoutError",
    "ProtocolError",
    "Reply",
    "ReplicaStaleError",
    "ReplicationError",
    "ReplicationPolicy",
    "Replicator",
    "RetryPolicy",
    "RetryableError",
    "Router",
    "ServerDownError",
    "ShardPolicy",
    "ShardServer",
    "ShardUnavailableError",
    "UnknownShardError",
    "run_chaos",
]
