"""Plain-text rendering of experiment results.

The benchmark harness prints each reproduced table/figure as an ASCII
table whose rows mirror what the paper reports, so a run of
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation
section in readable form.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

__all__ = ["format_table", "format_value"]


def format_value(value: object) -> str:
    """Human formatting: percentages/ratios get sensible precision."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: list[dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in cells
    )
    parts = []
    if title:
        parts.extend([title, "=" * len(title)])
    parts.extend([header, rule, body])
    return "\n".join(parts)
