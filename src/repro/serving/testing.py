"""One-call serving stacks for tests, benchmarks and the chaos harness.

:class:`ServingFixture` owns everything a test would otherwise plumb by
hand: a temp directory with a Unix-domain socket, a
:class:`~repro.serving.client.LoopRunner` thread running the
:class:`~repro.serving.server.ServingServer`, and per-client loop
threads for however many connections the test opens. Closing the
fixture tears all of it down in reverse order, so a failing test never
leaks sockets or threads.

The server and each client get *separate* event loops on separate
threads deliberately: replies must traverse a real kernel socket
buffer between two schedulers, the same shape as a deployment — a
shared loop would let asyncio hand frames over in-process and hide
exactly the transport bugs this tier exists to surface.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Optional

from ..core.alphabet import Alphabet
from ..distributed.client import DistributedFile
from ..distributed.faults import FaultPlan, RetryPolicy
from ..obs.metrics import MetricsRegistry
from .client import (
    DEFAULT_WALL_TIMEOUT,
    AsyncClient,
    LoopRunner,
    RemoteCluster,
    RemoteSession,
    RemoteTransport,
)
from .faults import FaultyRemoteTransport
from .server import ServingServer

__all__ = ["ServingFixture"]


class ServingFixture:
    """A live UDS serving stack around ``cluster``, torn down on close.

    >>> cluster = Cluster(shards=4)
    >>> with ServingFixture(cluster) as fx:
    ...     with fx.open_session() as session:
    ...         session.file.insert("key", "value")

    The cluster is the caller's: build it durable or not, with whatever
    shard policy the test needs. The fixture only serves it.
    """

    def __init__(
        self,
        cluster,
        max_queue: int = 256,
        batch_max: int = 64,
    ):
        self.cluster = cluster
        self.tmp = tempfile.mkdtemp(prefix="th-serving-")
        self.path = os.path.join(self.tmp, "th.sock")
        self.runner = LoopRunner()
        self.server = ServingServer(
            cluster, max_queue=max_queue, batch_max=batch_max
        )
        try:
            self.runner.call(
                self.server.start_unix(self.path), DEFAULT_WALL_TIMEOUT
            )
        except BaseException:  # repro-lint: disable=TH002 -- re-raised: a failed start must not leak the loop thread or the temp dir
            self.runner.stop()
            shutil.rmtree(self.tmp, ignore_errors=True)
            raise
        self._conns: list[tuple[LoopRunner, AsyncClient]] = []
        self._sessions: list[RemoteSession] = []

    # ------------------------------------------------------------------
    # Client construction
    # ------------------------------------------------------------------
    def open_conn(self) -> tuple[LoopRunner, AsyncClient]:
        """A raw pipelined connection on its own loop thread."""
        runner = LoopRunner()
        try:
            conn = runner.call(
                AsyncClient.open_unix(self.path), DEFAULT_WALL_TIMEOUT
            )
        except BaseException:  # repro-lint: disable=TH002 -- re-raised: only reclaims the just-started loop thread
            runner.stop()
            raise
        self._conns.append((runner, conn))
        return runner, conn

    def open_session(
        self,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> RemoteSession:
        """A full :class:`RemoteSession` (own loop, transport and file)."""
        session = RemoteSession(
            path=self.path, retry=retry, registry=registry
        )
        self._sessions.append(session)
        return session

    def open_file(
        self,
        plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        wall_timeout: float = DEFAULT_WALL_TIMEOUT,
    ) -> tuple:
        """A ``(DistributedFile, transport)`` pair over this server.

        With a ``plan`` the transport is a
        :class:`~repro.serving.faults.FaultyRemoteTransport`, which is
        how the chaos harness runs its schedules over a real socket;
        without one it is a plain :class:`RemoteTransport`. Passing the
        server-side cluster's registry makes client and server counters
        land in one place, which is what the chaos report reads.
        """
        runner, conn = self.open_conn()
        if plan is None:
            transport = RemoteTransport(
                runner, conn, registry=registry, wall_timeout=wall_timeout
            )
        else:
            transport = FaultyRemoteTransport(
                runner,
                conn,
                plan=plan,
                registry=registry,
                wall_timeout=wall_timeout,
            )
        hello = transport.control({"cmd": "hello"})
        remote = RemoteCluster(
            transport, Alphabet(hello["alphabet"]), hello["first_shard"]
        )
        file = DistributedFile(
            remote, client_id=hello["client_id"], retry=retry
        )
        return file, transport

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        for session in self._sessions:
            try:
                session.close()
            except Exception:  # repro-lint: disable=TH002 -- teardown must reach every layer even when one is already dead
                pass
        self._sessions = []
        for runner, conn in self._conns:
            try:
                runner.call(conn.close(), DEFAULT_WALL_TIMEOUT)
            except Exception:  # repro-lint: disable=TH002 -- same: a dead connection must not keep its loop thread alive
                pass
            runner.stop()
        self._conns = []
        try:
            self.runner.call(self.server.stop(), DEFAULT_WALL_TIMEOUT)
        finally:
            self.runner.stop()
            shutil.rmtree(self.tmp, ignore_errors=True)

    def __enter__(self) -> "ServingFixture":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
