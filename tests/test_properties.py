"""Property-based tests (hypothesis) for the core structures.

The central oracle: a :class:`THFile` must behave exactly like a sorted
dictionary, and its trie must stay equivalent to its canonical boundary
model, under arbitrary interleavings of inserts and deletes with any
policy.
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import LOWERCASE, SplitPolicy, THFile, Trie
from repro.core.boundaries import boundary_sort_key, gap_index
from repro.core.keys import prefix, prefix_le, split_string
from repro.storage.serializer import deserialize_trie, serialize_trie

keys_st = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
key_lists = st.lists(keys_st, min_size=1, max_size=120, unique=True)

policies = st.sampled_from(
    [
        SplitPolicy.basic_th(),
        SplitPolicy.basic_th(split_position=1),
        SplitPolicy.basic_th(split_position=-1),
        SplitPolicy.thcl(),
        SplitPolicy.thcl_ascending(0),
        SplitPolicy.thcl_ascending(2),
        SplitPolicy.thcl_descending(0),
        SplitPolicy.thcl_descending(2),
        SplitPolicy.thcl_guaranteed_half(),
        SplitPolicy.thcl_redistributing(),
        SplitPolicy.thcl_redistributing("compact"),
    ]
)

slow = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestKeyArithmetic:
    @given(keys_st, st.integers(min_value=-2, max_value=10))
    def test_prefix_length(self, key, l):
        p = prefix(key, l, LOWERCASE)
        assert len(p) == max(0, l + 1)

    @given(keys_st, keys_st)
    def test_split_string_separates(self, a, b):
        if a == b:
            return
        low, high = min(a, b), max(a, b)
        s = split_string(low, high, LOWERCASE)
        assert prefix_le(low, s, LOWERCASE)
        assert not prefix_le(high, s, LOWERCASE)
        assert len(s) <= len(low) + 1

    @given(keys_st, keys_st, keys_st)
    def test_boundary_order_total(self, a, b, c):
        ka = boundary_sort_key(a, LOWERCASE)
        kb = boundary_sort_key(b, LOWERCASE)
        kc = boundary_sort_key(c, LOWERCASE)
        assert (ka < kb) == (not kb <= ka)
        if ka < kb and kb < kc:
            assert ka < kc

    @given(keys_st, st.lists(keys_st, min_size=1, max_size=20, unique=True))
    def test_gap_index_monotone(self, key, bounds):
        bounds = sorted(set(bounds), key=lambda s: boundary_sort_key(s, LOWERCASE))
        j = gap_index(bounds, key, LOWERCASE)
        for i, s in enumerate(bounds):
            goes_left = prefix_le(key, s, LOWERCASE)
            assert goes_left == (i >= j)


class TestFileAsSortedDict:
    @given(key_lists, policies)
    @slow
    def test_insert_only(self, keys, policy):
        f = THFile(bucket_capacity=4, policy=policy)
        for i, k in enumerate(keys):
            f.insert(k, i)
        f.check()
        assert list(f.keys()) == sorted(keys)
        for i, k in enumerate(keys):
            assert f.get(k) == i

    @given(
        key_lists,
        st.data(),
        policies,
    )
    @slow
    def test_mixed_inserts_and_deletes(self, keys, data, policy):
        f = THFile(bucket_capacity=4, policy=policy)
        model = {}
        # Interleave: insert every key, delete a sampled subset midway.
        half = len(keys) // 2
        for i, k in enumerate(keys[:half]):
            f.insert(k, i)
            model[k] = i
        victims = data.draw(
            st.lists(st.sampled_from(keys[:half]), unique=True, max_size=half)
            if half
            else st.just([])
        )
        for k in victims:
            f.delete(k)
            del model[k]
        for i, k in enumerate(keys[half:]):
            f.insert(k, half + i)
            model[k] = half + i
        f.check()
        assert dict(f.items()) == model
        assert list(f.keys()) == sorted(model)

    @given(key_lists, policies, st.integers(min_value=2, max_value=9))
    @slow
    def test_capacity_never_exceeded(self, keys, policy, b):
        from repro import CapacityError

        try:
            f = THFile(bucket_capacity=b, policy=policy)
        except CapacityError:
            return  # policy position out of range for this tiny b
        for k in keys:
            f.insert(k)
        for a in f.store.live_addresses():
            assert len(f.store.peek(a)) <= b

    @given(key_lists)
    @slow
    def test_range_queries_match_model(self, keys):
        f = THFile(bucket_capacity=4)
        for k in keys:
            f.insert(k)
        s = sorted(keys)
        lo, hi = s[0], s[-1]
        assert [k for k, _ in f.range_items(lo, hi)] == s
        mid = s[len(s) // 2]
        assert [k for k, _ in f.range_items(mid, None)] == [
            k for k in s if k >= mid
        ]


class TestTrieModelEquivalence:
    @given(key_lists, policies)
    @slow
    def test_trie_agrees_with_model(self, keys, policy):
        f = THFile(bucket_capacity=3, policy=policy)
        for k in keys:
            f.insert(k)
        model = f.trie.to_model()
        model.check(require_prefix_closed=True)
        probes = keys + [k + "a" for k in keys[:10]] + ["m", "zzz"]
        for p in probes:
            canon = LOWERCASE.validate_key(p)
            assert f.trie.search(canon).bucket == model.lookup(canon)

    @given(key_lists)
    @slow
    def test_rebuild_and_balance_preserve_mapping(self, keys):
        f = THFile(bucket_capacity=3)
        for k in keys:
            f.insert(k)
        model = f.trie.to_model()
        for pick in ("balanced", "first", "last"):
            rebuilt = Trie.from_model(model, pick=pick)
            rebuilt.check()
            assert rebuilt.to_model() == model

    @given(key_lists)
    @slow
    def test_serialization_roundtrip(self, keys):
        f = THFile(bucket_capacity=3)
        for k in keys:
            f.insert(k)
        restored = deserialize_trie(serialize_trie(f.trie))
        restored.check()
        for k in keys:
            assert restored.search(k).bucket == f.trie.search(k).bucket

    @given(key_lists)
    @slow
    def test_reconstruction_from_headers(self, keys):
        from repro.core.reconstruct import reconstruct_trie

        f = THFile(bucket_capacity=3)
        for k in keys:
            f.insert(k)
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        rebuilt.check()
        for k in keys:
            assert rebuilt.search(k).bucket == f.trie.search(k).bucket


class TestTHCLInvariants:
    @given(key_lists)
    @slow
    def test_thcl_guarantee_after_deletions(self, keys):
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k)
        for k in keys[: len(keys) // 2]:
            f.delete(k)
        f.check()
        live = f.store.live_addresses()
        if len(live) > 1:
            assert min(len(f.store.peek(a)) for a in live) >= 2

    @given(key_lists)
    @slow
    def test_no_nil_and_contiguous(self, keys):
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl_ascending(0))
        for k in sorted(keys):
            f.insert(k)
        f.trie.check(expect_no_nil=True)
