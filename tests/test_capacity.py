"""Section 3.1 capacity arithmetic: the paper's figures re-derived."""

import pytest

from repro.analysis.capacity import (
    addressable_buckets,
    bilevel_buckets,
    bilevel_file_bytes,
    bilevel_records,
    capacity_table,
)
from repro.storage.layout import Layout


class TestBufferClaims:
    def test_6kb_addresses_about_1000_buckets(self):
        assert addressable_buckets(6 * 1024) == pytest.approx(1000, rel=0.05)

    def test_64kb_addresses_about_11000_buckets(self):
        assert addressable_buckets(64 * 1024) == pytest.approx(11000, rel=0.05)

    def test_30kb_covers_a_20mb_cluster_disk(self):
        # IBM-AT anecdote: 4 KB clusters, 20 MB disk.
        covered = addressable_buckets(30 * 1024) * 4096
        assert covered >= 20 * 10**6

    def test_scales_with_cell_size(self):
        fat = Layout(cell_bytes=12)
        assert addressable_buckets(6 * 1024, fat) == pytest.approx(512, rel=0.05)


class TestBilevelClaims:
    def test_10kb_pages_cover_about_16m_records(self):
        records = bilevel_records(10 * 1024, bucket_capacity=20)
        assert 10e6 < records < 25e6  # "almost 16 million"

    def test_64kb_pages_cover_over_600m_records(self):
        assert bilevel_records(64 * 1024, bucket_capacity=20) > 600e6

    def test_msdos_4kb_pages_cover_a_gigabyte(self):
        # "May span over 1 GByte": the capacity bound assumes full
        # pages; the measured ~67% page load still covers ~0.8 GB.
        assert bilevel_file_bytes(4096, 4096, page_load=1.0) > 2**30
        assert bilevel_file_bytes(4096, 4096) > 0.7 * 2**30

    def test_fanout_squares(self):
        one_level = bilevel_buckets(6 * 1024) ** 0.5
        assert bilevel_buckets(6 * 1024) == pytest.approx(one_level**2)

    def test_page_load_matters(self):
        full = bilevel_records(10 * 1024, 20, page_load=1.0)
        half = bilevel_records(10 * 1024, 20, page_load=0.5)
        assert full > 3 * half


class TestTable:
    def test_every_row_has_computation(self):
        rows = capacity_table()
        assert len(rows) == 6
        for row in rows:
            assert row["computed"] is not None
            assert row["paper"]

    def test_consistent_with_a_real_mlth_file(self, generator):
        # Sanity: a real (small) MLTH file's per-level fan-out is in
        # line with the arithmetic's page-load assumption.
        from repro import MLTHFile

        f = MLTHFile(bucket_capacity=10, page_capacity=32)
        for k in generator.uniform(4000):
            f.insert(k)
        assert f.levels() >= 2
        assert 0.4 <= f.page_load_factor() <= 1.0
