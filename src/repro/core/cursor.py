"""A bidirectional cursor over a trie-hashing file.

Range iteration (:mod:`repro.core.range_query`) is forward-only and
stateless; database clients usually want a *cursor*: position at a key
(or the first key at/after it), then step forward or backward record by
record, re-reading buckets only at bucket borders. The order-preserving
partition of trie hashing makes this natural — successive buckets hold
successive key ranges.

The cursor is a read-only snapshot navigator: structural file
modifications (splits, merges) invalidate it, which it detects through
the file's modification counter.
"""

from __future__ import annotations

import bisect
from typing import Optional

from .cells import is_nil
from .errors import TrieHashingError
from .file import THFile
from .keys import prefix_gt

__all__ = ["Cursor", "CursorInvalidError"]


class CursorInvalidError(TrieHashingError, RuntimeError):
    """The file changed structurally under an open cursor."""


class Cursor:
    """Positioned access to a :class:`THFile` in key order.

    Typical use::

        cur = Cursor(f)
        cur.seek("lit")        # first key >= 'lit'
        while cur.valid and cur.key().startswith("lit"):
            handle(cur.key(), cur.value())
            cur.next()
    """

    def __init__(self, file: THFile):
        self._file = file
        self._generation = file.structure_generation
        # The ordered list of distinct buckets, derived once per cursor,
        # with the logical path of each bucket's first leaf and a
        # pointer -> ordinal map so seeks cost O(log b) instead of a
        # linear rescan of the bucket list (or of the trie's leaves).
        self._buckets: list[int] = []
        self._paths: list[str] = []
        self._bucket_pos: dict[int, int] = {}
        previous: Optional[int] = None
        for _, ptr, path in file.trie.leaves_in_order():
            if is_nil(ptr) or ptr == previous:
                continue
            previous = ptr
            self._bucket_pos[ptr] = len(self._buckets)
            self._buckets.append(ptr)
            self._paths.append(path)
        self._bucket_index = -1
        self._record_index = -1
        self._keys: list[str] = []
        self._values: list[object] = []

    # ------------------------------------------------------------------
    def _check_generation(self) -> None:
        if self._file.structure_generation != self._generation:
            raise CursorInvalidError(
                "the file split or merged buckets since this cursor opened"
            )

    def _load(self, bucket_index: int) -> None:
        bucket = self._file.store.read(self._buckets[bucket_index])
        self._bucket_index = bucket_index
        self._keys = list(bucket.keys)
        self._values = list(bucket.values)

    @property
    def valid(self) -> bool:
        """True when the cursor points at a record."""
        return 0 <= self._record_index < len(self._keys)

    def key(self) -> str:
        """The current record's key."""
        if not self.valid:
            raise CursorInvalidError("cursor is not positioned on a record")
        return self._keys[self._record_index]

    def value(self) -> object:
        """The current record's value."""
        if not self.valid:
            raise CursorInvalidError("cursor is not positioned on a record")
        return self._values[self._record_index]

    def item(self) -> tuple[str, object]:
        """The current ``(key, value)`` pair."""
        return self.key(), self.value()

    # ------------------------------------------------------------------
    # Positioning
    # ------------------------------------------------------------------
    def first(self) -> bool:
        """Move to the smallest record; False when the file is empty."""
        self._check_generation()
        for i in range(len(self._buckets)):
            self._load(i)
            if self._keys:
                self._record_index = 0
                return True
        self._record_index = -1
        return False

    def last(self) -> bool:
        """Move to the largest record; False when the file is empty."""
        self._check_generation()
        for i in range(len(self._buckets) - 1, -1, -1):
            self._load(i)
            if self._keys:
                self._record_index = len(self._keys) - 1
                return True
        self._record_index = -1
        return False

    def seek(self, key: str) -> bool:
        """Position at the first record with key >= ``key``.

        Returns True when such a record exists. Uses one trie search
        plus at most a bucket-chain walk past empty tails.
        """
        self._check_generation()
        key = self._file.alphabet.validate_key(key)
        result = self._file.trie.search(key)
        start = (
            self._bucket_pos.get(result.bucket)
            if result.bucket is not None
            else None
        )
        if start is None:
            # Nil leaf: start from the next bucket in order.
            start = self._first_bucket_at_or_after(key)
        for i in range(start, len(self._buckets)):
            self._load(i)
            at = bisect.bisect_left(self._keys, key) if i == start else 0
            if at < len(self._keys):
                self._record_index = at
                return True
        self._record_index = -1
        return False

    def _first_bucket_at_or_after(self, key: str) -> int:
        # The first bucket whose range can contain >= key, from the
        # first-leaf paths snapshotted at construction (no trie re-walk).
        for index, path in enumerate(self._paths):
            if not prefix_gt(key, path, self._file.alphabet) or path == "":
                return index
        return len(self._buckets)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def next(self) -> bool:
        """Advance one record; False (and invalid) past the end."""
        self._check_generation()
        if self._record_index + 1 < len(self._keys):
            self._record_index += 1
            return True
        i = self._bucket_index + 1
        while i < len(self._buckets):
            self._load(i)
            if self._keys:
                self._record_index = 0
                return True
            i += 1
        self._record_index = len(self._keys)  # past the end
        return False

    def prev(self) -> bool:
        """Step back one record; False (and invalid) before the start."""
        self._check_generation()
        if self._record_index - 1 >= 0 and self._keys:
            self._record_index -= 1
            return True
        i = self._bucket_index - 1
        while i >= 0:
            self._load(i)
            if self._keys:
                self._record_index = len(self._keys) - 1
                return True
            i -= 1
        self._record_index = -1
        return False
