"""Rule registry, suppression handling and reporting for ``repro.lint``.

A :class:`Rule` is a function from a parsed file (:class:`LintContext`)
to an iterable of :class:`LintViolation`. Rules register themselves with
the :func:`rule` decorator and carry a stable code (``TH001``...), a
short name, and an optional path scope (only files whose
``repro``-relative module path starts with one of the scope prefixes are
checked). The engine owns everything rules should not re-implement:
walking the tree, parsing, matching ``# repro-lint: disable=`` comments,
and rendering the report.

Suppression semantics: a disable comment suppresses the listed codes on
its own line, or — when the line holds nothing but the comment — on the
next code line. Every suppression must justify itself after ``--``; a
missing justification is reported as ``LINT001`` and a suppression that
matched no violation as ``LINT002``, so stale allowlist entries fail the
build just like real findings.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator
from typing import Optional

__all__ = [
    "FLOW_CODES",
    "LintContext",
    "LintReport",
    "LintViolation",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule",
]

#: Codes emitted by the engine itself (suppression hygiene).
META_NO_JUSTIFICATION = "LINT001"
META_UNUSED_SUPPRESSION = "LINT002"

#: Codes owned by the whole-program pass (:mod:`repro.lint.flow`).
#: The per-file pass leaves their suppressions alone — it cannot judge
#: staleness for findings it does not compute — and the flow engine
#: applies them (``TH009`` is the retired per-file rule, kept as an
#: alias for its flow successor ``TH010``).
FLOW_CODES = frozenset(
    {"TH009", "TH010", "TH011", "TH012", "TH013", "TH014"}
)

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s*--\s*(?P<why>.*?))?\s*$"
)


@dataclass(frozen=True)
class LintViolation:
    """One finding: a rule code anchored to a file position."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.code} {self.message}"


@dataclass
class LintContext:
    """Everything a rule may inspect about one file."""

    path: Path
    #: Module path relative to the ``repro`` package root, POSIX-style
    #: (``repro/core/file.py``); empty for files outside any package.
    module_path: str
    source: str
    tree: ast.Module
    lines: list[str]

    def violation(
        self, code: str, node: ast.AST, message: str
    ) -> LintViolation:
        return LintViolation(
            code=code,
            message=message,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


Checker = Callable[[LintContext], Iterable[LintViolation]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable code, scope, and its checker."""

    code: str
    name: str
    description: str
    checker: Checker
    #: Module-path prefixes this rule applies to (``None`` = every file).
    scope: Optional[tuple] = None

    def applies_to(self, module_path: str) -> bool:
        if self.scope is None:
            return True
        return any(module_path.startswith(prefix) for prefix in self.scope)


_REGISTRY: dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    description: str,
    scope: Optional[Iterable[str]] = None,
) -> Callable[[Checker], Checker]:
    """Register ``checker`` under ``code``; codes must be unique."""

    def decorate(checker: Checker) -> Checker:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code}")
        _REGISTRY[code] = Rule(
            code=code,
            name=name,
            description=description,
            checker=checker,
            scope=tuple(scope) if scope is not None else None,
        )
        return checker

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
@dataclass
class _Suppression:
    codes: tuple
    line: int  # line the suppression applies to
    comment_line: int  # line the comment itself sits on
    justified: bool
    used: set = field(default_factory=set)


def _parse_suppressions(source: str, path: str) -> list[_Suppression]:
    """Extract disable comments via the tokenizer (never from strings)."""
    suppressions: list[_Suppression] = []
    code_lines: set = set()
    comment_tokens: list = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comment_tokens.append(tok)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            for line in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(line)
    for tok in comment_tokens:
        match = _DISABLE_RE.search(tok.string)
        if not match:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
        )
        comment_line = tok.start[0]
        if comment_line in code_lines:
            target = comment_line
        else:
            # Stand-alone comment: applies to the next code line.
            later = [line for line in code_lines if line > comment_line]
            target = min(later) if later else comment_line
        why = (match.group("why") or "").strip()
        suppressions.append(
            _Suppression(
                codes=codes,
                line=target,
                comment_line=comment_line,
                justified=bool(why),
            )
        )
    return suppressions


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def _module_path(path: Path) -> str:
    """The ``repro``-rooted POSIX path of ``path`` (or its plain name)."""
    parts = path.parts
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return path.name


def lint_file(
    path: Path, select: Optional[set] = None
) -> list[LintViolation]:
    """Lint one file; returns surviving violations (suppressions applied)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintViolation(
                code="LINT000",
                message=f"syntax error: {exc.msg}",
                path=str(path),
                line=exc.lineno or 1,
            )
        ]
    context = LintContext(
        path=path,
        module_path=_module_path(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    raw: list[LintViolation] = []
    for candidate in all_rules():
        if select is not None and candidate.code not in select:
            continue
        if not candidate.applies_to(context.module_path):
            continue
        raw.extend(candidate.checker(context))

    suppressions = _parse_suppressions(source, str(path))
    surviving: list[LintViolation] = []
    for violation in raw:
        suppressed = False
        for suppression in suppressions:
            if (
                violation.line == suppression.line
                and violation.code in suppression.codes
            ):
                suppression.used.add(violation.code)
                suppressed = True
        if not suppressed:
            surviving.append(violation)
    for suppression in suppressions:
        if not suppression.justified:
            surviving.append(
                LintViolation(
                    code=META_NO_JUSTIFICATION,
                    message=(
                        "suppression lacks a justification "
                        "(write `# repro-lint: disable=CODE -- why`)"
                    ),
                    path=str(path),
                    line=suppression.comment_line,
                )
            )
        unused = [
            c
            for c in suppression.codes
            if c not in suppression.used and c not in FLOW_CODES
        ]
        if unused and (select is None or set(unused) & select):
            surviving.append(
                LintViolation(
                    code=META_UNUSED_SUPPRESSION,
                    message=(
                        f"suppression for {', '.join(unused)} matched no "
                        "violation; remove the stale disable comment"
                    ),
                    path=str(path),
                    line=suppression.comment_line,
                )
            )
    surviving.sort(key=lambda v: (v.path, v.line, v.code))
    return surviving


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    files_checked: int
    violations: list[LintViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return {
            "files_checked": self.files_checked,
            "violation_count": len(self.violations),
            "counts_by_code": dict(sorted(counts.items())),
            "violations": [v.as_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=False)

    def render_table(self) -> str:
        if not self.violations:
            return f"{self.files_checked} files checked, no findings"
        out = [violation.render() for violation in self.violations]
        counts = self.as_dict()["counts_by_code"]
        summary = ", ".join(f"{code}: {n}" for code, n in counts.items())
        out.append(
            f"\n{len(self.violations)} findings in {self.files_checked} "
            f"files checked ({summary})"
        )
        return "\n".join(out)


def lint_source(
    source: str,
    module_path: str = "repro/core/_snippet.py",
    select: Optional[Iterable[str]] = None,
) -> list[LintViolation]:
    """Lint a source string as if it lived at ``module_path``.

    The self-test suite uses this to run scoped rules against fixture
    snippets without materialising them inside the package tree.
    """
    chosen = {code.strip() for code in select} if select is not None else None
    tree = ast.parse(source)
    context = LintContext(
        path=Path(module_path),
        module_path=module_path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    raw: list[LintViolation] = []
    for candidate in all_rules():
        if chosen is not None and candidate.code not in chosen:
            continue
        if not candidate.applies_to(module_path):
            continue
        raw.extend(candidate.checker(context))
    suppressions = _parse_suppressions(source, module_path)
    surviving = []
    for violation in raw:
        if not any(
            violation.line == s.line and violation.code in s.codes
            for s in suppressions
        ):
            surviving.append(violation)
    return sorted(surviving, key=lambda v: (v.line, v.code))


def lint_paths(
    paths: Iterable[str], select: Optional[Iterable[str]] = None
) -> LintReport:
    """Lint every ``.py`` file under ``paths``."""
    chosen = {code.strip() for code in select} if select is not None else None
    violations: list[LintViolation] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        violations.extend(lint_file(path, select=chosen))
    return LintReport(files_checked=count, violations=violations)
