"""Section 3.2: unexpected ordered insertions (basic TH).

With the split key tuned for random insertions (m = 0.5b), ascending
loads reach 60-73% — well above the B-tree's 50% — while descending
loads fall to 40-55%. Lowering m toward 0.4b lifts a_d above 50% at some
cost to a_a; a_r barely moves.
"""

from conftest import once

from repro.analysis import sec32_unexpected


def test_sec32_unexpected(benchmark, report):
    rows = once(
        benchmark,
        lambda: sec32_unexpected(
            count=5000, bucket_capacities=(10, 20, 50), fractions=(0.5, 0.4)
        ),
    )
    report(
        "sec32_unexpected",
        rows,
        "Section 3.2 - unexpected ordered insertions, m = 0.5b and 0.4b",
    )
    for b in (10, 20, 50):
        mid = [r for r in rows if r["b"] == b][0]
        low = [r for r in rows if r["b"] == b][1]
        assert 55 <= mid["a_a%"] <= 80       # paper band 60-73
        assert 35 <= mid["a_d%"] <= 60       # paper band 40-55
        assert low["a_d%"] > mid["a_d%"]     # lowering m helps a_d
        assert abs(low["a_r%"] - mid["a_r%"]) < 8  # a_r barely moves
