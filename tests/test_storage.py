"""Storage substrate tests: disk, buffer pool, bucket store, latency."""

import pytest

from repro import StorageError
from repro.storage import (
    Bucket,
    BucketStore,
    BufferPool,
    DiskStats,
    LatencyModel,
    Layout,
    SimulatedDisk,
)
from repro.core.errors import DuplicateKeyError, KeyNotFoundError


class TestSimulatedDisk:
    def test_allocation_is_free_write_is_charged(self):
        disk = SimulatedDisk()
        block = disk.allocate("payload")
        assert disk.stats.accesses == 0
        disk.write(block, "new")
        assert disk.stats.writes == 1

    def test_read_counts(self):
        disk = SimulatedDisk()
        block = disk.allocate("x")
        assert disk.read(block) == "x"
        assert disk.read(block) == "x"
        assert disk.stats.reads == 2

    def test_peek_is_unmetered(self):
        disk = SimulatedDisk()
        block = disk.allocate("x")
        assert disk.peek(block) == "x"
        assert disk.stats.accesses == 0

    def test_unknown_block_errors(self):
        disk = SimulatedDisk()
        with pytest.raises(StorageError):
            disk.read(99)
        with pytest.raises(StorageError):
            disk.write(99, "x")
        with pytest.raises(StorageError):
            disk.free(99)

    def test_free_removes(self):
        disk = SimulatedDisk()
        block = disk.allocate("x")
        disk.free(block)
        with pytest.raises(StorageError):
            disk.read(block)

    def test_stats_snapshot_delta(self):
        disk = SimulatedDisk()
        block = disk.allocate("x")
        disk.read(block)
        snap = disk.stats.snapshot()
        disk.read(block)
        disk.write(block, "y")
        delta = disk.stats.delta(snap)
        assert delta.reads == 1 and delta.writes == 1
        assert disk.stats.reads == 2

    def test_latency_accumulates(self):
        disk = SimulatedDisk(latency=LatencyModel.vintage_1981())
        block = disk.allocate("x")
        disk.read(block)
        t1 = disk.stats.simulated_seconds
        assert t1 > 0.08  # ~85ms seek alone
        disk.read(block)
        assert disk.stats.simulated_seconds == pytest.approx(2 * t1)

    def test_stats_reset(self):
        stats = DiskStats()
        stats.reads = 5
        stats.reset()
        assert stats.accesses == 0


class TestLatencyModel:
    def test_presets_ordering(self):
        vintage = LatencyModel.vintage_1981().access_seconds(4096)
        modern = LatencyModel.hdd_7200rpm().access_seconds(4096)
        assert vintage > modern > 0

    def test_components(self):
        m = LatencyModel(seek_ms=10, rpm=6000, transfer_mb_per_s=100)
        t = m.access_seconds(1_000_000)
        assert t == pytest.approx(0.010 + 0.005 + 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(seek_ms=-1, rpm=7200, transfer_mb_per_s=1)
        with pytest.raises(ValueError):
            LatencyModel(seek_ms=1, rpm=0, transfer_mb_per_s=1)


class TestBufferPool:
    def test_capacity_zero_never_caches(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=0)
        block = disk.allocate("x")
        pool.read(block)
        pool.read(block)
        assert disk.stats.reads == 2
        assert pool.hits == 0

    def test_hits_skip_the_disk(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=2)
        block = disk.allocate("x")
        pool.read(block)
        pool.read(block)
        assert disk.stats.reads == 1
        assert pool.hits == 1
        assert pool.hit_rate == 0.5

    def test_lru_eviction(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=2)
        blocks = [disk.allocate(i) for i in range(3)]
        pool.read(blocks[0])
        pool.read(blocks[1])
        pool.read(blocks[2])  # evicts 0
        pool.read(blocks[0])  # miss again
        assert disk.stats.reads == 4

    def test_write_through_refreshes_cache(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=2)
        block = disk.allocate("x")
        pool.write(block, "y")
        assert disk.stats.writes == 1
        assert pool.read(block) == "y"
        assert disk.stats.reads == 0  # cache hit after the write

    def test_pin_survives_pressure(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=1)
        pinned = disk.allocate("root")
        pool.pin(pinned)
        others = [disk.allocate(i) for i in range(5)]
        for b in others:
            pool.read(b)
        reads = disk.stats.reads
        pool.read(pinned)
        assert disk.stats.reads == reads  # still cached

    def test_pin_with_zero_capacity(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=0)
        pinned = disk.allocate("root")
        pool.pin(pinned)
        pool.read(pinned)
        assert pool.hits == 1

    def test_unpin_allows_eviction(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=1)
        a = disk.allocate("a")
        pool.pin(a)
        pool.unpin(a)
        b = disk.allocate("b")
        pool.read(b)
        reads = disk.stats.reads
        pool.read(a)
        assert disk.stats.reads == reads + 1

    def test_invalidate_keeps_pinned(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity=4)
        a = disk.allocate("a")
        b = disk.allocate("b")
        pool.pin(a)
        pool.read(b)
        pool.invalidate()
        reads = disk.stats.reads
        pool.read(a)
        assert disk.stats.reads == reads
        pool.read(b)
        assert disk.stats.reads == reads + 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(SimulatedDisk(), capacity=-1)


class TestBucket:
    def test_sorted_insertion(self):
        b = Bucket()
        for k in ("m", "a", "z"):
            b.insert(k, k.upper())
        assert b.keys == ["a", "m", "z"]
        assert b.get("m") == "M"

    def test_duplicate_rejected(self):
        b = Bucket()
        b.insert("a", 1)
        with pytest.raises(DuplicateKeyError):
            b.insert("a", 2)

    def test_remove(self):
        b = Bucket()
        b.insert("a", 1)
        assert b.remove("a") == 1
        with pytest.raises(KeyNotFoundError):
            b.remove("a")

    def test_replace(self):
        b = Bucket()
        b.insert("a", 1)
        b.replace("a", 2)
        assert b.get("a") == 2
        with pytest.raises(KeyNotFoundError):
            b.replace("zz", 0)

    def test_find_contains(self):
        b = Bucket()
        b.insert("b", None)
        assert b.find("b") == 0
        assert b.find("a") == -1
        assert b.contains("b") and not b.contains("a")

    def test_pop_range(self):
        b = Bucket()
        for k in "abcde":
            b.insert(k, k)
        taken = b.pop_range(1, 3)
        assert [k for k, _ in taken] == ["b", "c"]
        assert b.keys == ["a", "d", "e"]

    def test_items_pairs(self):
        b = Bucket()
        b.insert("a", 1)
        b.insert("b", 2)
        assert list(b.items()) == [("a", 1), ("b", 2)]


class TestBucketStore:
    def test_address_sequence(self):
        store = BucketStore()
        assert store.allocate() == 0
        assert store.allocate() == 1
        assert store.max_address() == 1
        assert store.allocated_count() == 2

    def test_free_and_recycle(self):
        store = BucketStore()
        store.allocate()
        store.allocate()
        store.free(0)
        assert store.allocated_count() == 1
        assert store.live_addresses() == [1]
        assert store.allocate() == 0  # recycled

    def test_freed_access_fails(self):
        store = BucketStore()
        store.allocate()
        store.free(0)
        with pytest.raises(StorageError):
            store.read(0)
        with pytest.raises(StorageError):
            store.read(7)

    def test_metered_reads_writes(self):
        store = BucketStore()
        a = store.allocate()
        bucket = store.read(a)
        assert store.stats.reads == 1
        store.write(a, bucket)
        assert store.stats.writes == 1

    def test_buffered_store(self):
        store = BucketStore(buffer_capacity=4)
        a = store.allocate()
        store.read(a)
        store.read(a)
        assert store.stats.reads == 0  # allocation cached it


class TestLayout:
    def test_paper_constants(self):
        layout = Layout()
        assert layout.trie_bytes(1000) == 6000  # the 6 Kbyte buffer claim
        assert layout.btree_branch_bytes(1) == 24

    def test_custom_sizes(self):
        layout = Layout(cell_bytes=6, key_bytes=46, pointer_bytes=4)
        assert layout.btree_branch_bytes(10) == 500
        assert layout.records_bytes(3) == 300
