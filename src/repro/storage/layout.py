"""Byte-size accounting for index structures.

Section 3.1 and Section 4.5 of the paper argue space through concrete
constants: a trie cell is six bytes (1 DV + 1 DN + 2 LP + 2 RP), while a
B-tree branching entry is a key plus a pointer — "typically 20 to 50
bytes". :class:`Layout` centralises those constants so the space
comparison benches (trie bytes vs B-tree branch bytes, growth per split)
use the paper's own arithmetic.
"""

from __future__ import annotations

__all__ = ["Layout"]


class Layout:
    """Size constants for the space-accounting benches.

    Parameters
    ----------
    cell_bytes:
        Size of one trie cell; the paper's practical figure is six bytes.
    key_bytes:
        Size of a key stored in a B-tree branching node.
    pointer_bytes:
        Size of a child pointer in a B-tree branching node.
    record_bytes:
        Nominal record size, used to convert load factors to bytes.
    """

    __slots__ = ("cell_bytes", "key_bytes", "pointer_bytes", "record_bytes")

    def __init__(
        self,
        cell_bytes: int = 6,
        key_bytes: int = 20,
        pointer_bytes: int = 4,
        record_bytes: int = 100,
    ):
        self.cell_bytes = cell_bytes
        self.key_bytes = key_bytes
        self.pointer_bytes = pointer_bytes
        self.record_bytes = record_bytes

    def trie_bytes(self, cell_count: int) -> int:
        """Bytes occupied by a trie of ``cell_count`` cells."""
        return cell_count * self.cell_bytes

    def btree_branch_bytes(self, separator_count: int) -> int:
        """Bytes of B-tree branching entries (one key + one pointer each)."""
        return separator_count * (self.key_bytes + self.pointer_bytes)

    def records_bytes(self, record_count: int) -> int:
        """Bytes of stored records."""
        return record_count * self.record_bytes
