"""ASCII curve rendering for the paper's figures.

Figures 10 and 11 are plots — load factor and trie size against the
split-distance ``d``. The benchmark harness archives their data as
tables; this module additionally renders the curves as terminal plots so
the *shape* claims (the M minimum of Fig 10, the flattening of Fig 11)
are visible at a glance in the benchmark output.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["ascii_chart", "fig_curves"]


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Plot one or more ``name -> [(x, y), ...]`` series on a text grid.

    Each series gets its own marker; axes are annotated with the data
    ranges. Intended for monotone-x sweeps like the d-sweeps.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@"
    for (_name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.1f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.1f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.0f}" + " " * (width - 8) + f"{x_hi:>.0f}"
    )
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def fig_curves(rows: Sequence[dict[str, object]], bucket_capacity: int) -> str:
    """Render one bucket size's Fig 10/11 sweep: a% and M versus d.

    ``rows`` are the dictionaries produced by
    :func:`repro.analysis.experiments.fig10_ascending` /
    :func:`fig11_descending`. The trie size is normalised to its peak so
    both curves share the 0-100 scale, exactly how the paper plots them.
    """
    sweep = [r for r in rows if r["b"] == bucket_capacity]
    if not sweep:
        return f"(no rows for b = {bucket_capacity})"
    peak_m = max(float(r["M"]) for r in sweep)
    series = {
        "a%": [(float(r["d"]), float(r["a%"])) for r in sweep],
        "M (% of peak)": [
            (float(r["d"]), 100.0 * float(r["M"]) / peak_m) for r in sweep
        ],
    }
    return ascii_chart(
        series,
        title=f"b = {bucket_capacity}: load factor and trie size vs d",
    )
