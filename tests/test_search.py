"""Unit tests for Algorithm A1 — the digit-at-a-time key search."""

from repro import LOWERCASE, THFile, Trie
from repro.core.cells import edge_to

A = LOWERCASE


class TestFig1Search:
    """Searches over the paper's example trie (via the example file)."""

    def test_every_stored_word_found(self, fig1_file, words):
        for word in words:
            result = fig1_file.trie.search(word)
            bucket = fig1_file.store.peek(result.bucket)
            assert word in bucket.keys

    def test_search_he_skips_levels(self, fig1_file):
        # 'he' compares digit 0 only against digit-number-0 nodes, then
        # switches to digit 1 - far fewer comparisons than node count.
        result = fig1_file.trie.search("he")
        assert result.nodes_visited <= fig1_file.trie.depth()
        assert result.nodes_visited < fig1_file.trie.node_count

    def test_paths_returned(self, fig1_file):
        # The logical path to 'he''s leaf is the boundary 'he'.
        assert fig1_file.trie.search("he").path == "he"
        # 'the' satisfies ('the')_0 <= 't', so it sits left of boundary
        # 't'; only keys above 't' (e.g. 'was') reach the last leaf.
        assert fig1_file.trie.search("the").path == "t"
        assert fig1_file.trie.search("was").path == ""

    def test_unsuccessful_search_lands_somewhere(self, fig1_file):
        result = fig1_file.trie.search("hat")
        assert result.bucket is not None  # example trie has no nil here
        bucket = fig1_file.store.peek(result.bucket)
        assert "hat" not in bucket.keys
        # But the bucket covers the right range: 'had' < 'hat' < 'have'.
        assert "had" in bucket.keys and "have" in bucket.keys

    def test_trail_matches_location(self, fig1_file):
        for word in ("a", "he", "the", "i"):
            result = fig1_file.trie.search(word)
            assert fig1_file.trie.get_ptr(result.location) == result.ptr
            if result.trail:
                assert result.location == result.trail[-1]


class TestPadding:
    def build(self):
        # boundaries: 'ha' < 'h' ; children 0 | 1 | 2
        trie = Trie(A)
        inner = trie.cells.allocate("a", 1, 0, 1)
        outer = trie.cells.allocate("h", 0, edge_to(inner), 2)
        trie.root = edge_to(outer)
        return trie

    def test_min_padding_default(self):
        trie = self.build()
        assert trie.search("h").bucket == 0  # 'h' pads low: <= 'ha'
        assert trie.search("hb").bucket == 1
        assert trie.search("x").bucket == 2

    def test_max_padding_finds_leaf_left_of_boundary(self):
        trie = self.build()
        # Virtual key 'h'+max-digits: the leaf just left of boundary 'h'.
        assert trie.search("h", pad="max").bucket == 1
        # Virtual key 'ha'+max: just left of boundary 'ha'.
        assert trie.search("ha", pad="max").bucket == 0

    def test_resume_state(self):
        # Resuming with (j, C) continues the A1 descent mid-way, the way
        # MLTH pages hand over state.
        trie = self.build()
        first = trie.search("hb")
        # Simulate an upper page that already matched digit 0 = 'h'.
        inner_only = Trie(A)
        node = inner_only.cells.allocate("a", 1, 0, 1)
        inner_only.root = edge_to(node)
        resumed = inner_only.search("hb", start_matched=1, start_path="h")
        assert resumed.bucket == 1  # ('hb')_1 > 'ha'
        assert first.bucket == 1
        # Note: 'hat' itself goes LEFT of boundary 'ha' - prefix rule.
        assert trie.search("hat").bucket == 0

    def test_matched_field_progresses(self):
        trie = self.build()
        result = trie.search("ha")
        assert result.matched == 2  # matched 'h' then 'a'
        assert trie.search("x").matched == 0


class TestSearchCosts:
    def test_one_disk_access_per_search(self, generator):
        keys = generator.uniform(500)
        f = THFile(bucket_capacity=8)
        for k in keys:
            f.insert(k)
        reads_before = f.store.disk.stats.reads
        for k in keys[:50]:
            f.get(k)
        assert f.store.disk.stats.reads - reads_before == 50

    def test_unsuccessful_search_through_nil_is_free(self):
        # The Fig 5 scenario: an m=b split on keys sharing the prefix
        # 'osz' grafts a chain with nil leaves; a key mapped to a nil
        # leaf is reported absent without any disk access (Section 3.1).
        f = THFile(bucket_capacity=4, policy=None)
        from repro import SplitPolicy

        f = THFile(bucket_capacity=4, policy=SplitPolicy(split_position=-1))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k)
        nil_count = sum(1 for _, p, _ in f.trie.leaves_in_order() if p < 0)
        assert nil_count >= 1
        result = f.trie.search("ota")
        assert result.bucket is None  # 'ota' maps to a nil leaf
        reads_before = f.store.disk.stats.reads
        assert not f.contains("ota")
        assert f.store.disk.stats.reads == reads_before
