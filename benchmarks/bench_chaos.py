"""CI chaos benchmark: throughput and latency under injected faults.

Thin wrapper over the harness package (:mod:`repro.bench`): runs the
``chaos`` (differential sweep) and ``throughput`` (raw distributed
path) suites through :func:`repro.bench.reproduce`, which writes a
per-run artifact directory and refreshes ``BENCH_chaos.json`` in
``--out-dir``. Every differential point re-proves byte-identical
convergence against the single-node oracle, so the benchmark doubles
as an end-to-end correctness gate. Equivalent to::

    trie-hashing reproduce --suite chaos --suite throughput

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--out-dir DIR] [--count N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import reproduce


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="override both suites' op counts (default: quick profile)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--profile", choices=("quick", "full"), default="quick")
    args = parser.parse_args(argv)

    counts = None
    if args.count is not None:
        counts = {"chaos": args.count, "throughput": args.count}
    outcome = reproduce(
        profile=args.profile,
        out_root=args.out_dir / "runs",
        bench_dir=args.out_dir,
        suites=["chaos", "throughput"],
        counts=counts,
        seed=args.seed,
    )
    results = {
        **outcome["results"]["chaos"],
        **outcome["results"]["throughput"],
    }
    print(json.dumps(results, indent=2, sort_keys=True))
    if any(r["duplicate_applies"] for r in results["differential"]):
        print("FATAL: duplicate applies detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
