"""Binary serialisation of the trie and buckets.

The paper's six-byte cell (one byte DV, one byte DN, two bytes per
pointer) is realised literally here, so the "6 Kbyte buffer addresses a
1000-bucket file" style of arithmetic in Section 3.1 can be checked
against actual encoded bytes. Buckets serialise to a simple
length-prefixed record format. Both round-trip losslessly, which the test
suite verifies property-based.

Pointer encoding in the 16-bit on-disk form (per pointer):

* ``0xFFFF``         — nil
* high bit set       — edge to cell ``value & 0x7FFF``
* otherwise          — leaf (bucket address)

This caps serialised tries at 32767 cells and files at 32767 buckets,
comparable to the paper's own two-byte pointers.
"""

from __future__ import annotations

import struct

from ..core.alphabet import Alphabet
from ..core.cells import NIL, edge_target, edge_to, is_edge, is_nil
from ..core.errors import StorageError
from ..core.trie import Trie
from .buckets import Bucket

__all__ = [
    "CELL_BYTES",
    "serialize_trie",
    "deserialize_trie",
    "serialize_bucket",
    "deserialize_bucket",
]

#: Size of one encoded cell — the paper's practical figure.
CELL_BYTES = 6

_NIL16 = 0xFFFF
_EDGE_BIT = 0x8000


def _encode_ptr(ptr: int, cell_remap) -> int:
    if is_nil(ptr):
        return _NIL16
    if is_edge(ptr):
        target = cell_remap[edge_target(ptr)]
        if target >= 0x7FFF:
            raise StorageError("trie too large for 16-bit cell pointers")
        return _EDGE_BIT | target
    if ptr >= 0x7FFF:
        raise StorageError("bucket address too large for 16-bit pointers")
    return ptr


def _decode_ptr(raw: int) -> int:
    if raw == _NIL16:
        return NIL
    if raw & _EDGE_BIT:
        return edge_to(raw & 0x7FFF)
    return raw


def serialize_trie(trie: Trie) -> bytes:
    """Encode a trie into the standard 6-bytes-per-cell layout.

    Live cells are compacted (freed slots are not written); the root
    pointer and alphabet travel in a small header.
    """
    live = list(trie.cells.live_items())
    remap = {index: new for new, (index, _) in enumerate(live)}
    out = bytearray()
    alphabet_bytes = trie.alphabet.digits.encode("latin-1")
    out += struct.pack(">HH", len(live), len(alphabet_bytes))
    out += alphabet_bytes
    out += struct.pack(">H", _encode_ptr(trie.root, remap))
    for _, cell in live:
        out += struct.pack(
            ">BBHH",
            ord(cell.dv),
            cell.dn,
            _encode_ptr(cell.lp, remap),
            _encode_ptr(cell.rp, remap),
        )
    return bytes(out)


def deserialize_trie(data: bytes) -> Trie:
    """Inverse of :func:`serialize_trie`."""
    count, alpha_len = struct.unpack_from(">HH", data, 0)
    offset = 4
    alphabet = Alphabet(data[offset : offset + alpha_len].decode("latin-1"))
    offset += alpha_len
    (raw_root,) = struct.unpack_from(">H", data, offset)
    offset += 2
    trie = Trie(alphabet, root_ptr=_decode_ptr(raw_root))
    for _ in range(count):
        dv, dn, lp, rp = struct.unpack_from(">BBHH", data, offset)
        offset += CELL_BYTES
        trie.cells.allocate(chr(dv), dn, _decode_ptr(lp), _decode_ptr(rp))
    return trie


def serialize_bucket(bucket: Bucket) -> bytes:
    """Encode a bucket: header path, then length-prefixed key/value pairs.

    Values must be ``None`` or UTF-8 strings for the binary form (the
    in-memory simulation allows arbitrary payloads; persistence is only
    offered for string payloads, which all examples use).
    """
    out = bytearray()
    header = bucket.header_path.encode()
    out += struct.pack(">HH", len(header), len(bucket.keys))
    out += header
    for key, value in bucket.items():
        kb = key.encode()
        if value is None:
            vb = b""
            has_value = 0
        elif isinstance(value, str):
            vb = value.encode()
            has_value = 1
        else:
            raise StorageError("binary bucket format stores str/None values only")
        out += struct.pack(">HBH", len(kb), has_value, len(vb))
        out += kb
        out += vb
    return bytes(out)


def deserialize_bucket(data: bytes) -> Bucket:
    """Inverse of :func:`serialize_bucket`."""
    header_len, count = struct.unpack_from(">HH", data, 0)
    offset = 4
    bucket = Bucket()
    bucket.header_path = data[offset : offset + header_len].decode("utf-8")
    offset += header_len
    records: list[tuple[str, object]] = []
    for _ in range(count):
        klen, has_value, vlen = struct.unpack_from(">HBH", data, offset)
        offset += 5
        key = data[offset : offset + klen].decode("utf-8")
        offset += klen
        value = data[offset : offset + vlen].decode("utf-8") if has_value else None
        offset += vlen
        records.append((key, value))
    bucket.extend(records)
    return bucket
