"""The compact (coordinate/column) representation of a TH-trie.

The standard backend (:mod:`repro.core.cells`) stores one Python object
per internal node. That is faithful to the paper but pays the full
CPython object tax on the hottest loop in the library — the per-key
descent of Algorithm A1. This module provides the alternative *compact*
backend in the spirit of the coordinate hash trie (arXiv:2302.03690):
every node attribute lives in one flat parallel column indexed by the
cell number, so a descent touches four preallocated columns instead of
chasing heap objects.

Layout
------
:class:`CompactCells` keeps four parallel columns, one row per cell:

* ``dv`` — the digit value, stored as its ``ord`` in an ``array('I')``
  (digit order coincides with ``ord`` order by the alphabet contract,
  so comparisons stay native integer compares);
* ``dn`` — the digit number in an ``array('i')``; the value ``-1``
  marks a freed row (digit numbers are never negative in a live cell);
* ``lp`` / ``rp`` — the child pointers, kept as plain Python ``int``
  lists: pointers share the cell encoding of :mod:`repro.core.cells`
  (leaf = bucket address ``>= 0``, edge to cell ``i`` = ``-(i+1)``,
  plus the ``NIL`` sentinel), and CPython list reads are the fastest
  row access available. :meth:`CompactCells.columns` exposes the two
  numeric columns as read-only ``memoryview`` objects for audits,
  serialisation experiments and zero-copy inspection.
* ``md`` — the fused *(node, digit)* coordinate of the hash-trie
  scheme: ``dn << 21 | dv`` packed into one plain ``int`` list (21 bits
  covers every Unicode ``ord``; ``-1`` marks a freed row). The descent
  loops read only this column plus ``lp``/``rp``, halving the row
  accesses per visited node; ``dv``/``dn`` stay authoritative for views
  and serialisation, and :meth:`CompactCells.check` (via
  :meth:`CompactTrie.check_columns`) re-derives ``md`` to prove the two
  encodings never drift.

:class:`CompactCells` mirrors the :class:`~repro.core.cells.CellTable`
surface exactly — same allocate/free free-list (LIFO) discipline, same
``live_count`` / ``live_items`` / ``len`` semantics, same corruption
errors on freed-slot access — so the splitting, merging, redistribution
and serialisation code runs unchanged over either backend and, crucially,
so the *structural evolution* of a compact-backed file is byte-identical
to a cells-backed one under the same operation sequence (the property
the differential test suite in ``tests/test_compact.py`` pins down).

:class:`CompactTrie` subclasses :class:`~repro.core.trie.Trie`, swaps
the cell table for the columns, and overrides the two hot entry points
(:meth:`CompactTrie.search` and :meth:`CompactTrie.lookup`) with loops
that read the columns directly instead of going through row views.
Everything else — model conversion, traversal, surgery, checking — is
inherited and operates through :class:`CompactCellView` proxies.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator
from typing import Union

from .alphabet import Alphabet
from .cells import NIL, CellTable, is_edge, is_leaf
from .errors import TrieCorruptionError
from .trie import ROOT_LOCATION, Location, SearchResult, Trie

__all__ = ["CompactCellView", "CompactCells", "CompactTrie"]

#: ``dn`` column marker for freed rows (live digit numbers are >= 0).
_FREED = -1

#: Bits reserved for the digit value inside a packed ``md`` coordinate
#: (``max(ord) == 0x10FFFF`` needs 21; digit numbers get the rest).
_DV_BITS = 21
_DV_MASK = (1 << _DV_BITS) - 1


class CompactCellView:
    """A cell-shaped window onto one row of the parallel columns.

    Quacks exactly like :class:`~repro.core.cells.Cell` (``dv`` / ``dn``
    / ``lp`` / ``rp`` attributes, ``child`` / ``set_child``), but reads
    and writes go straight to the owning table's columns — the view
    holds no state of its own, so it is always coherent and may be kept
    across mutations of the same row.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table: "CompactCells", index: int):
        self._table = table
        self._index = index

    @property
    def dv(self) -> str:
        """The digit value, as the single character the trie compares."""
        return chr(self._table._dv[self._index])

    @dv.setter
    def dv(self, value: str) -> None:
        table = self._table
        index = self._index
        o = ord(value)
        table._dv[index] = o
        table._md[index] = (table._dn[index] << _DV_BITS) | o

    @property
    def dn(self) -> int:
        """The digit number."""
        return self._table._dn[self._index]

    @dn.setter
    def dn(self, value: int) -> None:
        if value < 0:
            raise TrieCorruptionError("digit numbers must be non-negative")
        table = self._table
        index = self._index
        table._dn[index] = value
        table._md[index] = (value << _DV_BITS) | table._dv[index]

    @property
    def lp(self) -> int:
        """The left child pointer."""
        return self._table._lp[self._index]

    @lp.setter
    def lp(self, value: int) -> None:
        self._table._lp[self._index] = value

    @property
    def rp(self) -> int:
        """The right child pointer."""
        return self._table._rp[self._index]

    @rp.setter
    def rp(self, value: int) -> None:
        self._table._rp[self._index] = value

    def child(self, side: str) -> int:
        """The pointer on ``side`` (``'L'`` or ``'R'``)."""
        if side == "L":
            return self._table._lp[self._index]
        return self._table._rp[self._index]

    def set_child(self, side: str, ptr: int) -> None:
        """Replace the pointer on ``side``."""
        if side == "L":
            self._table._lp[self._index] = ptr
        else:
            self._table._rp[self._index] = ptr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactCellView(#{self._index}: ({self.dv!r},{self.dn}), "
            f"L={self.lp}, R={self.rp})"
        )


class CompactCells:
    """Parallel-column cell storage with CellTable-identical semantics.

    The free list is LIFO, slot indices are stable, freed slots raise
    the same :class:`~repro.core.errors.TrieCorruptionError` messages as
    :class:`~repro.core.cells.CellTable`, and ``live_items`` yields in
    table order — every behaviour the structural algorithms (and the
    differential tests) can observe is preserved; only the storage
    layout changes.
    """

    __slots__ = ("_dv", "_dn", "_md", "_lp", "_rp", "_free")

    def __init__(self) -> None:
        self._dv: array = array("I")
        self._dn: array = array("i")
        self._md: list[int] = []
        self._lp: list[int] = []
        self._rp: list[int] = []
        self._free: list[int] = []

    def __len__(self) -> int:
        """Physical table length (including freed slots)."""
        return len(self._dn)

    def live_count(self) -> int:
        """Number of live (non-freed) cells — the trie size ``M``."""
        return len(self._dn) - len(self._free)

    def __getitem__(self, index: int) -> CompactCellView:
        if self._dn[index] == _FREED:
            raise TrieCorruptionError(f"cell {index} was freed")
        return CompactCellView(self, index)

    def allocate(self, dv: str, dn: int, lp: int, rp: int) -> int:
        """Create a cell, reusing a freed slot when available."""
        if dn < 0:
            raise TrieCorruptionError("digit numbers must be non-negative")
        o = ord(dv)
        if self._free:
            index = self._free.pop()
            self._dv[index] = o
            self._dn[index] = dn
            self._md[index] = (dn << _DV_BITS) | o
            self._lp[index] = lp
            self._rp[index] = rp
            return index
        self._dv.append(o)
        self._dn.append(dn)
        self._md.append((dn << _DV_BITS) | o)
        self._lp.append(lp)
        self._rp.append(rp)
        return len(self._dn) - 1

    def free(self, index: int) -> None:
        """Release a cell back to the free list."""
        if self._dn[index] == _FREED:
            raise TrieCorruptionError(f"cell {index} freed twice")
        self._dn[index] = _FREED
        self._md[index] = _FREED
        self._free.append(index)

    def live_items(self) -> Iterator[tuple[int, CompactCellView]]:
        """Iterate ``(index, cell)`` over live cells, table order."""
        dn = self._dn
        for index in range(len(dn)):
            if dn[index] != _FREED:
                yield index, CompactCellView(self, index)

    def columns(self) -> dict[str, memoryview]:
        """Read-only memoryviews over the numeric coordinate columns."""
        return {
            "dv": memoryview(self._dv).toreadonly(),
            "dn": memoryview(self._dn).toreadonly(),
        }

    def load_from(self, table: Union[CellTable, "CompactCells"]) -> None:
        """Replace this table's contents with a copy of ``table``.

        Slot indices *and* free-list order are preserved, so a clone
        loaded from a cells-backed table evolves structurally exactly
        like the original under the same operation sequence.
        """
        dv = array("I")
        dn = array("i")
        md: list[int] = []
        lp: list[int] = []
        rp: list[int] = []
        for index in range(len(table)):
            try:
                cell = table[index]
            except TrieCorruptionError:
                dv.append(0)
                dn.append(_FREED)
                md.append(_FREED)
                lp.append(NIL)
                rp.append(NIL)
            else:
                o = ord(cell.dv)
                dv.append(o)
                dn.append(cell.dn)
                md.append((cell.dn << _DV_BITS) | o)
                lp.append(cell.lp)
                rp.append(cell.rp)
        self._dv = dv
        self._dn = dn
        self._md = md
        self._lp = lp
        self._rp = rp
        self._free = list(table._free)


class CompactTrie(Trie):
    """A TH-trie over :class:`CompactCells` with column-direct hot paths.

    Drop-in for :class:`~repro.core.trie.Trie`: the full API (search,
    surgery, traversal, model conversion, checking) behaves identically;
    :meth:`search` and :meth:`lookup` are reimplemented over the raw
    columns for speed. Select it through ``THFile(trie_backend="compact")``.
    """

    __slots__ = ("_min_ord", "_max_ord")

    def __init__(self, alphabet: Alphabet, root_ptr: int = 0):
        super().__init__(alphabet, root_ptr)
        self.cells = CompactCells()
        self._min_ord = ord(alphabet.min_digit)
        self._max_ord = ord(alphabet.max_digit)

    @classmethod
    def from_trie(cls, source: Trie) -> "CompactTrie":
        """Deep-copy any trie into a compact-backed clone.

        Cell indices, free-slot order and the root pointer are all
        preserved, so the clone is structurally indistinguishable from
        the source (used when a durable checkpoint deserialises into the
        standard representation and the file is configured compact).
        """
        clone = cls(source.alphabet, root_ptr=source.root)
        clone.cells.load_from(source.cells)
        return clone

    def lookup(self, key: str) -> int:
        """Map ``key`` to its raw leaf pointer — the descent alone.

        The batched and point read paths only need the leaf; skipping
        the logical path / trail / location bookkeeping of Algorithm A1
        roughly halves the per-key cost again on top of the column
        layout. Semantically identical to ``search(key).ptr``.
        """
        # Keys are compared digit-by-digit as ords; encoding the key once
        # turns every per-node ``ord(key[j])`` into a C-level bytes index.
        # Latin-1 covers ords 0..255 — keys beyond that (exotic alphabets)
        # take the always-correct full search instead.
        try:
            kb = key.encode("latin-1")
        except UnicodeEncodeError:
            return self.search(key).ptr
        cells = self.cells
        md = cells._md
        lp = cells._lp
        rp = cells._rp
        min_ord = self._min_ord
        n = self.root
        j = 0
        klen = len(kb)
        # ``~n`` decodes the edge encoding ``-(i + 1)`` in one op, and the
        # NIL sentinel's pseudo-index (``(1 << 60) - 1``) can never be a
        # real row, so the (free on 3.11+) IndexError handler doubles as
        # the NIL check without a per-node comparison. A freed row packs
        # ``md == -1``, so ``i`` decodes to ``-1`` and the descent takes
        # the same right-pointer step the ``dn``-column walk would.
        while n < 0:
            index = ~n
            try:
                m = md[index]
            except IndexError:
                return NIL
            i = m >> _DV_BITS
            if j == i:
                cj = kb[j] if j < klen else min_ord
                d = m & _DV_MASK
                if cj <= d:
                    n = lp[index]
                    if cj == d:
                        j += 1
                else:
                    n = rp[index]
            elif j < i:
                n = lp[index]
            else:
                n = rp[index]
        return n

    def search(
        self,
        key: str,
        pad: str = "min",
        start_matched: int = 0,
        start_path: str = "",
    ) -> SearchResult:
        """Algorithm A1 over the flat columns (see :meth:`Trie.search`)."""
        cells = self.cells
        dv = cells._dv
        dn = cells._dn
        lp = cells._lp
        rp = cells._rp
        pad_ord = self._min_ord if pad == "min" else self._max_ord
        n = self.root
        location = ROOT_LOCATION
        trail: list[tuple[int, str]] = []
        path = start_path
        j = start_matched
        visited = 0
        klen = len(key)
        while n < 0 and n != NIL:
            visited += 1
            index = -n - 1
            i = dn[index]
            if j == i:
                cj = ord(key[j]) if j < klen else pad_ord
                d = dv[index]
                if cj <= d:
                    if len(path) < i:
                        raise TrieCorruptionError(
                            f"logical path {path!r} too short for digit "
                            f"number {i}"
                        )
                    path = path[:i] + chr(d)
                    trail.append((index, "L"))
                    location = Location(index, "L")
                    n = lp[index]
                    if cj == d:
                        j += 1
                else:
                    trail.append((index, "R"))
                    location = Location(index, "R")
                    n = rp[index]
            elif j < i:
                if len(path) < i:
                    raise TrieCorruptionError(
                        f"logical path {path!r} too short for digit number {i}"
                    )
                path = path[:i] + chr(dv[index])
                trail.append((index, "L"))
                location = Location(index, "L")
                n = lp[index]
            else:
                trail.append((index, "R"))
                location = Location(index, "R")
                n = rp[index]
        bucket = None if n == NIL else n
        return SearchResult(n, bucket, path, location, tuple(trail), visited, j)

    def check_columns(self) -> None:
        """Verify the column invariants specific to the compact layout.

        Checks column length agreement, freed-row marking consistency
        with the free list, and pointer well-formedness of live rows.
        The generic trie axioms are covered by :meth:`Trie.check`.
        """
        cells = self.cells
        n = len(cells._dn)
        if not (
            len(cells._dv) == n == len(cells._md)
            and len(cells._lp) == n == len(cells._rp)
        ):
            raise TrieCorruptionError("compact columns disagree on length")
        for index in range(n):
            dn = cells._dn[index]
            want = _FREED if dn == _FREED else (dn << _DV_BITS) | cells._dv[index]
            if cells._md[index] != want:
                raise TrieCorruptionError(
                    f"cell {index}: packed coordinate {cells._md[index]} "
                    f"drifted from dv/dn columns ({want})"
                )
        freed = {i for i in range(n) if cells._dn[i] == _FREED}
        if freed != set(cells._free):
            raise TrieCorruptionError(
                f"freed rows {sorted(freed)} != free list {sorted(cells._free)}"
            )
        if len(set(cells._free)) != len(cells._free):
            raise TrieCorruptionError("free list holds a duplicate slot")
        for index in range(n):
            if cells._dn[index] == _FREED:
                continue
            for ptr in (cells._lp[index], cells._rp[index]):
                if is_edge(ptr):
                    target = -ptr - 1
                    if target >= n or cells._dn[target] == _FREED:
                        raise TrieCorruptionError(
                            f"cell {index} points at dead cell {target}"
                        )
                elif not (is_leaf(ptr) or ptr == NIL):
                    raise TrieCorruptionError(
                        f"cell {index} holds malformed pointer {ptr}"
                    )
