"""The trie-hashing file: the library's primary public API.

A :class:`THFile` is an ordered dynamic file of ``(key, value)`` records
stored in fixed-capacity buckets on a (simulated) disk and addressed
through an in-core TH-trie. One object covers the whole family of the
paper's methods — the :class:`~repro.core.policies.SplitPolicy` decides
whether it behaves as basic trie hashing (/LIT81/), as THCL with any
controlled load, or as THCL with redistribution. The multilevel variant
(trie itself paged to disk) is :class:`repro.core.mlth.MLTHFile`.

Typical use::

    from repro import THFile, SplitPolicy

    f = THFile(bucket_capacity=20, policy=SplitPolicy.thcl_ascending(d=2))
    for word in sorted(words):
        f.insert(word)
    assert f.load_factor() > 0.9
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import Optional

from ..check.hook import maybe_audit
from ..obs.tracer import TRACER
from ..storage.buckets import BucketStore
from .alphabet import DEFAULT_ALPHABET, Alphabet
from .boundaries import BoundaryModel
from .cells import NIL, is_nil
from .compact import CompactTrie
from .errors import DuplicateKeyError, KeyNotFoundError
from .merge import basic_delete_maintenance, guaranteed_delete_maintenance
from .policies import SplitPolicy
from .redistribution import try_redistribute
from .split import expand_basic, plan_split
from .thcl_split import collapse_equal_leaf_nodes, insert_boundary
from .trie import SearchResult, Trie

__all__ = ["FileStats", "THFile"]


class FileStats:
    """Operation counters of one file (disk counters live on the store)."""

    __slots__ = (
        "inserts",
        "deletes",
        "searches",
        "splits",
        "nil_allocations",
        "nil_reversions",
        "redistributions",
        "merges",
        "borrows",
        "nodes_added",
        "leaves_repointed",
        "nodes_collapsed",
    )

    def __init__(self) -> None:
        self.inserts = 0
        self.deletes = 0
        self.searches = 0
        self.splits = 0
        self.nil_allocations = 0
        self.nil_reversions = 0
        self.redistributions = 0
        self.merges = 0
        self.borrows = 0
        self.nodes_added = 0
        self.leaves_repointed = 0
        self.nodes_collapsed = 0

    def as_dict(self) -> dict:
        """All counters as a plain dictionary (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}


class THFile:
    """A primary-key-ordered dynamic file addressed by trie hashing.

    Parameters
    ----------
    bucket_capacity:
        The paper's ``b`` (records per bucket), at least 2.
    policy:
        A :class:`SplitPolicy`; defaults to basic trie hashing.
    alphabet:
        Key alphabet; defaults to space + lowercase letters.
    store:
        A :class:`~repro.storage.buckets.BucketStore`; a private store
        over a fresh simulated disk is created when omitted.
    trie_backend:
        ``"cells"`` (the standard one-object-per-node table) or
        ``"compact"`` (the flat column layout of
        :mod:`repro.core.compact`). Both backends are structurally
        byte-identical under the same operation sequence; compact is
        several times faster on the per-key descent.
    """

    def __init__(
        self,
        bucket_capacity: int = 4,
        policy: Optional[SplitPolicy] = None,
        alphabet: Alphabet = DEFAULT_ALPHABET,
        store: Optional[BucketStore] = None,
        trie_backend: str = "cells",
    ):
        if bucket_capacity < 2:
            raise ValueError("bucket capacity b must be at least 2")
        if trie_backend not in ("cells", "compact"):
            raise ValueError(
                f"unknown trie backend {trie_backend!r} "
                "(choose 'cells' or 'compact')"
            )
        self.capacity = bucket_capacity
        self.policy = policy if policy is not None else SplitPolicy.basic_th()
        self.alphabet = alphabet
        self.store = store if store is not None else BucketStore()
        self.trie_backend = trie_backend
        trie_class = CompactTrie if trie_backend == "compact" else Trie
        self.trie = trie_class(alphabet, root_ptr=self.store.allocate())
        self.stats = FileStats()
        self._size = 0
        #: ``(structure_generation, BoundaryModel)`` snapshot reused by
        #: the batched APIs between structural changes.
        self._model_cache: Optional[tuple[int, BoundaryModel]] = None
        #: Optional :class:`~repro.storage.wal.WALWriter` recording every
        #: structure modification (attached by a durable session).
        self.journal = None
        # Validate the policy's positions against this capacity up front.
        self.policy.split_index(bucket_capacity)
        self.policy.bounding_index(bucket_capacity)

    @property
    def structure_generation(self) -> int:
        """A counter that changes whenever buckets split, merge or move.

        Cursors (:class:`repro.core.cursor.Cursor`) snapshot it to detect
        structural changes under them; plain record updates don't count.
        """
        s = self.stats
        return (
            s.splits
            + s.nil_allocations
            + s.nil_reversions
            + s.redistributions
            + s.merges
            + s.borrows
            + s.nodes_collapsed
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> object:
        """Return the value stored under ``key``.

        Costs one disk access when the key's leaf is a bucket; an
        unsuccessful search through a nil leaf costs none (Section 3.1).
        """
        if TRACER.enabled:
            with TRACER.span("search", key=key):
                return self._get(key)
        return self._get(key)

    def _get(self, key: str) -> object:
        key = self.alphabet.validate_key(key)
        ptr = self.trie.lookup(key)
        self.stats.searches += 1
        if ptr == NIL:
            raise KeyNotFoundError(key)
        return self.store.read(ptr).get(key)

    def contains(self, key: str) -> bool:
        """True when ``key`` is stored in the file."""
        if TRACER.enabled:
            with TRACER.span("search", key=key):
                return self._contains(key)
        return self._contains(key)

    def _contains(self, key: str) -> bool:
        key = self.alphabet.validate_key(key)
        ptr = self.trie.lookup(key)
        self.stats.searches += 1
        if ptr == NIL:
            return False
        return self.store.read(ptr).contains(key)

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        """Number of records in the file (the paper's ``x``)."""
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: str, value: object = None) -> None:
        """Insert a new record; raises :class:`DuplicateKeyError` if present."""
        if TRACER.enabled:
            with TRACER.span("insert", key=key):
                self._store_record(key, value, replace=False)
        else:
            self._store_record(key, value, replace=False)
        maybe_audit(self, f"THFile.insert({key!r})")

    def put(self, key: str, value: object = None) -> None:
        """Insert or overwrite the record under ``key``."""
        if TRACER.enabled:
            with TRACER.span("insert", key=key):
                self._store_record(key, value, replace=True)
        else:
            self._store_record(key, value, replace=True)
        maybe_audit(self, f"THFile.put({key!r})")

    def _store_record(self, key: str, value: object, replace: bool) -> None:
        key = self.alphabet.validate_key(key)
        # Fast descent first; the slower full search (path + trail +
        # location) reruns only on the rare structural paths below.
        ptr = self.trie.lookup(key)
        if ptr == NIL:
            # A nil leaf: allocate the bucket now (basic method, §2.3).
            result = self.trie.search(key)
            address = self.store.allocate()
            self.trie.set_ptr(result.location, address)
            bucket = self.store.peek(address)
            bucket.header_path = result.path
            bucket.insert(key, value)
            self.store.write(address, bucket)
            self.stats.nil_allocations += 1
            self.stats.inserts += 1
            self._size += 1
            if TRACER.enabled:
                TRACER.emit("split", kind="nil-alloc", bucket=address)
            return
        bucket = self.store.read(ptr)
        position = bucket.find(key)
        if position >= 0:
            if not replace:
                raise DuplicateKeyError(key)
            bucket.values[position] = value
            self.store.write(ptr, bucket)
            return
        if len(bucket) < self.capacity:
            bucket.insert(key, value)
            self.store.write(ptr, bucket)
        else:
            self._split(self.trie.search(key), bucket, key, value)
        self.stats.inserts += 1
        self._size += 1

    def _split(self, result: SearchResult, bucket, key: str, value: object) -> None:
        """Handle an overflow: redistribute if allowed, else split (A2)."""
        records: list[tuple[str, object]] = list(bucket.items())
        at = bisect.bisect_left(bucket.keys, key)
        records.insert(at, (key, value))

        if self.policy.redistribution != "none":
            outcome = try_redistribute(
                self.trie,
                self.store,
                result,
                records,
                self.capacity,
                self.policy,
                self.alphabet,
                journal=self.journal,
            )
            if outcome is not None:
                self.stats.redistributions += 1
                self.stats.nodes_added += outcome.nodes_added
                self.stats.leaves_repointed += outcome.leaves_repointed
                if self.policy.collapse_equal_leaves:
                    self.stats.nodes_collapsed += collapse_equal_leaf_nodes(self.trie)
                if TRACER.enabled:
                    TRACER.emit(
                        "redistribute",
                        bucket=result.bucket,
                        nodes_added=outcome.nodes_added,
                        leaves_repointed=outcome.leaves_repointed,
                    )
                return

        plan = None
        if self.policy.prefer_existing_boundary:
            plan = self._plan_on_existing_boundary(records)
        if plan is None:
            plan = plan_split(
                records,
                self.policy.split_index(self.capacity),
                self.policy.bounding_index(self.capacity),
                self.alphabet,
            )
        new_address = self.store.allocate()
        if self.policy.nil_nodes:
            added = expand_basic(
                self.trie,
                result.location,
                result.path,
                plan.boundary,
                result.bucket,
                new_address,
                journal=self.journal,
            )
            repointed = 0
        else:
            insertion = insert_boundary(
                self.trie,
                plan.split_key,
                plan.boundary,
                result.bucket,
                new_address,
                result.bucket,
                journal=self.journal,
            )
            added, repointed = insertion
        new_bucket = self.store.peek(new_address)
        # The new bucket's right cut: the old leaf's path in the usual
        # case; after a rare-case chain the new bucket sits immediately
        # above the split string, cut by the chain's next boundary. Under
        # THCL the old bucket may span several shared leaves, so its
        # recorded header (the cut of the whole region), not the path of
        # the one leaf the key hit, is what the upper half inherits.
        if self.policy.nil_nodes and added > 1:
            new_bucket.header_path = plan.boundary[:-1]
        elif self.policy.nil_nodes:
            new_bucket.header_path = result.path
        else:
            new_bucket.header_path = bucket.header_path
        new_bucket.extend(plan.move)
        bucket.keys[:] = [k for k, _ in plan.stay]
        bucket.values[:] = [v for _, v in plan.stay]
        bucket.header_path = plan.boundary
        self.store.write(result.bucket, bucket)
        self.store.write(new_address, new_bucket)
        self.stats.splits += 1
        self.stats.nodes_added += added
        self.stats.leaves_repointed += repointed
        if TRACER.enabled:
            TRACER.emit(
                "split",
                kind="basic" if self.policy.nil_nodes else "thcl",
                bucket=result.bucket,
                new_bucket=new_address,
                moved=len(plan.move),
                stayed=len(plan.stay),
                nodes_added=added,
            )

    def _plan_on_existing_boundary(self, records):
        """Section 4.5's refinement: a split that adds no trie node.

        Scans split-key candidates from the basic position upward for
        one whose (deterministic) split string lies entirely on the
        anchor's logical path — possible exactly when the overflowing
        bucket spans several leaves, and handled by step 3.4 without
        enlarging the trie. Returns a plan or ``None``.
        """
        from .keys import common_prefix_length, split_string
        from .split import SplitPlan

        base = self.policy.split_index(self.capacity)
        for position in range(base, len(records)):
            anchor = records[position - 1][0]
            bound = records[position][0]
            boundary = split_string(anchor, bound, self.alphabet)
            path = self.trie.search(anchor).path
            if common_prefix_length(boundary, path) == len(boundary):
                return SplitPlan(
                    boundary,
                    records[:position],
                    records[position:],
                    anchor,
                )
        return None

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, key: str) -> object:
        """Remove ``key``'s record and return its value.

        Post-delete maintenance follows the policy's ``merge`` regime:
        sibling merges (basic), guaranteed >= 50% load (THCL), or none.
        """
        if TRACER.enabled:
            with TRACER.span("delete", key=key):
                value = self._delete(key)
        else:
            value = self._delete(key)
        maybe_audit(self, f"THFile.delete({key!r})")
        return value

    def _delete(self, key: str) -> object:
        key = self.alphabet.validate_key(key)
        result = self.trie.search(key)
        if result.bucket is None:
            raise KeyNotFoundError(key)
        bucket = self.store.read(result.bucket)
        value = bucket.remove(key)  # raises KeyNotFoundError when absent
        self.store.write(result.bucket, bucket)
        self.stats.deletes += 1
        self._size -= 1
        if self.policy.merge == "siblings":
            action = basic_delete_maintenance(
                self.trie, self.store, result, self.capacity, journal=self.journal
            )
            if action == "merge":
                self.stats.merges += 1
                if TRACER.enabled:
                    TRACER.emit("merge", kind="siblings", bucket=result.bucket)
            elif action == "nil":
                # The emptied bucket was freed and its leaf reverted to
                # nil — a structural change: cursors and cached models
                # must observe it through structure_generation.
                self.stats.nil_reversions += 1
                if TRACER.enabled:
                    TRACER.emit("merge", kind="nil", bucket=result.bucket)
        elif self.policy.merge == "rotations":
            from .merge import rotation_delete_maintenance

            action = rotation_delete_maintenance(self, result)
            if action in ("merge", "rotation-merge"):
                self.stats.merges += 1
                if TRACER.enabled:
                    TRACER.emit("merge", kind=action, bucket=result.bucket)
            elif action == "nil":
                self.stats.nil_reversions += 1
                if TRACER.enabled:
                    TRACER.emit("merge", kind="nil", bucket=result.bucket)
        elif self.policy.merge == "guaranteed":
            self._rebalance_after_delete(key)
        return value

    def _rebalance_after_delete(self, probe_key: str) -> None:
        """Merge/borrow until the probe key's bucket meets the floor."""
        while True:
            result = self.trie.search(probe_key)
            if result.bucket is None:
                return
            if len(self.store.peek(result.bucket)) >= self.capacity // 2:
                return
            action = guaranteed_delete_maintenance(
                self.trie,
                self.store,
                result,
                self.capacity,
                self.alphabet,
                journal=self.journal,
            )
            if action == "merge":
                self.stats.merges += 1
                if TRACER.enabled:
                    TRACER.emit("merge", kind="guaranteed", bucket=result.bucket)
            elif action == "borrow":
                self.stats.borrows += 1
                if TRACER.enabled:
                    TRACER.emit("rebalance", kind="borrow", bucket=result.bucket)
            else:
                return

    # ------------------------------------------------------------------
    # Ordered iteration
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[str, object]]:
        """Iterate every record in key order (reads each bucket once)."""
        previous = None
        for _, ptr, _path in self.trie.leaves_in_order():
            if is_nil(ptr) or ptr == previous:
                continue
            previous = ptr
            yield from self.store.read(ptr).items()

    def keys(self) -> Iterator[str]:
        """Iterate every key in order."""
        for key, _ in self.items():
            yield key

    def range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, object]]:
        """Iterate records with ``low <= key <= high`` in key order.

        ``None`` bounds are open. This is the range-query support that
        order-preserving hashing buys (Section 2.2); consecutive leaves
        sharing a bucket cost a single access (Section 4.1's remark).
        """
        from .range_query import scan  # local import to avoid a cycle

        if TRACER.enabled:
            return TRACER.wrap_iter("range", scan(self, low, high))
        return scan(self, low, high)

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------
    def _snapshot_model(self) -> BoundaryModel:
        """The current boundary model, cached across structural quiet.

        ``structure_generation`` only moves when buckets split, merge or
        move, so a snapshot taken at generation ``g`` stays valid for
        every batch until the generation changes — repeated batches pay
        for one model export, not one per call.
        """
        generation = self.structure_generation
        cached = self._model_cache
        if cached is not None and cached[0] == generation:
            return cached[1]
        model = self.trie.to_model()
        self._model_cache = (generation, model)
        return model

    def get_many(self, keys: Iterable[str]) -> dict[str, object]:
        """Batched point lookups: ``{key: value}`` for the keys present.

        Keys are validated, deduplicated and sorted once; the sorted run
        is located with a single merged pass over the boundary model
        (:meth:`BoundaryModel.locate_sorted`) and each bucket is read at
        most once per batch. Absent keys are omitted from the result
        (the batched analogue of a ``contains``-guarded ``get`` loop).
        """
        unique = sorted({self.alphabet.validate_key(k) for k in keys})
        out: dict[str, object] = {}
        if not unique:
            return out
        model = self._snapshot_model()
        gaps = model.locate_sorted(unique)
        children = model.children
        read = self.store.read
        buckets_visited = 0
        i = 0
        n = len(unique)
        while i < n:
            address = children[gaps[i]]
            j = i + 1
            while j < n and children[gaps[j]] == address:
                j += 1
            self.stats.searches += j - i
            if address is not None:
                bucket = read(address)
                buckets_visited += 1
                bucket_keys = bucket.keys
                bucket_values = bucket.values
                size = len(bucket_keys)
                for key in unique[i:j]:
                    at = bisect.bisect_left(bucket_keys, key)
                    if at < size and bucket_keys[at] == key:
                        out[key] = bucket_values[at]
            i = j
        if TRACER.enabled:
            TRACER.emit(
                "batch", op="get_many", keys=n, buckets=buckets_visited
            )
        return out

    def put_many(self, items: Iterable[tuple[str, object]]) -> None:
        """Batched upsert of ``(key, value)`` pairs.

        Later occurrences of a duplicate key win (the same final state a
        per-key ``put`` loop reaches). Pairs are sorted once and grouped
        by target bucket from a model snapshot; a group that fits in its
        bucket is merged with a single write. Groups that overflow (or
        hit a nil leaf) fall back to the per-key path, which splits as
        needed.

        The one snapshot survives those structural changes when
        redistribution is off: a split or nil allocation only remaps
        keys of the bucket being worked on, and the sorted grouping puts
        all of those keys in the *current* group — later groups keep
        both their bucket address and their membership. Redistribution
        can move records (and the cut boundary) between neighbouring
        buckets, so those policies drop to the always-correct per-key
        path for the remainder as soon as the structure moves.
        """
        validate = self.alphabet.validate_key
        last_wins: dict[str, object] = {}
        for key, value in items:
            last_wins[validate(key)] = value
        pending = sorted(last_wins.items())
        total = len(pending)
        buckets_visited = 0
        generation = self.structure_generation
        model = self._snapshot_model()
        gaps = model.locate_sorted([key for key, _ in pending])
        children = model.children
        stale_safe = self.policy.redistribution == "none"
        i = 0
        n = len(pending)
        while i < n:
            if not stale_safe and self.structure_generation != generation:
                for key, value in pending[i:]:
                    self._store_record(key, value, replace=True)
                break
            address = children[gaps[i]]
            j = i + 1
            while j < n and children[gaps[j]] == address:
                j += 1
            if address is None:
                for key, value in pending[i:j]:
                    self._store_record(key, value, replace=True)
            else:
                buckets_visited += 1
                self._put_group(address, pending[i:j])
            i = j
        if TRACER.enabled:
            TRACER.emit(
                "batch", op="put_many", keys=total, buckets=buckets_visited
            )
        maybe_audit(self, f"THFile.put_many({total} keys)")

    def _put_group(self, address, group):
        """Apply one bucket's worth of sorted upserts with one write."""
        bucket = self.store.read(address)
        bucket_keys = bucket.keys
        fresh = []
        for key, value in group:
            at = bisect.bisect_left(bucket_keys, key)
            if at < len(bucket_keys) and bucket_keys[at] == key:
                bucket.values[at] = value
            else:
                fresh.append((key, value))
        if len(bucket) + len(fresh) <= self.capacity:
            for key, value in fresh:
                bucket.insert(key, value)
            self.store.write(address, bucket)
            self.stats.inserts += len(fresh)
            self._size += len(fresh)
        else:
            # Persist the in-place replacements, then let the per-key
            # path split its way through the new records.
            self.store.write(address, bucket)
            for key, value in fresh:
                self._store_record(key, value, replace=True)

    def bulk_range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> list[tuple[str, object]]:
        """Materialised range scan reading each bucket exactly once.

        The batched sibling of :meth:`range_items`: same inclusive
        ``low <= key <= high`` semantics and ordering, but the gap span
        is computed from a model snapshot up front and the records come
        back as one list — no cursor, no staleness window.
        """
        if low is not None:
            low = self.alphabet.validate_key(low)
        if high is not None:
            high = self.alphabet.validate_key(high)
        model = self._snapshot_model()
        children = model.children
        first = 0 if low is None else model.locate(low)[0]
        last = len(children) - 1 if high is None else model.locate(high)[0]
        out: list[tuple[str, object]] = []
        previous = None
        for gap in range(first, last + 1):
            address = children[gap]
            if address is None or address == previous:
                continue
            previous = address
            bucket = self.store.read(address)
            keys = bucket.keys
            lo = 0 if low is None else bisect.bisect_left(keys, low)
            hi = len(keys) if high is None else bisect.bisect_right(keys, high)
            out.extend(zip(keys[lo:hi], bucket.values[lo:hi]))
        if TRACER.enabled:
            TRACER.emit(
                "batch", op="bulk_range", keys=len(out),
                buckets=last - first + 1,
            )
        return out

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def bucket_count(self) -> int:
        """Number of allocated buckets (the paper's ``N + 1``)."""
        return self.store.allocated_count()

    def load_factor(self) -> float:
        """The paper's ``a = x / (b * (N + 1))``."""
        buckets = self.bucket_count()
        return self._size / (self.capacity * buckets) if buckets else 0.0

    def trie_size(self) -> int:
        """Number of trie cells (the paper's ``M``)."""
        return self.trie.node_count

    def growth_rate(self) -> float:
        """Cells per split, the paper's ``s = M / N`` (Section 4.5)."""
        splits = self.stats.splits + self.stats.nil_allocations
        return self.trie.node_count / splits if splits else 0.0

    def nil_leaf_fraction(self) -> float:
        """Fraction of leaves that are nil (basic method metric, §3.1)."""
        leaves = self.trie.leaves_in_order()
        if not leaves:
            return 0.0
        return sum(1 for _, ptr, _ in leaves if is_nil(ptr)) / len(leaves)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify every invariant tying trie, model and buckets together.

        Used pervasively by the test suite: the trie must satisfy the
        structural axioms; every stored key must map (through the trie
        *and* through the canonical model) to the bucket storing it; no
        bucket may exceed capacity; live buckets and reachable leaves
        must agree.
        """
        self.trie.check(expect_no_nil=not self.policy.nil_nodes)
        model = self.trie.to_model()
        reachable = {c for c in model.children if c is not None}
        live = set(self.store.live_addresses())
        if reachable != live:
            raise AssertionError(
                f"trie leaves {sorted(reachable)} != live buckets {sorted(live)}"
            )
        total = 0
        for address in live:
            bucket = self.store.peek(address)
            if len(bucket) > self.capacity:
                raise AssertionError(f"bucket {address} over capacity")
            total += len(bucket)
            for key in bucket.keys:
                mapped = model.lookup(key)
                if mapped != address:
                    raise AssertionError(
                        f"key {key!r} stored in bucket {address} but mapped "
                        f"to {mapped}"
                    )
                searched = self.trie.search(key)
                if searched.bucket != address:
                    raise AssertionError(
                        f"A1 maps {key!r} to {searched.bucket}, stored in "
                        f"{address}"
                    )
        if total != self._size:
            raise AssertionError(f"size {self._size} but {total} records stored")
