"""Simulated disk substrate.

The paper's performance claims are phrased in *disk accesses per
operation* and *load factors*; its testbed was a Turbo Pascal program on
early-80s PC hardware. This package substitutes a faithful but synthetic
substrate: a block-addressed simulated disk that counts every read and
write, an optional seek/rotation/transfer latency model to turn counts
into simulated time, an LRU buffer pool, and the bucket store used by the
trie-hashing and B-tree files.
"""

from .buckets import Bucket, BucketStore
from .buffer import BufferPool
from .disk import DiskStats, SimulatedDisk
from .latency import LatencyModel
from .layout import Layout

__all__ = [
    "Bucket",
    "BucketStore",
    "BufferPool",
    "DiskStats",
    "SimulatedDisk",
    "LatencyModel",
    "Layout",
]
