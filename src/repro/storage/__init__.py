"""Simulated disk substrate and the durability layer on top of it.

The paper's performance claims are phrased in *disk accesses per
operation* and *load factors*; its testbed was a Turbo Pascal program on
early-80s PC hardware. This package substitutes a faithful but synthetic
substrate: a block-addressed simulated disk that counts every read and
write, an optional seek/rotation/transfer latency model to turn counts
into simulated time, an LRU buffer pool, and the bucket store used by the
trie-hashing and B-tree files.

On top of the substrate sits crash-safe durability (see
``docs/DURABILITY.md``): a stable store with POSIX crash semantics
(:class:`StableStore`), a checksummed logical write-ahead log
(:class:`WALWriter`), atomic incremental checkpoints with REDO recovery
(:class:`DurableFile`), and the crash-point harness
(:class:`RecordingStableStore`, :class:`CrashingStore`) that kills and
recovers the file at every physical write.
"""

from .buckets import Bucket, BucketStore
from .buffer import BufferPool
from .crashpoints import CrashingStore, CrashPoint, RecordingStableStore
from .disk import DiskStats, SimulatedDisk
from .faults import FaultyDisk
from .latency import LatencyModel
from .layout import Layout
from ..core.errors import CrashError, RecoveryError
from .recovery import DurableFile, RecoveryReport
from .wal import StableStats, StableStore, WALRecord, WALWriter

__all__ = [
    "Bucket",
    "BucketStore",
    "BufferPool",
    "CrashError",
    "CrashPoint",
    "CrashingStore",
    "DiskStats",
    "DurableFile",
    "FaultyDisk",
    "LatencyModel",
    "Layout",
    "RecordingStableStore",
    "RecoveryError",
    "RecoveryReport",
    "SimulatedDisk",
    "StableStats",
    "StableStore",
    "WALRecord",
    "WALWriter",
]
