"""The whole-program lint pass: call graph, rules TH010-TH014, cache.

Fixtures build miniature programs through :func:`summarize_source` with
realistic module names (the rules key on module position: a coroutine in
``repro.serving``, a dispatch method in a ``*.server`` module), one
tripping and one compliant variant per rule. The cache tests drive
:func:`run_flow` against a real tree on disk and assert on
:class:`FlowStats` — the observable contract of incremental invalidation.
"""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.flow import (
    build_program,
    run_flow,
    summarize_source,
    to_dot,
    to_sarif,
)
from repro.lint.flow.engine import CODE_ALIASES, DEFAULT_BASELINE
from repro.lint.flow.rules import all_flow_rules

ROOT = Path(__file__).resolve().parents[1]


def build(sources):
    """A linked Program from ``{module_name: source}``."""
    summaries = {}
    for module, code in sources.items():
        path = Path(module.replace(".", "/") + ".py")
        summaries[module] = summarize_source(code, path, module)
    return build_program(summaries)


def findings(program, code):
    rule = {r.code: r for r in all_flow_rules()}[code]
    return list(rule.checker(program))


def codes(violations):
    return sorted(v.code for v in violations)


# ======================================================================
# TH010 — blocking calls reachable from serving coroutines
# ======================================================================
class TestTH010:
    def test_trips_through_a_sync_helper_chain(self):
        # The retired per-file TH009 saw only the coroutine body; the
        # flow rule follows the chain into another module entirely.
        program = build({
            "repro.serving.server": (
                "from repro.util.pacing import backoff\n\n"
                "async def pump(conn):\n"
                "    backoff(1)\n"
            ),
            "repro.util.pacing": (
                "import time\n\n"
                "def backoff(n):\n"
                "    time.sleep(n)\n"
            ),
        })
        found = findings(program, "TH010")
        assert codes(found) == ["TH010"]
        assert found[0].path == "repro/util/pacing.py"
        assert "time.sleep" in found[0].message
        assert "pump" in found[0].message  # the chain names the entry

    def test_passes_when_the_helper_is_loop_safe(self):
        program = build({
            "repro.serving.server": (
                "import asyncio\n\n"
                "async def pump(conn):\n"
                "    await asyncio.sleep(1)\n"
            ),
        })
        assert findings(program, "TH010") == []

    def test_blocking_is_fine_off_the_event_loop(self):
        # A sync facade sleeping on the caller's thread has no async
        # caller — the old TH009 exemption, preserved interprocedurally.
        program = build({
            "repro.serving.client": (
                "import time\n\n"
                "def sleep(seconds):\n"
                "    time.sleep(seconds)\n"
            ),
        })
        assert findings(program, "TH010") == []

    def test_aliased_import_does_not_hide_the_call(self):
        program = build({
            "repro.serving.server": (
                "import time as t\n\n"
                "async def pump(conn):\n"
                "    t.sleep(1)\n"
            ),
        })
        assert codes(findings(program, "TH010")) == ["TH010"]


# ======================================================================
# TH011 — wire-protocol exhaustiveness
# ======================================================================
_WIRE_MESSAGES = (
    'GET = "get"\n'
    'PUT = "put"\n'
    "\n\n"
    "class Op:\n"
    "    @classmethod\n"
    "    def get(cls, key):\n"
    "        return cls()\n"
    "\n"
    "    @classmethod\n"
    "    def put(cls, key):\n"
    "        return cls()\n"
)

_WIRE_ERRORS = (
    "class WireError(Exception):\n"
    "    pass\n"
    "\n\n"
    "class TeapotError(WireError):\n"
    "    pass\n"
)


class TestTH011:
    def test_clean_protocol_passes(self):
        program = build({
            "repro.x.messages": _WIRE_MESSAGES,
            "repro.x.errors": _WIRE_ERRORS,
            "repro.x.codec": (
                "from repro.x.errors import TeapotError, WireError\n\n"
                "ERROR_CODES = {1: WireError, 2: TeapotError}\n"
            ),
            "repro.x.server": (
                "from repro.x.messages import GET, PUT\n"
                "from repro.x.errors import TeapotError\n\n\n"
                "class ShardServer:\n"
                "    def _dispatch(self, op):\n"
                "        if op.kind == GET:\n"
                "            return 1\n"
                "        if op.kind == PUT:\n"
                "            raise TeapotError('no put today')\n"
            ),
        })
        assert findings(program, "TH011") == []

    def test_kind_without_dispatch_or_constructor_trips_twice(self):
        # SCAN exists on the wire but no server tests for it and Op
        # cannot build it: both halves of the contract are gone.
        program = build({
            "repro.x.messages": _WIRE_MESSAGES + 'SCAN = "scan"\n',
            "repro.x.server": (
                "from repro.x.messages import GET, PUT\n\n\n"
                "class ShardServer:\n"
                "    def _dispatch(self, op):\n"
                "        if op.kind == GET or op.kind == PUT:\n"
                "            return 1\n"
            ),
        })
        found = findings(program, "TH011")
        assert codes(found) == ["TH011", "TH011"]
        assert any("no dispatch handler" in v.message for v in found)
        assert any("no Op.scan() constructor" in v.message for v in found)
        assert all(v.path == "repro/x/messages.py" for v in found)

    def test_unregistered_exception_on_the_dispatch_surface_trips(self):
        program = build({
            "repro.x.errors": _WIRE_ERRORS,
            "repro.x.codec": (
                "from repro.x.errors import WireError\n\n"
                "ERROR_CODES = {1: WireError}\n"
            ),
            "repro.x.helpers": (
                "from repro.x.errors import TeapotError\n\n\n"
                "def brew():\n"
                "    raise TeapotError('I am a teapot')\n"
            ),
            "repro.x.server": (
                "from repro.x.helpers import brew\n\n\n"
                "class ShardServer:\n"
                "    def _dispatch(self, op):\n"
                "        return brew()\n"
            ),
        })
        found = findings(program, "TH011")
        assert codes(found) == ["TH011"]
        assert "TeapotError" in found[0].message
        assert "catch-all" in found[0].message
        assert found[0].path == "repro/x/helpers.py"

    def test_registered_ancestor_covers_subclasses(self):
        # TeapotError's *parent* is registered (beyond the catch-all):
        # the wire degrades one MRO step, which round-trips typed enough.
        program = build({
            "repro.x.errors": (
                "class WireError(Exception):\n"
                "    pass\n"
                "\n\n"
                "class KettleError(WireError):\n"
                "    pass\n"
                "\n\n"
                "class TeapotError(KettleError):\n"
                "    pass\n"
            ),
            "repro.x.codec": (
                "from repro.x.errors import KettleError, WireError\n\n"
                "ERROR_CODES = {1: WireError, 2: KettleError}\n"
            ),
            "repro.x.server": (
                "from repro.x.errors import TeapotError\n\n\n"
                "class ShardServer:\n"
                "    def _dispatch(self, op):\n"
                "        raise TeapotError('still hot')\n"
            ),
        })
        assert findings(program, "TH011") == []


# ======================================================================
# TH012 — commit-ordering discipline
# ======================================================================
class TestTH012:
    def test_ack_before_fsync_trips(self):
        program = build({
            "repro.storage.fake": (
                "class Store:\n"
                "    def op(self, rid, out):\n"
                "        self.wal.append('r', {})\n"
                "        self.dedup.record(rid, out)\n"
                "        self.wal.commit()\n"
            ),
        })
        found = findings(program, "TH012")
        assert codes(found) == ["TH012"]
        assert "before any fsync barrier" in found[0].message

    def test_append_log_fsync_ack_passes(self):
        program = build({
            "repro.storage.fake": (
                "class Store:\n"
                "    def op(self, rid, out):\n"
                "        self.wal.append('r', {})\n"
                "        self.wal.commit()\n"
                "        self.dedup.record(rid, out)\n"
            ),
        })
        assert findings(program, "TH012") == []

    def test_append_with_no_following_barrier_trips(self):
        # The function owns a barrier, but one append can only run
        # *after* it (the loop body has no back edge to the commit).
        program = build({
            "repro.storage.fake": (
                "class Store:\n"
                "    def op(self, items):\n"
                "        self.wal.commit()\n"
                "        for item in items:\n"
                "            self.wal.append('r', item)\n"
            ),
        })
        found = findings(program, "TH012")
        assert codes(found) == ["TH012"]
        assert "no fsync barrier after it" in found[0].message

    def test_reply_before_ship_trips_only_after_a_mutation(self):
        program = build({
            "repro.distributed.fake": (
                "class Reply:\n"
                "    pass\n"
                "\n\n"
                "class Server:\n"
                "    def mutate(self, rid):\n"
                "        self.dedup.record(rid, None)\n"
                "        out = Reply()\n"
                "        self.replicator.ship([rid])\n"
                "        return out\n"
                "\n"
                "    def read(self, key):\n"
                "        if key in self.cache:\n"
                "            return Reply()\n"
                "        self.replicator.ship([])\n"
                "        return Reply()\n"
            ),
        })
        found = findings(program, "TH012")
        assert codes(found) == ["TH012"]
        assert "ship-before-ack" in found[0].message
        assert found[0].line == 8  # mutate()'s reply, not read()'s

    def test_ship_then_reply_passes(self):
        program = build({
            "repro.distributed.fake": (
                "class Reply:\n"
                "    pass\n"
                "\n\n"
                "class Server:\n"
                "    def mutate(self, rid):\n"
                "        self.dedup.record(rid, None)\n"
                "        self.replicator.ship([rid])\n"
                "        return Reply()\n"
            ),
        })
        assert findings(program, "TH012") == []

    def test_out_of_scope_modules_are_ignored(self):
        program = build({
            "repro.analysis.fake": (
                "class Store:\n"
                "    def op(self, rid):\n"
                "        self.wal.append('r', {})\n"
                "        self.dedup.record(rid, None)\n"
            ),
        })
        assert findings(program, "TH012") == []


# ======================================================================
# TH013 — wall-clock reads on the simulated fabric
# ======================================================================
class TestTH013:
    def test_trips_through_a_helper_module(self):
        program = build({
            "repro.distributed.chaos": (
                "from repro.util.stamps import stamp\n\n\n"
                "def run_chaos(ops):\n"
                "    return stamp()\n"
            ),
            "repro.util.stamps": (
                "import time\n\n\n"
                "def stamp():\n"
                "    return time.monotonic()\n"
            ),
        })
        found = findings(program, "TH013")
        assert codes(found) == ["TH013"]
        assert "time.monotonic" in found[0].message
        assert found[0].path == "repro/util/stamps.py"

    def test_fabric_clock_reads_pass(self):
        program = build({
            "repro.distributed.chaos": (
                "def run_chaos(router):\n"
                "    return router.now()\n"
            ),
        })
        assert findings(program, "TH013") == []

    def test_the_serving_tier_is_pruned(self):
        # Serving is wall-clock land by design; a widened name match
        # into it must not implicate the fabric.
        program = build({
            "repro.distributed.chaos": (
                "def run_chaos(router):\n"
                "    router.tick()\n"
            ),
            "repro.serving.loop": (
                "import time\n\n\n"
                "class Loop:\n"
                "    def tick(self):\n"
                "        return time.monotonic()\n"
            ),
        })
        assert findings(program, "TH013") == []


# ======================================================================
# TH014 — paranoid-audit coverage of mutating methods
# ======================================================================
_AUDIT_REG = (
    "from repro.check.framework import register_audit\n\n\n"
    "@register_audit('repro.z.store.Box')\n"
    "def check_box(obj, level):\n"
    "    return []\n"
)


class TestTH014:
    def test_unaudited_public_mutator_trips(self):
        program = build({
            "repro.z.store": (
                "class Box:\n"
                "    def insert(self, key):\n"
                "        self._apply(key)\n"
                "\n"
                "    def _apply(self, key):\n"
                "        pass\n"
            ),
            "repro.z.audits": _AUDIT_REG,
        })
        found = findings(program, "TH014")
        assert codes(found) == ["TH014"]
        assert "Box.insert()" in found[0].message

    def test_hook_behind_a_private_helper_passes(self):
        # insert -> _apply -> maybe_audit: direct self-dispatch edges.
        program = build({
            "repro.z.store": (
                "from repro.check.hook import maybe_audit\n\n\n"
                "class Box:\n"
                "    def insert(self, key):\n"
                "        self._apply(key)\n"
                "\n"
                "    def _apply(self, key):\n"
                "        maybe_audit(self, 'Box')\n"
            ),
            "repro.z.audits": _AUDIT_REG,
        })
        assert findings(program, "TH014") == []

    def test_widened_edges_do_not_count_as_coverage(self):
        # self.inner.insert() could be *anything*; paranoid coverage
        # must hold along edges the analyzer actually resolved.
        program = build({
            "repro.z.store": (
                "class Box:\n"
                "    def insert(self, key):\n"
                "        self.inner.insert(key)\n"
            ),
            "repro.z.inner": (
                "from repro.check.hook import maybe_audit\n\n\n"
                "class Inner:\n"
                "    def insert(self, key):\n"
                "        maybe_audit(self, 'Inner')\n"
            ),
            "repro.z.audits": _AUDIT_REG,
        })
        assert codes(findings(program, "TH014")) == ["TH014"]

    def test_non_mutating_and_private_methods_are_exempt(self):
        program = build({
            "repro.z.store": (
                "class Box:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "\n"
                "    def _insert(self, key):\n"
                "        pass\n"
            ),
            "repro.z.audits": _AUDIT_REG,
        })
        assert findings(program, "TH014") == []


# ======================================================================
# The call graph itself
# ======================================================================
class TestCallGraph:
    def test_cross_module_name_resolution(self):
        program = build({
            "repro.a": "from repro.b import helper\n\n\ndef go():\n    helper()\n",
            "repro.b": "def helper():\n    pass\n",
        })
        parents = program.reachable(["repro.a.go"], follow_widened=False)
        assert "repro.b.helper" in parents
        assert program.chain(parents, "repro.b.helper") == [
            "repro.a.go",
            "repro.b.helper",
        ]

    def test_self_dispatch_includes_subclass_overrides(self):
        program = build({
            "repro.a": (
                "class Base:\n"
                "    def run(self):\n"
                "        self.step()\n"
                "\n"
                "    def step(self):\n"
                "        pass\n"
                "\n\n"
                "class Sub(Base):\n"
                "    def step(self):\n"
                "        pass\n"
            ),
        })
        parents = program.reachable(["repro.a.Base.run"], follow_widened=False)
        assert "repro.a.Base.step" in parents
        assert "repro.a.Sub.step" in parents

    def test_unknown_attribute_calls_widen_by_name(self):
        program = build({
            "repro.a": "def go(x):\n    x.flush()\n",
            "repro.b": (
                "class Sink:\n"
                "    def flush(self):\n"
                "        pass\n"
            ),
        })
        widened = program.reachable(["repro.a.go"], follow_widened=True)
        narrow = program.reachable(["repro.a.go"], follow_widened=False)
        assert "repro.b.Sink.flush" in widened
        assert "repro.b.Sink.flush" not in narrow

    def test_import_cycles_land_in_one_scc(self):
        program = build({
            "repro.a": "from repro.b import g\n\n\ndef f():\n    g()\n",
            "repro.b": "from repro.a import f\n\n\ndef g():\n    pass\n",
        })
        components = [set(c) for c in program.sccs()]
        assert {"repro.a", "repro.b"} in components

    def test_dot_output_names_functions_and_edges(self):
        program = build({
            "repro.a": "from repro.b import helper\n\n\ndef go():\n    helper()\n",
            "repro.b": "def helper():\n    pass\n",
        })
        dot = to_dot(program)
        assert dot.startswith("digraph")
        assert '"repro.a.go" -> "repro.b.helper"' in dot


# ======================================================================
# Incremental cache + SCC invalidation (on-disk, via run_flow)
# ======================================================================
@pytest.fixture
def tree(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "alpha.py").write_text("def leaf():\n    pass\n")
    (src / "beta.py").write_text(
        "from alpha import leaf\n\n\ndef mid():\n    leaf()\n"
    )
    (src / "gamma.py").write_text("def lone():\n    pass\n")
    return tmp_path


def _flow(tree, **kw):
    kw.setdefault("cache", str(tree / "cache.json"))
    kw.setdefault("baseline", str(tree / "no-baseline.json"))
    return run_flow([str(tree / "src")], **kw)


class TestCache:
    def test_cold_then_warm(self, tree):
        cold = _flow(tree)
        assert len(cold.stats.reparsed) == 3
        assert cold.stats.cached == 0
        warm = _flow(tree)
        assert warm.stats.reparsed == []
        assert warm.stats.cached == 3
        assert warm.stats.dirty_sccs == 0
        assert warm.stats.reanalyzed_modules == []

    def test_editing_one_file_dirties_only_its_scc(self, tree):
        _flow(tree)
        (tree / "src" / "alpha.py").write_text(
            "def leaf():\n    return 1\n"
        )
        run = _flow(tree)
        assert [Path(p).name for p in run.stats.reparsed] == ["alpha.py"]
        assert run.stats.cached == 2
        assert run.stats.dirty_sccs == 1
        assert run.stats.reanalyzed_modules == ["alpha"]

    def test_corrupt_cache_degrades_to_cold(self, tree):
        _flow(tree)
        (tree / "cache.json").write_text("{not json")
        run = _flow(tree)
        assert len(run.stats.reparsed) == 3

    def test_no_cache_mode_always_reparses(self, tree):
        run_flow([str(tree / "src")], cache=None)
        run = run_flow([str(tree / "src")], cache=None)
        assert len(run.stats.reparsed) == 3


# ======================================================================
# Suppressions, aliasing and the baseline
# ======================================================================
_TRIPPING_SERVING = (
    "import time\n\n\n"
    "async def pump(conn):\n"
    "    time.sleep(1)\n"
)


@pytest.fixture
def serving_tree(tmp_path):
    pkg = tmp_path / "repro" / "serving"
    pkg.mkdir(parents=True)
    (pkg / "srv.py").write_text(_TRIPPING_SERVING)
    return tmp_path


def _srv_path(tree):
    return str(tree / "repro" / "serving" / "srv.py")


class TestSuppressionsAndBaseline:
    def test_the_finding_fires_without_a_baseline(self, serving_tree):
        run = run_flow(
            [str(serving_tree)],
            cache=None,
            baseline=str(serving_tree / "absent.json"),
        )
        assert codes(run.report.violations) == ["TH010"]

    def test_inline_suppression_via_the_retired_alias(self, serving_tree):
        # A disable written against TH009 keeps silencing its successor.
        assert CODE_ALIASES == {"TH009": "TH010"}
        path = Path(_srv_path(serving_tree))
        path.write_text(
            _TRIPPING_SERVING.replace(
                "time.sleep(1)",
                "time.sleep(1)  # repro-lint: disable=TH009 -- facade test",
            )
        )
        run = run_flow(
            [str(serving_tree)],
            cache=None,
            baseline=str(serving_tree / "absent.json"),
        )
        assert run.report.violations == []

    def test_stale_flow_suppression_is_lint002(self, serving_tree):
        path = Path(_srv_path(serving_tree))
        path.write_text(
            "async def pump(conn):\n"
            "    return 1  # repro-lint: disable=TH010 -- nothing here\n"
        )
        run = run_flow(
            [str(serving_tree)],
            cache=None,
            baseline=str(serving_tree / "absent.json"),
        )
        assert codes(run.report.violations) == ["LINT002"]

    def _baseline(self, serving_tree, entries):
        path = serving_tree / "baseline.json"
        path.write_text(json.dumps({"entries": entries}))
        return str(path)

    def test_baseline_entry_silences_the_finding(self, serving_tree):
        baseline = self._baseline(serving_tree, [{
            "code": "TH010",
            "path": _srv_path(serving_tree),
            "line": 5,
            "justification": "fixture: sync facade",
        }])
        run = run_flow([str(serving_tree)], cache=None, baseline=baseline)
        assert run.report.violations == []

    def test_baseline_honours_the_th009_alias(self, serving_tree):
        baseline = self._baseline(serving_tree, [{
            "code": "TH009",
            "path": _srv_path(serving_tree),
            "line": 5,
            "justification": "fixture: grandfathered pre-rename",
        }])
        run = run_flow([str(serving_tree)], cache=None, baseline=baseline)
        assert run.report.violations == []

    def test_unjustified_baseline_entry_is_lint001(self, serving_tree):
        baseline = self._baseline(serving_tree, [{
            "code": "TH010",
            "path": _srv_path(serving_tree),
            "line": 5,
            "justification": "   ",
        }])
        run = run_flow([str(serving_tree)], cache=None, baseline=baseline)
        assert codes(run.report.violations) == ["LINT001"]
        assert run.report.violations[0].path == baseline

    def test_stale_baseline_entry_is_lint002(self, serving_tree):
        baseline = self._baseline(serving_tree, [
            {
                "code": "TH010",
                "path": _srv_path(serving_tree),
                "line": 5,
                "justification": "fixture: real",
            },
            {
                "code": "TH013",
                "path": "src/repro/gone.py",
                "line": 1,
                "justification": "fixture: long since fixed",
            },
        ])
        run = run_flow([str(serving_tree)], cache=None, baseline=baseline)
        assert codes(run.report.violations) == ["LINT002"]
        assert "matched no finding" in run.report.violations[0].message

    def test_per_file_pass_leaves_flow_suppressions_alone(self, serving_tree):
        # The per-file engine must not flag a TH010 disable as unused —
        # only the flow pass knows whether it matched.
        path = Path(_srv_path(serving_tree))
        path.write_text(
            _TRIPPING_SERVING.replace(
                "time.sleep(1)",
                "time.sleep(1)  # repro-lint: disable=TH010 -- facade test",
            )
        )
        report = lint_paths([str(serving_tree)])
        assert report.violations == []


# ======================================================================
# SARIF
# ======================================================================
class TestSarif:
    def test_shape_rules_and_results(self, serving_tree):
        run = run_flow(
            [str(serving_tree)],
            cache=None,
            baseline=str(serving_tree / "absent.json"),
        )
        doc = to_sarif(run.report)
        assert doc["version"] == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"TH010", "TH011", "TH012", "TH013", "TH014"} <= rule_ids
        assert {"LINT000", "LINT001", "LINT002"} <= rule_ids
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "TH010"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("srv.py")
        assert location["region"]["startLine"] == 5


# ======================================================================
# The tree itself stays clean (dogfooding)
# ======================================================================
class TestDogfood:
    def test_the_tree_passes_the_flow_rules(self, monkeypatch):
        # The committed baseline is part of the contract: paths inside
        # it are repo-relative, so run from the repo root like CI does.
        monkeypatch.chdir(ROOT)
        run = run_flow(["src"], cache=None, baseline=DEFAULT_BASELINE)
        assert run.report.ok, run.report.render_table()
        assert run.stats.files > 100

    def test_every_flow_rule_code_is_in_flow_codes(self):
        from repro.lint.engine import FLOW_CODES

        registered = {r.code for r in all_flow_rules()}
        assert registered <= FLOW_CODES
        assert set(CODE_ALIASES) <= FLOW_CODES
