"""Unit tests for trie pages (the MLTH building block)."""

import pytest

from repro import LOWERCASE
from repro.core.pages import TriePage

A = LOWERCASE


def page(bounds, children=None, level=0):
    children = children if children is not None else list(range(len(bounds) + 1))
    return TriePage(level=level, boundaries=list(bounds), children=children)


class TestSubtrie:
    def test_leaves_are_gap_indices(self):
        p = page(["d", "m", "t"])
        trie = p.subtrie(A)
        assert trie.search("a").bucket == 0
        assert trie.search("f").bucket == 1
        assert trie.search("p").bucket == 2
        assert trie.search("z").bucket == 3

    def test_cached_until_invalidated(self):
        p = page(["d"])
        first = p.subtrie(A)
        assert p.subtrie(A) is first
        p.invalidate()
        assert p.subtrie(A) is not first

    def test_empty_page(self):
        p = page([])
        assert p.cell_count == 0
        assert p.subtrie(A).search("q").bucket == 0

    def test_cell_count(self):
        assert page(["a", "b", "c"]).cell_count == 3


class TestSplice:
    def test_splice_replaces_one_gap(self):
        p = page(["d", "t"], [10, 11, 12])
        p.splice(1, ["ha", "h"], [20, 21, 22])
        assert p.boundaries == ["d", "ha", "h", "t"]
        assert p.children == [10, 20, 21, 22, 12]

    def test_splice_invalidates_cache(self):
        p = page(["d"])
        before = p.subtrie(A)
        p.splice(0, ["b"], [5, 6])
        assert p.subtrie(A) is not before

    def test_splice_arity_checked(self):
        p = page(["d"])
        with pytest.raises(AssertionError):
            p.splice(0, ["b"], [1, 2, 3])


class TestSplitChoice:
    def test_candidates_exclude_extensions(self):
        # 'ha' has its logical parent 'h' inside the span.
        p = page(["ha", "h", "m"])
        assert p.split_candidates() == [1, 2]

    def test_fig4_choice(self):
        bounds = ["ar", "a", "b", "f", "he", "h", "i ", "i", "o", "t"]
        p = page(bounds)
        # Candidates: everything except the extensions 'ar', 'he', 'i '.
        names = [bounds[i] for i in p.split_candidates()]
        assert names == ["a", "b", "f", "h", "i", "o", "t"]
        # Balanced pick: nearest the middle (index 4.5) -> 'h' (index 5),
        # the paper's split node; '(e,1)' loses by condition (ii).
        assert bounds[p.choose_split_index("balanced")] == "h"

    def test_first_last_picks(self):
        bounds = ["a", "b", "c", "d"]
        p = page(bounds)
        assert p.choose_split_index("first") == 0
        assert p.choose_split_index("last") == 3

    def test_shortest_boundary_always_a_candidate(self):
        p = page(["abc", "ab", "a"])
        assert p.split_candidates() == [2]

    def test_gap_of(self):
        p = page(["d", "m"])
        assert p.gap_of("a", A) == 0
        assert p.gap_of("f", A) == 1
        assert p.gap_of("z", A) == 2
