"""Concurrency control simulation (/VID87/, Section 6 of the paper).

The paper argues trie hashing admits more concurrency than a B-tree:
with a one-level trie and no physical cell deletion, an update needs to
lock only **the target bucket and the allocation counter N** — a split
appends its cell at the end of the table, so no other searcher is ever
blocked. A B-tree instead locks pages along the descent, and a split
shifts keys inside pages, forcing writers to exclude readers from whole
pages (the paper cites /SAG85/ for how involved the workarounds get).

This package makes that argument measurable:

* :mod:`locks` — a shared/exclusive lock manager with FIFO queues and
  wait accounting;
* :mod:`protocols` — lock-schedule generators that ask the *real*
  :class:`~repro.core.file.THFile` / :class:`~repro.btree.BPlusTree`
  structures which resources each operation touches, under the VID87
  discipline for TH and hand-over-hand (lock-coupling, conservative on
  unsafe nodes) for the B-tree;
* :mod:`simulator` — a discrete-event interleaver of many clients,
  reporting throughput, conflict rates and lock-wait times.
"""

from .locks import LockManager, LockMode
from .protocols import btree_operation_schedule, th_operation_schedule
from .simulator import ConcurrencyReport, simulate_clients

__all__ = [
    "LockManager",
    "LockMode",
    "btree_operation_schedule",
    "th_operation_schedule",
    "ConcurrencyReport",
    "simulate_clients",
]
