"""The reproduce harness and the CI bench gate.

Covers the artifact contract of :mod:`repro.bench` — every run leaves
``manifest.json`` / ``metrics.jsonl`` / ``summary.json`` and refreshes
the ``BENCH_*.json`` trajectory — and the gate semantics of
``scripts/bench_gate.py``: structural metrics compare exactly, wall
rates by ratio, mismatched configs refuse to compare, and an injected
regression exits nonzero.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import PROFILES, SUITES, reproduce
from repro.cli import main as cli_main

REPO = Path(__file__).resolve().parent.parent
GATE = REPO / "scripts" / "bench_gate.py"

#: Tiny counts so the whole suite runs in seconds.
TINY = {
    "core": 300,
    "distributed": 300,
    "chaos": 120,
    "throughput": 200,
    "compact": 400,
    "serving": 300,
}


def _reproduce(tmp_path, **kwargs):
    return reproduce(
        profile="quick",
        out_root=tmp_path / "runs",
        bench_dir=tmp_path / "bench",
        counts=TINY,
        echo=False,
        **kwargs,
    )


def _gate(baseline, fresh, *extra):
    return subprocess.run(
        [sys.executable, str(GATE), "--baseline-dir", str(baseline),
         "--fresh-dir", str(fresh), *extra],
        capture_output=True,
        text=True,
    )


class TestReproduce:
    def test_run_dir_artifacts(self, tmp_path):
        outcome = _reproduce(tmp_path)
        run_dir = Path(outcome["run_dir"])
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["profile"] == "quick"
        assert manifest["counts"] == TINY
        assert set(manifest["seeds"]) == set(SUITES)
        lines = [
            json.loads(line)
            for line in (run_dir / "metrics.jsonl").read_text().splitlines()
        ]
        assert [l["suite"] for l in lines] == list(SUITES)
        assert all("wall_s" in l and "results" in l for l in lines)
        summary = json.loads((run_dir / "summary.json").read_text())
        assert set(summary["results"]) == set(SUITES)

    def test_bench_files_regenerated_with_config(self, tmp_path):
        outcome = _reproduce(tmp_path)
        names = {Path(p).name for p in outcome["bench_files"]}
        assert names == {
            "BENCH_core.json", "BENCH_distributed.json", "BENCH_chaos.json",
            "BENCH_compact.json", "BENCH_serving.json",
        }
        chaos = json.loads((tmp_path / "bench" / "BENCH_chaos.json").read_text())
        assert set(chaos["config"]) == {"chaos", "throughput"}
        assert chaos["config"]["chaos"]["count"] == TINY["chaos"]
        assert chaos["config"]["chaos"]["trie_backend"] == "cells"
        assert {"differential", "throughput"} <= set(chaos["results"])
        compact = json.loads(
            (tmp_path / "bench" / "BENCH_compact.json").read_text()
        )
        assert compact["results"]["backends_identical"] is True

    def test_suite_subset_writes_partial_trajectory(self, tmp_path):
        outcome = _reproduce(tmp_path, suites=["core"])
        names = {Path(p).name for p in outcome["bench_files"]}
        assert names == {"BENCH_core.json"}

    def test_unknown_profile_and_suite_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            reproduce(profile="nope", out_root=tmp_path)
        with pytest.raises(ValueError):
            reproduce(suites=["nope"], out_root=tmp_path)

    def test_profiles_cover_all_suites(self):
        for sizes in PROFILES.values():
            assert set(sizes) == set(SUITES)

    def test_cli_reproduce_quick(self, tmp_path, capsys):
        code = cli_main([
            "reproduce", "--quick", "--suite", "core",
            "--out-root", str(tmp_path / "runs"),
            "--bench-dir", str(tmp_path / "bench"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "run dir:" in out and "BENCH_core.json" in out
        # CLI default counts are the quick profile's, not the tiny ones.
        doc = json.loads((tmp_path / "bench" / "BENCH_core.json").read_text())
        assert doc["config"]["core"]["count"] == PROFILES["quick"]["core"]


class TestBenchGate:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        baseline = tmp_path_factory.mktemp("baseline")
        fresh = tmp_path_factory.mktemp("fresh")
        _reproduce(baseline)
        _reproduce(fresh)
        return baseline / "bench", fresh / "bench"

    def test_identical_configs_pass(self, runs):
        baseline, fresh = runs
        result = _gate(baseline, fresh)
        assert result.returncode == 0, result.stdout + result.stderr
        assert result.stdout.count("OK") == 5

    def test_injected_structural_regression_fails(self, runs, tmp_path):
        baseline, fresh = runs
        broken = tmp_path / "broken"
        broken.mkdir()
        for path in fresh.glob("BENCH_*.json"):
            (broken / path.name).write_text(path.read_text())
        doc = json.loads((broken / "BENCH_core.json").read_text())
        doc["results"]["buckets"] += 1
        (broken / "BENCH_core.json").write_text(json.dumps(doc))
        result = _gate(baseline, broken)
        assert result.returncode == 1
        assert "results.buckets" in result.stdout

    def test_injected_perf_regression_fails_and_skip_perf_ignores(
        self, runs, tmp_path
    ):
        baseline, fresh = runs
        slow = tmp_path / "slow"
        slow.mkdir()
        for path in fresh.glob("BENCH_*.json"):
            (slow / path.name).write_text(path.read_text())
        doc = json.loads((slow / "BENCH_core.json").read_text())
        doc["results"]["insert_ops_per_s"] = 1
        (slow / "BENCH_core.json").write_text(json.dumps(doc))
        assert _gate(baseline, slow).returncode == 1
        assert _gate(baseline, slow, "--skip-perf").returncode == 0

    def test_mismatched_config_refuses_to_compare(self, runs, tmp_path):
        baseline, fresh = runs
        other = tmp_path / "other"
        other.mkdir()
        for path in fresh.glob("BENCH_*.json"):
            (other / path.name).write_text(path.read_text())
        doc = json.loads((other / "BENCH_core.json").read_text())
        doc["config"]["core"]["count"] += 1
        (other / "BENCH_core.json").write_text(json.dumps(doc))
        result = _gate(baseline, other)
        assert result.returncode == 1
        assert "not comparable" in result.stdout

    def test_mismatched_trie_backend_refuses_to_compare(self, runs, tmp_path):
        # A compact-backed fresh run must never be gated against a
        # cells-backed committed baseline: the backends share results
        # structurally but not wall rates, so the config block carries
        # the backend and any drift voids the comparison.
        baseline, fresh = runs
        other = tmp_path / "backend"
        other.mkdir()
        for path in fresh.glob("BENCH_*.json"):
            (other / path.name).write_text(path.read_text())
        doc = json.loads((other / "BENCH_core.json").read_text())
        assert doc["config"]["core"]["trie_backend"] == "cells"
        doc["config"]["core"]["trie_backend"] = "compact"
        (other / "BENCH_core.json").write_text(json.dumps(doc))
        result = _gate(baseline, other)
        assert result.returncode == 1
        assert "not comparable" in result.stdout

    def test_speedup_keys_are_ratio_gated_not_exact(self, runs, tmp_path):
        # *_speedup_x is machine-dependent like *_per_s: a faster fresh
        # ratio passes, a collapsed one fails the perf floor.
        baseline, fresh = runs
        fast = tmp_path / "fast"
        fast.mkdir()
        for path in fresh.glob("BENCH_*.json"):
            (fast / path.name).write_text(path.read_text())
        doc = json.loads((fast / "BENCH_compact.json").read_text())
        doc["results"]["get_speedup_x"] *= 10
        (fast / "BENCH_compact.json").write_text(json.dumps(doc))
        # Scope to the file under test: the other files' wall rates are
        # not this test's subject (and the serving ones are noisy).
        only = ("--files", "BENCH_compact.json")
        assert _gate(baseline, fast, *only).returncode == 0
        doc["results"]["get_speedup_x"] = 0.01
        (fast / "BENCH_compact.json").write_text(json.dumps(doc))
        result = _gate(baseline, fast, *only)
        assert result.returncode == 1
        assert "get_speedup_x" in result.stdout

    def test_missing_fresh_file_fails(self, runs, tmp_path):
        baseline, _ = runs
        empty = tmp_path / "empty"
        empty.mkdir()
        result = _gate(baseline, empty)
        assert result.returncode == 1
        assert "produced no" in result.stdout


class TestCommittedTrajectory:
    def test_committed_bench_files_exist_and_are_quick_profile(self):
        # The repo root must carry the baseline trajectory (ISSUE 6
        # satellite: "trajectory is currently empty").
        for name in ("BENCH_core.json", "BENCH_distributed.json",
                     "BENCH_chaos.json", "BENCH_compact.json",
                     "BENCH_serving.json"):
            doc = json.loads((REPO / name).read_text())
            assert doc["results"], name
            for config in doc["config"].values():
                assert config["profile"] == "quick"
                assert config["trie_backend"] == "cells"

    def test_committed_compact_speedups_meet_targets(self):
        # The tentpole's acceptance bar: the committed trajectory shows
        # >=3x point ops and >=5x batched ops over the cells baseline.
        doc = json.loads((REPO / "BENCH_compact.json").read_text())
        results = doc["results"]
        assert results["insert_speedup_x"] >= 3.0
        assert results["get_speedup_x"] >= 3.0
        assert results["batch_get_speedup_x"] >= 5.0
        assert results["batch_put_speedup_x"] >= 5.0
        assert results["backends_identical"] is True
