"""Cursor tests: positioned, bidirectional traversal."""

import pytest

from repro import SplitPolicy, THFile
from repro.core.cursor import Cursor, CursorInvalidError


def build(keys, policy=None, b=6):
    f = THFile(bucket_capacity=b, policy=policy)
    for i, k in enumerate(keys):
        f.insert(k, i)
    return f


class TestPositioning:
    def test_first_and_last(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        cur = Cursor(f)
        assert cur.first()
        assert cur.key() == s[0]
        assert cur.last()
        assert cur.key() == s[-1]

    def test_seek_exact(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        cur = Cursor(f)
        assert cur.seek(s[42])
        assert cur.key() == s[42]

    def test_seek_between_keys(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        cur = Cursor(f)
        probe = s[10] + "a"  # strictly between s[10] and its successor
        assert cur.seek(probe)
        assert cur.key() == s[11]

    def test_seek_before_everything(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        assert cur.seek("a")
        assert cur.key() == sorted(small_keys)[0]

    def test_seek_past_everything(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        assert not cur.seek("zzzzzzzzz")
        assert not cur.valid

    def test_empty_file(self):
        f = THFile()
        cur = Cursor(f)
        assert not cur.first()
        assert not cur.last()
        assert not cur.valid
        with pytest.raises(CursorInvalidError):
            cur.key()


class TestStepping:
    def test_forward_scan_matches_items(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        cur.first()
        seen = [cur.item()]
        while cur.next():
            seen.append(cur.item())
        assert seen == list(f.items())

    def test_backward_scan(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        cur.last()
        seen = [cur.key()]
        while cur.prev():
            seen.append(cur.key())
        assert seen == sorted(small_keys, reverse=True)

    def test_zigzag(self, small_keys):
        f = build(small_keys)
        s = sorted(small_keys)
        cur = Cursor(f)
        cur.seek(s[100])
        assert cur.next() and cur.key() == s[101]
        assert cur.prev() and cur.key() == s[100]
        assert cur.prev() and cur.key() == s[99]

    def test_walk_off_both_ends(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        cur.first()
        assert not cur.prev()
        assert not cur.valid
        cur.last()
        assert not cur.next()
        assert not cur.valid

    def test_across_bucket_borders(self, small_keys):
        # With b=2 nearly every step crosses a bucket.
        f = build(small_keys[:60], b=2)
        cur = Cursor(f)
        cur.first()
        count = 1
        while cur.next():
            count += 1
        assert count == 60


class TestPolicies:
    @pytest.mark.parametrize(
        "policy",
        [None, SplitPolicy.thcl(), SplitPolicy.thcl_ascending(0)],
        ids=["basic", "thcl", "compact"],
    )
    def test_cursor_over_every_policy(self, policy, sorted_keys):
        f = build(sorted_keys, policy=policy)
        cur = Cursor(f)
        cur.first()
        n = 1
        while cur.next():
            n += 1
        assert n == len(sorted_keys)

    def test_cursor_skips_nil_leaves(self):
        f = build(
            ["oaaa", "obbb", "osza", "oszc", "oszh", "ota"],
            policy=SplitPolicy(split_position=-1),
            b=4,
        )
        assert f.nil_leaf_fraction() > 0
        cur = Cursor(f)
        cur.first()
        keys = [cur.key()]
        while cur.next():
            keys.append(cur.key())
        assert keys == sorted(["oaaa", "obbb", "osza", "oszc", "oszh", "ota"])

    def test_seek_into_nil_region(self):
        # Two-phase construction: a 'pzzz' bucket above, then a chain
        # split leaving a *reachable* nil gap (os, o] below it.
        f = build(
            ["oaaa", "obbb", "osza", "oszc", "pzzz", "oszh"],
            policy=SplitPolicy(split_position=-1),
            b=4,
        )
        cur = Cursor(f)
        # 'ota' maps to a nil leaf; seek finds the next real record.
        assert f.trie.search("ota").bucket is None
        assert cur.seek("ota")
        assert cur.key() == "pzzz"


class TestInvalidation:
    def test_value_updates_do_not_invalidate(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        cur.first()
        f.put(small_keys[0], "new value")  # no structural change
        assert cur.next()

    def test_split_invalidates(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        cur.first()
        splits_before = f.stats.splits
        i = 0
        extra = ["zzz" + c for c in "abcdefghijklmnop"]
        while f.stats.splits == splits_before and i < len(extra):
            f.insert(extra[i])
            i += 1
        assert f.stats.splits > splits_before
        with pytest.raises(CursorInvalidError):
            cur.next()

    def test_merge_invalidates(self, small_keys):
        f = build(small_keys, policy=SplitPolicy.thcl(), b=4)
        cur = Cursor(f)
        cur.first()
        merges_before = f.stats.merges + f.stats.borrows
        for k in sorted(small_keys):
            f.delete(k)
            if f.stats.merges + f.stats.borrows > merges_before:
                break
        with pytest.raises(CursorInvalidError):
            cur.seek("m")


class TestSeekIndexing:
    """Regression: seek must use the constructor's pointer->index map.

    The original implementation re-scanned ``self._buckets`` (O(B)) on
    every seek and, for nil-leaf hits, re-walked every trie leaf. Both
    paths must now run off state snapshotted at construction.
    """

    def test_seek_never_rewalks_the_trie(self, small_keys, monkeypatch):
        f = build(small_keys)
        cur = Cursor(f)

        def boom(self):  # pragma: no cover - failure path
            raise AssertionError("seek re-walked the trie leaves")

        monkeypatch.setattr(type(f.trie), "leaves_in_order", boom)
        s = sorted(small_keys)
        for probe in s[::17] + [k + "a" for k in s[::29]]:
            cur.seek(probe)
            assert cur.key() == min(k for k in s if k >= probe)

    def test_nil_leaf_seek_uses_snapshot(self, monkeypatch):
        # Basic TH leaves nil leaves behind; a seek through one must not
        # re-walk the trie either (the old `_first_bucket_at_or_after`).
        import itertools

        words = ["hamlet", "hold", "home", "hose", "house", "rose", "ruse"]
        f = build(words, b=2)
        candidates = [
            "".join(t) for t in itertools.product("ahmorsz", repeat=2)
        ]
        nil_probes = [
            c for c in candidates if f.trie.search(c).bucket is None
        ]
        assert nil_probes, "expected at least one nil leaf in a basic-TH file"
        cur = Cursor(f)
        monkeypatch.setattr(
            type(f.trie),
            "leaves_in_order",
            lambda self: (_ for _ in ()).throw(AssertionError("trie re-walk")),
        )
        s = sorted(words)
        for probe in nil_probes:
            expected = [k for k in s if k >= probe]
            if expected:
                assert cur.seek(probe)
                assert cur.key() == expected[0]
            else:
                assert not cur.seek(probe)

    def test_bucket_position_map_matches_list(self, small_keys):
        f = build(small_keys)
        cur = Cursor(f)
        assert [cur._bucket_pos[p] for p in cur._buckets] == list(
            range(len(cur._buckets))
        )
        assert len(cur._paths) == len(cur._buckets)
