"""Section 4.5: trie growth rate s = M/N and bytes per split.

The paper: full-load (d = 0) configurations grow the trie at
s = 1.6-2.13 cells per split (10-13 bytes), tuned configurations at
s = 1.2-1.6 (7-9 bytes); a B-tree grows by a key + pointer, typically
20-50 bytes per split. The trie stays several times smaller.
"""

from conftest import once

from repro.analysis import growth_rate_table


def test_growth_rate(benchmark, report):
    rows = once(
        benchmark,
        lambda: growth_rate_table(count=5000, bucket_capacities=(10, 20, 50)),
    )
    report(
        "growth_rate",
        rows,
        "Section 4.5 - trie growth per split vs B-tree (5000 sorted keys)",
    )
    for r in rows:
        assert r["bytes/split"] < r["btree bytes/split"]
        assert 1.0 <= r["s"] <= 2.6
    full = [r for r in rows if "full load" in r["case"]]
    assert all(r["a%"] == 100 for r in full)
