"""Ordered key alphabets.

Trie hashing views a key as a string of *digits* drawn from a finite,
totally ordered alphabet. Following the paper, the smallest digit is the
space character ``' '`` and plays the role of an implicit right-padding for
short keys: the key ``'a'`` behaves exactly like ``'a '``, ``'a  '``
and so on. The largest digit (written ``'.'`` in the paper) is only needed
conceptually, to pad *boundary* strings; see :mod:`repro.core.boundaries`.

For speed, the library requires alphabets whose digit order coincides with
the host character order (``ord``). Key and prefix comparisons then compile
down to native string comparison. :class:`Alphabet` validates this at
construction time, so exotic orderings fail fast rather than corrupting a
file silently.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .errors import InvalidKeyError

__all__ = [
    "Alphabet",
    "LOWERCASE",
    "ALPHANUMERIC",
    "PRINTABLE",
    "DEFAULT_ALPHABET",
]


class Alphabet:
    """A finite, totally ordered set of single-character digits.

    Parameters
    ----------
    digits:
        The digits in increasing order. Must be strictly increasing under
        ``ord`` so native string comparison agrees with digit order. The
        first digit is the *space* (smallest) digit used for implicit
        padding of keys; it does not have to be ``' '`` but conventionally
        is.
    """

    __slots__ = ("_digits", "_index", "_min", "_max")

    def __init__(self, digits: Iterable[str]):
        items = list(digits)
        if any(not isinstance(d, str) or len(d) != 1 for d in items):
            raise InvalidKeyError("alphabet digits must be single characters")
        digits = "".join(items)
        if len(digits) < 2:
            raise InvalidKeyError("an alphabet needs at least two digits")
        if any(a >= b for a, b in zip(digits, digits[1:])):
            raise InvalidKeyError(
                "alphabet digits must be strictly increasing in character "
                "order so that native string comparison matches digit order"
            )
        self._digits = digits
        self._index = {d: i for i, d in enumerate(digits)}
        self._min = digits[0]
        self._max = digits[-1]

    @property
    def digits(self) -> str:
        """The digits of the alphabet, smallest first."""
        return self._digits

    @property
    def min_digit(self) -> str:
        """The smallest digit (the 'space' used to pad keys)."""
        return self._min

    @property
    def max_digit(self) -> str:
        """The largest digit (pads boundary strings, the paper's ``'.'``)."""
        return self._max

    def __len__(self) -> int:
        return len(self._digits)

    def __iter__(self) -> Iterator[str]:
        return iter(self._digits)

    def __contains__(self, digit: str) -> bool:
        return digit in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Alphabet({self._digits!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Alphabet) and other._digits == self._digits

    def __hash__(self) -> int:
        return hash(self._digits)

    def index(self, digit: str) -> int:
        """Return the rank of ``digit`` within the alphabet (0-based)."""
        try:
            return self._index[digit]
        except KeyError:
            raise InvalidKeyError(f"digit {digit!r} is not in the alphabet") from None

    def successor(self, digit: str) -> str:
        """Return the next larger digit, or raise for the largest one."""
        i = self.index(digit)
        if i + 1 >= len(self._digits):
            raise InvalidKeyError(f"digit {digit!r} has no successor")
        return self._digits[i + 1]

    def predecessor(self, digit: str) -> str:
        """Return the next smaller digit, or raise for the smallest one."""
        i = self.index(digit)
        if i == 0:
            raise InvalidKeyError(f"digit {digit!r} has no predecessor")
        return self._digits[i - 1]

    def validate_key(self, key: str) -> str:
        """Canonicalise ``key`` and check every digit is in the alphabet.

        Keys are canonicalised by stripping trailing *space* digits, since
        trie hashing treats short keys as implicitly padded with spaces.
        A key that canonicalises to the empty string is rejected.
        """
        if not isinstance(key, str):
            raise InvalidKeyError(f"keys must be str, got {type(key).__name__}")
        canon = key.rstrip(self._min)
        if not canon:
            raise InvalidKeyError("key is empty (or all padding digits)")
        # ``str.strip`` removes alphabet digits from both ends at C speed;
        # an out-of-alphabet digit is never removable, so a non-empty
        # remainder pinpoints an invalid key (the loop just names it).
        if canon.strip(self._digits):
            for ch in canon:
                if ch not in self._index:
                    raise InvalidKeyError(
                        f"key {key!r} contains digit {ch!r} outside the alphabet"
                    )
        return canon

    def digit_at(self, key: str, position: int) -> str:
        """Digit ``position`` of ``key``, reading past the end as spaces."""
        if position < len(key):
            return key[position]
        return self._min


#: The alphabet of the paper's examples: space plus the lowercase letters.
LOWERCASE = Alphabet(" " + "abcdefghijklmnopqrstuvwxyz")

#: Space, digits, then lowercase letters (ASCII order keeps '0' < 'a').
ALPHANUMERIC = Alphabet(" " + "0123456789" + "abcdefghijklmnopqrstuvwxyz")

#: All printable ASCII starting at space, in ASCII order.
PRINTABLE = Alphabet("".join(chr(c) for c in range(0x20, 0x7F)))

#: Default used by :class:`repro.THFile` when none is given.
DEFAULT_ALPHABET = LOWERCASE
