"""Trie reconstruction from bucket headers (/TOR83/)."""

from repro import SplitPolicy, THFile
from repro.core.reconstruct import reconstruct_model, reconstruct_trie


class TestReconstruction:
    def test_fig1_file_roundtrip(self, fig1_file, words):
        rebuilt = reconstruct_trie(fig1_file.store, fig1_file.alphabet)
        rebuilt.check()
        for w in words:
            assert (
                rebuilt.search(w).bucket == fig1_file.trie.search(w).bucket
            )

    def test_reconstructed_is_balanced(self, generator):
        keys = sorted(generator.uniform(400))
        f = THFile(bucket_capacity=4)
        for k in keys:
            f.insert(k)
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        # /TOR83/: the rebuilt trie may be better balanced than the
        # original (ordered insertions make the original a near-chain).
        assert rebuilt.depth() <= f.trie.depth()

    def test_random_insert_only_file(self, generator):
        keys = generator.uniform(500)
        f = THFile(bucket_capacity=8)
        for k in keys:
            f.insert(k)
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        rebuilt.check()
        for k in keys:
            assert rebuilt.search(k).bucket == f.trie.search(k).bucket

    def test_nil_regions_absorbed(self):
        # Files with nil leaves rebuild into a nil-free equivalent: all
        # *stored* keys still map to their buckets.
        f = THFile(bucket_capacity=4, policy=SplitPolicy(split_position=-1))
        keys = ["oaaa", "obbb", "osza", "oszc", "oszh", "ota", "ovv"]
        for k in keys:
            f.insert(k)
        assert f.nil_leaf_fraction() > 0
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        rebuilt.check()
        for k in keys:
            assert rebuilt.search(k).bucket == f.trie.search(k).bucket

    def test_model_is_prefix_closed(self, generator):
        keys = generator.uniform(300)
        f = THFile(bucket_capacity=4)
        for k in keys:
            f.insert(k)
        model = reconstruct_model(f.store, f.alphabet)
        model.check(require_prefix_closed=True)

    def test_reconstruction_reads_every_bucket_once(self, fig1_file):
        reads_before = fig1_file.store.disk.stats.reads
        reconstruct_model(fig1_file.store, fig1_file.alphabet)
        delta = fig1_file.store.disk.stats.reads - reads_before
        assert delta == fig1_file.bucket_count()

    def test_single_bucket_file(self):
        f = THFile(bucket_capacity=8)
        f.insert("only")
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        assert rebuilt.search("only").bucket == 0
        assert rebuilt.node_count == 0
