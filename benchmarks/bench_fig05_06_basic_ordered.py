"""Figures 5-6 / Section 3.2: expected ordered insertions, basic method.

Even with the split key shifted all the way (m = b ascending, m = 1
descending), the basic method cannot reach 100%: nil nodes strand
ascending buckets (Fig 5) and split randomness strands descending ones
(Fig 6). The paper's band is 60-80% - the motivation for THCL.
"""

from conftest import once

from repro.analysis import sec32_expected


def test_fig05_06_expected_ordered(benchmark, report):
    rows = once(
        benchmark,
        lambda: sec32_expected(count=5000, bucket_capacities=(10, 20, 50)),
    )
    report(
        "fig05_06_expected",
        rows,
        "Figs 5-6 / Sec 3.2 - basic TH, expected order: m=b asc / m=1 desc",
    )
    for r in rows:
        assert r["a_a% (m=b)"] < 95          # never reaches 100%
        assert r["a_d% (m=1)"] < 95
        # Well above the B-tree's 50% for small b; uniform random keys
        # push large-b ascending loads slightly below the paper's 60-80
        # band (see EXPERIMENTS.md).
        assert r["a_a% (m=b)"] >= 50
        assert r["nil_a%"] > 0               # Fig 5's nil nodes exist
