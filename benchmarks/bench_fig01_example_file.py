"""Figure 1: building the example file (a genuine micro-benchmark).

Times the construction of the 31-word example file (inserts, splits and
trie expansion included) and checks the published end state: 11 buckets,
10 cells, load 31/44.
"""

import pytest

from repro import THFile
from repro.workloads import MOST_USED_WORDS


def build():
    f = THFile(bucket_capacity=4)
    for w in MOST_USED_WORDS:
        f.insert(w)
    return f


def test_fig01_example_file(benchmark):
    f = benchmark(build)
    assert f.bucket_count() == 11
    assert f.trie_size() == 10
    assert f.load_factor() == pytest.approx(31 / 44)
    assert f.trie.boundaries() == [
        "ar", "a", "b", "f", "he", "h", "i ", "i", "o", "t",
    ]
