"""Figure 11: THCL under expected descending insertions.

``m = 1`` with the bounding key at position ``m + 1 + d``. Expected
shape: a = 100% at d = 0; M saves ~30% within small d and then the curve
flattens, with a staying above ~90%.
"""

from conftest import once

from repro.analysis import fig11_descending
from repro.analysis.figures import fig_curves


def test_fig11_descending(benchmark, report):
    rows = once(
        benchmark,
        lambda: fig11_descending(
            count=5000,
            bucket_capacities=(10, 20, 50),
            d_values=(0, 1, 2, 3, 4, 6, 8),
        ),
    )
    report(
        "fig11",
        rows,
        "Figure 11 - THCL descending: a%, M, N vs d = m''-m-1 (5000 keys)",
    )
    import pathlib

    charts = "\n\n".join(fig_curves(rows, b) for b in (10, 20, 50))
    (pathlib.Path(__file__).parent / "results" / "fig11_curves.txt").write_text(
        charts + "\n"
    )
    for b in (10, 20, 50):
        sweep = [r for r in rows if r["b"] == b]
        assert sweep[0]["a%"] == 100
        ms = [r["M"] for r in sweep]
        assert ms[1] < ms[0]                  # immediate savings
        assert min(ms) == min(ms[1:])         # no late re-increase
        assert all(r["a%"] > 85 for r in sweep if r["d"] <= 4)
