"""Core trie-hashing machinery: tries, splits, policies, files.

The public entry points are re-exported at the package root
(:mod:`repro`); this subpackage keeps one module per concern so each of
the paper's algorithms is readable in isolation:

======================  ====================================================
module                  paper section
======================  ====================================================
``alphabet``/``keys``   2.1 — key space, digits, prefixes
``cells``/``trie``      2.1 — TH-trie and its standard representation; A1
``split``               2.3 — Algorithm A2 (basic splits, nil nodes)
``thcl_split``          4.1/4.2 — THCL expansion and split control
``merge``               2.4/3.3/4.3 — deletions and merging
``redistribution``      4.4 — spilling into neighbour buckets
``boundaries``          canonical equivalent-trie model
``balance``             2.6 — trie balancing
``reconstruct``         /TOR83/ trie reconstruction from bucket headers
``mlth``/``pages``      2.5 — multilevel trie hashing
``file``                the public THFile API
``bulk``                bottom-up compact loading (sorted input)
``cursor``              positioned bidirectional traversal
``overflow``            deferred splitting via overflow chains (§6)
``logical``/``render``  the M-ary view (Fig 2) and ASCII rendering
``range_query``         range scans (order preservation, §2.2)
``image``               TH* client trie images (arXiv:1205.0439)
======================  ====================================================
"""

from .alphabet import ALPHANUMERIC, DEFAULT_ALPHABET, LOWERCASE, PRINTABLE, Alphabet
from .errors import (
    CapacityError,
    DuplicateKeyError,
    InvalidKeyError,
    KeyNotFoundError,
    StorageError,
    TrieCorruptionError,
    TrieHashingError,
)
from .file import FileStats, THFile
from .image import TrieImage
from .policies import SplitPolicy
from .trie import Trie

__all__ = [
    "Alphabet",
    "ALPHANUMERIC",
    "DEFAULT_ALPHABET",
    "LOWERCASE",
    "PRINTABLE",
    "CapacityError",
    "DuplicateKeyError",
    "InvalidKeyError",
    "KeyNotFoundError",
    "StorageError",
    "TrieCorruptionError",
    "TrieHashingError",
    "FileStats",
    "THFile",
    "TrieImage",
    "SplitPolicy",
    "Trie",
]
