"""B+-tree nodes.

Leaves hold the records and form a doubly linked chain for range scans;
branch nodes hold separator keys and child block ids. Nodes live as
payloads on the simulated disk so every traversal is metered exactly like
the trie-hashing files' buckets.
"""

from __future__ import annotations

import bisect
from typing import Optional

__all__ = ["LeafNode", "BranchNode"]


class LeafNode:
    """A leaf: sorted keys with parallel values, chained to neighbours."""

    __slots__ = ("keys", "values", "next_leaf", "prev_leaf")

    def __init__(self) -> None:
        self.keys: list[str] = []
        self.values: list[object] = []
        self.next_leaf: Optional[int] = None
        self.prev_leaf: Optional[int] = None

    def __len__(self) -> int:
        return len(self.keys)

    def find(self, key: str) -> int:
        """Index of ``key`` or -1."""
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return i
        return -1

    def insert(self, key: str, value: object) -> None:
        """Insert keeping order (caller has checked for duplicates)."""
        i = bisect.bisect_left(self.keys, key)
        self.keys.insert(i, key)
        self.values.insert(i, value)

    def remove(self, key: str) -> object:
        """Delete ``key`` and return its value (caller checked presence)."""
        i = self.find(key)
        del self.keys[i]
        return self.values.pop(i)

    def split_at(self, position: int) -> LeafNode:
        """Move records from ``position`` on into a fresh right leaf."""
        right = LeafNode()
        right.keys = self.keys[position:]
        right.values = self.values[position:]
        del self.keys[position:]
        del self.values[position:]
        return right

    def items(self) -> list[tuple[str, object]]:
        """The records in key order."""
        return list(zip(self.keys, self.values))


class BranchNode:
    """An internal node: ``len(children) == len(keys) + 1``.

    ``keys[i]`` separates ``children[i]`` (keys <= it) from
    ``children[i+1]``.
    """

    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[str] = []
        self.children: list[int] = []

    def __len__(self) -> int:
        return len(self.keys)

    def child_for(self, key: str) -> int:
        """Index of the child to descend into for ``key``."""
        return bisect.bisect_left(self.keys, key)

    def insert_separator(self, at: int, key: str, right_child: int) -> None:
        """After child ``at`` split: record its separator and new sibling."""
        self.keys.insert(at, key)
        self.children.insert(at + 1, right_child)

    def split_at(self, position: int) -> tuple[str, BranchNode]:
        """Split around separator ``position``; it moves up, right returned."""
        promoted = self.keys[position]
        right = BranchNode()
        right.keys = self.keys[position + 1 :]
        right.children = self.children[position + 1 :]
        del self.keys[position:]
        del self.children[position + 1 :]
        return promoted, right
