"""CLI for the project linter: ``python -m repro.lint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from typing import Optional

from .engine import FLOW_CODES, LintReport, all_rules, lint_paths

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis for the reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the ruleset and exit"
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="additionally run the whole-program pass (TH010-TH014)",
    )
    parser.add_argument(
        "--graph",
        metavar="FORMAT",
        choices=["dot"],
        default=None,
        help="print the resolved call graph (dot) and exit",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="additionally write the report as SARIF 2.1.0 to PATH",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="flow baseline file (default: lint-baseline.json if present)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="flow summary cache (default: .repro-lint-cache.json)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the flow summary cache",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print flow cache/SCC statistics to stderr",
    )
    args = parser.parse_args(argv)

    if args.list:
        from .flow.rules import all_flow_rules

        for registered in all_rules():
            scope = (
                ", ".join(registered.scope) if registered.scope else "src/**"
            )
            print(f"{registered.code}  {registered.name:28s} [{scope}]")
            print(f"       {registered.description}")
        for flow in all_flow_rules():
            print(f"{flow.code}  {flow.name:28s} [whole-program]")
            print(f"       {flow.description}")
        return 0

    select = (
        {code.strip() for code in args.select.split(",")}
        if args.select
        else None
    )

    if args.graph is not None:
        from .flow import run_flow, to_dot
        from .flow.engine import DEFAULT_CACHE

        result = run_flow(
            args.paths,
            cache=None if args.no_cache else (args.cache or DEFAULT_CACHE),
            baseline=args.baseline,
        )
        sys.stdout.write(to_dot(result.program))
        return 0

    report = lint_paths(args.paths, select=select)
    if args.flow:
        from .flow import run_flow
        from .flow.engine import DEFAULT_CACHE

        flow_select = (
            {code for code in select if code in FLOW_CODES or
             code.startswith("LINT")}
            if select is not None
            else None
        )
        result = run_flow(
            args.paths,
            cache=None if args.no_cache else (args.cache or DEFAULT_CACHE),
            baseline=args.baseline,
            select=flow_select,
        )
        merged = report.violations + result.report.violations
        merged.sort(key=lambda v: (v.path, v.line, v.code))
        report = LintReport(
            files_checked=report.files_checked, violations=merged
        )
        if args.stats:
            stats = result.stats.as_dict()
            print(
                f"flow: {stats['files']} files, "
                f"{len(stats['reparsed'])} reparsed, "
                f"{stats['cached']} cached, "
                f"{stats['dirty_sccs']}/{stats['total_sccs']} SCCs dirty",
                file=sys.stderr,
            )

    if args.sarif:
        from .flow.sarif import write_sarif

        write_sarif(report, args.sarif)

    if args.json:
        print(report.to_json())
    else:
        print(report.render_table())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
