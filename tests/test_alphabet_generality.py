"""The whole stack over non-default alphabets.

The paper's method is alphabet-agnostic: these tests run complete files
over the printable-ASCII alphabet (mixed-case keys and punctuation), an
alphanumeric alphabet, and a two-letter (binary-digit) alphabet — the
regime of the /JAC88/ analyses — catching any lowercase-ASCII
assumptions in the machinery.
"""

import random

import pytest

from repro import (
    ALPHANUMERIC,
    Alphabet,
    InvalidKeyError,
    PRINTABLE,
    SplitPolicy,
    THFile,
)
from repro.core.cursor import Cursor
from repro.core.reconstruct import reconstruct_trie


def random_keys(alphabet_digits, n, length, seed):
    rng = random.Random(seed)
    keys = set()
    digits = [d for d in alphabet_digits if d != " "]
    while len(keys) < n:
        keys.add("".join(rng.choice(digits) for _ in range(length)))
    return sorted(keys)


class TestPrintableAlphabet:
    def test_mixed_case_and_punctuation(self):
        f = THFile(bucket_capacity=4, alphabet=PRINTABLE)
        keys = ["Alpha", "BETA!", "gamma-3", "Zulu_99", "~tilde", "0zero"]
        for k in keys:
            f.insert(k)
        f.check()
        assert list(f.keys()) == sorted(keys)
        assert f.get("BETA!") is None
        assert "Alpha" in f and "alpha" not in f  # case-sensitive

    def test_full_file_lifecycle(self):
        keys = random_keys(PRINTABLE.digits, 400, 5, seed=3)
        shuffled = list(keys)
        random.Random(1).shuffle(shuffled)
        f = THFile(bucket_capacity=6, policy=SplitPolicy.thcl(), alphabet=PRINTABLE)
        for k in shuffled:
            f.insert(k)
        f.check()
        for k in keys[:200]:
            f.delete(k)
        f.check()
        assert list(f.keys()) == keys[200:]

    def test_space_still_the_padding_digit(self):
        f = THFile(alphabet=PRINTABLE)
        f.insert("x ")  # trailing space strips
        assert "x" in f


class TestAlphanumeric:
    def test_numeric_keys(self):
        f = THFile(bucket_capacity=4, alphabet=ALPHANUMERIC)
        for n in (17, 3, 99, 42, 5, 77, 23, 68):
            f.insert(f"{n:04d}"[0:4].replace(" ", "0"))
        f.check()
        assert list(f.keys()) == sorted(f"{n:04d}" for n in (17, 3, 99, 42, 5, 77, 23, 68))

    def test_rejects_uppercase(self):
        f = THFile(alphabet=ALPHANUMERIC)
        with pytest.raises(InvalidKeyError):
            f.insert("Abc")


class TestBinaryAlphabet:
    ALPHABET = Alphabet(" 01")

    def test_binary_digit_file(self):
        keys = random_keys("01", 300, 12, seed=7)
        shuffled = list(keys)
        random.Random(2).shuffle(shuffled)
        f = THFile(bucket_capacity=4, alphabet=self.ALPHABET)
        for k in shuffled:
            f.insert(k)
        f.check()
        assert list(f.keys()) == keys
        # Binary digits force deep tries: depth far above log2(buckets).
        assert f.trie.depth() > 5

    def test_compact_load_binary(self):
        keys = random_keys("01", 300, 12, seed=8)
        f = THFile(
            bucket_capacity=6,
            policy=SplitPolicy.thcl_ascending(0),
            alphabet=self.ALPHABET,
        )
        for k in keys:
            f.insert(k)
        f.check()
        assert f.load_factor() > 0.95

    def test_reconstruction_binary(self):
        keys = random_keys("01", 200, 10, seed=9)
        shuffled = list(keys)
        random.Random(3).shuffle(shuffled)
        f = THFile(bucket_capacity=4, alphabet=self.ALPHABET)
        for k in shuffled:
            f.insert(k)
        rebuilt = reconstruct_trie(f.store, f.alphabet)
        for k in keys:
            assert rebuilt.search(k).bucket == f.trie.search(k).bucket

    def test_cursor_binary(self):
        keys = random_keys("01", 120, 10, seed=10)
        f = THFile(bucket_capacity=4, alphabet=self.ALPHABET)
        for k in keys:
            f.insert(k)
        cursor = Cursor(f)
        assert cursor.first()
        out = [cursor.key()]
        while cursor.next():
            out.append(cursor.key())
        assert out == keys


class TestAlphabetMismatch:
    def test_keys_validated_against_the_file_alphabet(self):
        f = THFile()  # lowercase
        with pytest.raises(InvalidKeyError):
            f.insert("key-with-dash")
        with pytest.raises(InvalidKeyError):
            f.insert("UPPER")
