"""Measurement and experiment harness.

``metrics`` computes the paper's quantities (load factor ``a``, trie size
``M``, growth rate ``s``, access counts); ``simulator`` drives files
through workloads collecting time series; ``experiments`` defines one
function per reproduced table/figure (see EXPERIMENTS.md for the index);
``reporting`` renders the rows the way the paper prints them.
"""

from .experiments import (
    ablation_balance,
    ablation_overflow,
    concurrency_table,
    ablation_buffer,
    ablation_nil_nodes,
    deletions_table,
    fig10_ascending,
    fig11_descending,
    growth_rate_table,
    mlth_access_table,
    multikey_grid_table,
    sec31_random,
    sec32_expected,
    sec32_unexpected,
    sec45_guarantees,
    sec45_redistribution,
    sec5_btree_comparison,
)
from .capacity import capacity_table
from .metrics import access_cost, file_metrics
from .reporting import format_table
from .simulator import insert_all, load_series

__all__ = [
    "ablation_balance",
    "ablation_overflow",
    "concurrency_table",
    "ablation_buffer",
    "ablation_nil_nodes",
    "deletions_table",
    "fig10_ascending",
    "fig11_descending",
    "growth_rate_table",
    "mlth_access_table",
    "multikey_grid_table",
    "sec31_random",
    "sec32_expected",
    "sec32_unexpected",
    "sec45_guarantees",
    "sec45_redistribution",
    "sec5_btree_comparison",
    "access_cost",
    "capacity_table",
    "file_metrics",
    "format_table",
    "insert_all",
    "load_series",
]
