"""Deletion and merging behaviour (Sections 2.4, 3.3, 4.3)."""

import random

import pytest

from repro import SplitPolicy, THFile
from repro.core.merge import mergeable_couples


class TestBasicMerging:
    def test_empty_sibling_less_bucket_goes_nil(self, fig1_file):
        # Bucket 6 of the example file holds only 'i' and its leaf has
        # no sibling leaf - deleting 'i' nils the leaf (paper 2.4).
        assert fig1_file.store.peek(6).keys == ["i"]
        buckets_before = fig1_file.bucket_count()
        fig1_file.delete("i")
        assert fig1_file.bucket_count() == buckets_before - 1
        assert fig1_file.nil_leaf_fraction() > 0
        fig1_file.check()
        assert "i" not in fig1_file

    def test_sibling_merge_shrinks_trie(self):
        f = THFile(bucket_capacity=4)
        for k in ("aa", "bb", "cc", "dd", "ee"):
            f.insert(k)
        assert f.bucket_count() == 2
        cells_before = f.trie_size()
        # Delete enough that the two sibling buckets fit in one.
        f.delete("aa")
        f.delete("bb")
        assert f.bucket_count() == 1
        assert f.trie_size() == cells_before - 1
        assert f.stats.merges == 1
        f.check()
        for k in ("cc", "dd", "ee"):
            assert k in f

    def test_merge_only_when_contents_fit(self):
        f = THFile(bucket_capacity=4)
        for k in ("aa", "bb", "cc", "dd", "ee"):
            f.insert(k)
        # 4 remaining records still exceed... they fit (4 <= b): choose
        # a scenario where they don't: keep all 5, delete none - then
        # delete one from the bigger side only.
        sizes = sorted(len(f.store.peek(a)) for a in f.store.live_addresses())
        assert sum(sizes) == 5  # cannot merge yet
        f.delete("ee")
        # Now 4 <= b: the next delete triggers... merging happens on the
        # delete path, so force one:
        f.delete("dd")
        f.check()

    def test_deep_shrink_to_single_bucket(self, generator):
        keys = generator.uniform(120)
        f = THFile(bucket_capacity=6)
        for k in keys:
            f.insert(k)
        order = list(keys)
        random.Random(9).shuffle(order)
        for k in order:
            f.delete(k)
            f.check()
        assert len(f) == 0
        assert f.bucket_count() >= 0  # file may keep one empty bucket

    def test_merge_none_policy_never_merges(self, generator):
        keys = generator.uniform(100)
        policy = SplitPolicy(merge="none")
        f = THFile(bucket_capacity=4, policy=policy)
        for k in keys:
            f.insert(k)
        buckets = f.bucket_count()
        for k in keys:
            f.delete(k)
        assert f.bucket_count() == buckets
        assert f.stats.merges == 0
        f.check()


class TestGuaranteedFloor:
    def test_floor_holds_under_random_deletes(self, generator):
        keys = generator.uniform(400)
        f = THFile(bucket_capacity=8, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k)
        order = list(keys)
        random.Random(3).shuffle(order)
        for i, k in enumerate(order[:340]):
            f.delete(k)
            if i % 40 == 0:
                f.check()
        f.check()
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        if len(sizes) > 1:
            assert min(sizes) >= 8 // 2

    def test_floor_holds_under_ordered_deletes(self, generator):
        keys = sorted(generator.uniform(300))
        f = THFile(bucket_capacity=8, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k)
        for k in keys[:250]:  # ascending deletions
            f.delete(k)
        f.check()
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        if len(sizes) > 1:
            assert min(sizes) >= 4

    def test_borrow_preferred_when_merge_impossible(self):
        # A compact load (d=0) leaves two full buckets of 4; when the
        # first falls below b//2 = 2 records a merge cannot fit
        # (1 + 4 > 4), so records are borrowed across the boundary.
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl_ascending(0))
        for k in ("aa", "ab", "ac", "ad", "ba", "bb", "bc", "bd"):
            f.insert(k)
        assert sorted(
            len(f.store.peek(a)) for a in f.store.live_addresses()
        ) == [4, 4]
        f.delete("aa")
        f.delete("ab")
        f.delete("ac")
        f.check()
        assert f.stats.borrows >= 1
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        assert min(sizes) >= 2

    def test_delete_then_reinsert_roundtrip(self, generator):
        keys = generator.uniform(200)
        f = THFile(bucket_capacity=6, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k, k.upper() if hasattr(k, "upper") else k)
        for k in keys[:150]:
            f.delete(k)
        for k in keys[:150]:
            f.insert(k)
        f.check()
        assert list(f.keys()) == sorted(keys)


class TestRotationMerging:
    def test_merges_more_than_siblings(self, generator):
        keys = generator.uniform(600)
        results = {}
        for merge in ("siblings", "rotations"):
            f = THFile(bucket_capacity=6, policy=SplitPolicy(merge=merge))
            for k in keys:
                f.insert(k)
            order = list(keys)
            random.Random(1).shuffle(order)
            for i, k in enumerate(order[:500]):
                f.delete(k)
                if i % 100 == 0:
                    f.check()
            f.check()
            results[merge] = f
            assert sorted(f.keys()) == sorted(order[500:])
        assert (
            results["rotations"].stats.merges
            >= results["siblings"].stats.merges
        )
        assert (
            results["rotations"].bucket_count()
            <= results["siblings"].bucket_count()
        )

    def test_never_merges_through_a_pinned_boundary(self):
        # Couple (8, 6) of the example file is separated by boundary 'h'
        # - the logical parent of 'he' - so it may never merge while
        # 'he' exists, even under rotations.
        f = THFile(bucket_capacity=4, policy=SplitPolicy(merge="rotations"))
        from repro.workloads import MOST_USED_WORDS

        for w in MOST_USED_WORDS:
            f.insert(w)
        f.insert("hom")
        f.insert("hut")  # bucket 8 region ('he','h']: his, hom, hut
        for w in ("hom", "hut"):
            f.delete(w)
        f.check()
        # Bucket 8 is down to one record. Merging right (with 'i') is
        # pinned by 'he'; merging left does not fit (1 + 4 > 4). Both
        # boundaries and the bucket must survive.
        assert "h" in f.trie.boundaries() and "he" in f.trie.boundaries()
        assert f.store.peek(8).keys == ["his"]

    def test_empty_bucket_merges_through_unpinned_boundary(self):
        # Deleting 'his' empties its bucket: the rotations regime merges
        # it into its predecessor by dropping the (unpinned) boundary
        # 'he'; the pinned 'h' stays.
        f = THFile(bucket_capacity=4, policy=SplitPolicy(merge="rotations"))
        from repro.workloads import MOST_USED_WORDS

        for w in MOST_USED_WORDS:
            f.insert(w)
        f.delete("his")
        f.check()
        assert "he" not in f.trie.boundaries()
        assert "h" in f.trie.boundaries()
        assert f.stats.merges == 1

    def test_requires_basic_method(self):
        from repro import CapacityError

        with pytest.raises(CapacityError):
            SplitPolicy(merge="rotations", nil_nodes=False)

    def test_mapping_preserved_after_rebuilds(self, generator):
        keys = generator.uniform(300)
        f = THFile(bucket_capacity=4, policy=SplitPolicy(merge="rotations"))
        for i, k in enumerate(keys):
            f.insert(k, i)
        for k in keys[:200]:
            f.delete(k)
        f.check()
        for i, k in enumerate(keys):
            if k in dict.fromkeys(keys[:200]):
                continue
            assert f.get(k) == i


class TestMergeableCouples:
    def test_fig1_counts(self, fig1_file):
        # The paper: 4 of 10 couples merge as siblings; rotations about
        # double that, with buckets (9,4) and (2,3) impossible. Our
        # structural analysis additionally proves (8,6) impossible (its
        # boundary 'h' is the logical parent of 'he', which could never
        # be placed if 'h' had two leaf children) - see EXPERIMENTS.md.
        siblings, rotations = mergeable_couples(fig1_file.trie)
        assert len(siblings) == 4
        assert len(rotations) == 7
        impossible = {(9, 4), (3, 2), (8, 6)}
        leaves = [p for _, p, _ in fig1_file.trie.leaves_in_order()]
        all_couples = {pair for pair in zip(leaves, leaves[1:])}
        assert all_couples - set(rotations) == impossible

    def test_rotation_set_contains_sibling_set(self, fig1_file):
        siblings, rotations = mergeable_couples(fig1_file.trie)
        assert set(siblings) <= set(rotations)
