"""One TH* shard server: a trie-hashing file plus forwarding logic.

A server owns one contiguous region of the key space (one gap of the
coordinator's authoritative partition) and stores exactly the records
whose keys fall in it, in a single-node :class:`~repro.core.file.THFile`
— or a crash-safe :class:`~repro.storage.recovery.DurableFile` wrapping
one. Servers never trust client routing: an operation addressed to the
wrong shard is forwarded to its owner through the router (one hop — the
coordinator's partition is authoritative), and every reply carries the
IAM entries for the region the operation actually landed in, so the
addressing client's image converges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import TrieHashingError
from ..core.keys import prefix_le
from ..core.range_query import scan as local_scan
from ..obs.tracer import TRACER
from .messages import CONTAINS, DELETE, GET, INSERT, MUTATING_OPS, PUT, SCAN, Op, Reply

__all__ = ["ShardServer"]


class ShardServer:
    """A single simulated server of the distributed file."""

    def __init__(self, shard_id: int, file, coordinator, router):
        self.shard_id = shard_id
        self.file = file
        self.coordinator = coordinator
        self.router = router
        self.registry = coordinator.registry
        router.register(self)

    # ------------------------------------------------------------------
    # Storage access (THFile and DurableFile duck-type alike)
    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The underlying THFile (unwraps a durable session)."""
        inner = getattr(self.file, "file", None)
        return inner if inner is not None else self.file

    def __len__(self) -> int:
        return len(self.file)

    def items(self) -> List[Tuple[str, object]]:
        """This shard's records in key order (a materialized snapshot)."""
        return list(self.file.items())

    def replace_file(self, file) -> None:
        """Swap in a rebuilt file (the scale-out record move)."""
        self.file = file

    # ------------------------------------------------------------------
    # Operation handling
    # ------------------------------------------------------------------
    def handle(self, op: Op) -> Reply:
        """Execute ``op`` if this server owns it, else forward it."""
        self.registry.counter(
            "dist_server_ops_total", {"shard": self.shard_id, "op": op.kind}
        ).inc()
        if op.kind == SCAN:
            return self._handle_scan(op)
        return self._handle_point(op)

    def _handle_point(self, op: Op) -> Reply:
        owner = self.coordinator.owner_of(op.key)
        if owner != self.shard_id:
            return self.router.forward(self.shard_id, owner, op)
        error: Optional[Exception] = None
        value: object = None
        try:
            if op.kind == GET:
                value = self.file.get(op.key)
            elif op.kind == CONTAINS:
                value = self.file.contains(op.key)
            elif op.kind == INSERT:
                self.file.insert(op.key, op.value)
            elif op.kind == PUT:
                self.file.put(op.key, op.value)
            elif op.kind == DELETE:
                value = self.file.delete(op.key)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown op kind {op.kind!r}")
        except TrieHashingError as exc:
            error = exc
        if op.kind in MUTATING_OPS and error is None:
            # The op may have pushed this shard over its load policy;
            # scale out *before* building the IAM so the client learns
            # the fresh cut immediately.
            self.coordinator.maybe_split(self.shard_id)
        return Reply(
            value=value,
            error=error,
            iam=self.coordinator.iam_for_key(op.key),
            owner=self.coordinator.owner_of(op.key),
        )

    def _handle_scan(self, op: Op) -> Reply:
        gap = self.coordinator.scan_gap(op)
        owner = self.coordinator.shard_of_gap(gap)
        if owner != self.shard_id:
            return self.router.forward(self.shard_id, owner, op)
        records = list(local_scan(self.engine, op.low, op.high))
        low_b, high_b = self.coordinator.region_of_gap(gap)
        done = high_b is None or (
            op.high is not None
            and prefix_le(op.high, high_b, self.coordinator.alphabet)
        )
        if TRACER.enabled:
            TRACER.emit(
                "scan_leg", shard=self.shard_id, records=len(records)
            )
        return Reply(
            records=records,
            region_high=high_b,
            done=done,
            iam=[(low_b, high_b, self.shard_id)],
            owner=self.shard_id,
        )
