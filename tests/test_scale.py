"""Larger-scale sanity: the structures hold up beyond toy sizes."""

import pytest

from repro import MLTHFile, SplitPolicy, THFile, bulk_load_th
from repro.workloads import KeyGenerator


@pytest.fixture(scope="module")
def big_keys():
    return KeyGenerator(777).uniform(30000, length=7)


class TestScale:
    def test_thcl_thirty_thousand(self, big_keys):
        f = THFile(bucket_capacity=50, policy=SplitPolicy.thcl())
        for k in big_keys:
            f.insert(k)
        f.check()
        assert len(f) == 30000
        assert 0.62 <= f.load_factor() <= 0.78
        # Spot lookups across the space.
        for k in big_keys[::997]:
            assert k in f

    def test_bulk_load_thirty_thousand(self, big_keys):
        s = sorted(big_keys)
        f = bulk_load_th(((k, None) for k in s), bucket_capacity=50)
        f.check()
        assert f.load_factor() > 0.99
        assert list(f.keys()) == s

    def test_mlth_thirty_thousand(self, big_keys):
        f = MLTHFile(bucket_capacity=50, page_capacity=64)
        for k in big_keys:
            f.insert(k)
        assert f.levels() >= 2
        pages, buckets = f.search_cost(big_keys[123])
        assert buckets == 1 and pages <= f.levels()
        # Global consistency without per-key A1 verification (fast path):
        model = f.flat_model()
        model.check(require_prefix_closed=True)
        for k in big_keys[::1501]:
            assert f.get(k) is None and f.contains(k)

    def test_trie_size_scales_linearly(self, big_keys):
        # M ~ N at every scale: one cell per bucket, Section 3.1.
        f = THFile(bucket_capacity=20)
        checkpoints = {5000, 15000, 30000}
        for i, k in enumerate(big_keys, 1):
            f.insert(k)
            if i in checkpoints:
                assert f.trie_size() == pytest.approx(
                    f.bucket_count(), rel=0.1
                )
