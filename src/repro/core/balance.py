"""Trie balancing (Section 2.6).

A TH-trie built by splits is usually not well balanced — ordered
insertions in particular produce long one-sided chains. Balancing only
shortens the *in-memory* node search (disk accesses, load factor and trie
size are untouched), and must preserve logical ancestorship: a node's
logical parent can never become its physical descendant.

The implementation uses the canonical intermediate form of /TOR83/: the
trie is exported to its boundary model and rebuilt with every subtrie
rooted at the valid candidate closest to the span's middle (the same
root-candidate condition as the multilevel split node). This realises
both balancing techniques the paper sketches — the canonical-form method
and the recursive split-node method give the same kind of result.
"""

from __future__ import annotations

from typing import NamedTuple

from .trie import Trie

__all__ = ["BalanceReport", "balance", "depth_report"]


class BalanceReport(NamedTuple):
    """Before/after depths of a balancing pass."""

    depth_before: int
    depth_after: int
    node_count: int


def balance(trie: Trie, pick: str = "balanced") -> Trie:
    """Return an equivalent, canonically balanced trie.

    The result maps every key to the same leaf pointer as the input;
    only the binary shape (and hence in-core search depth) changes.
    ``pick`` may be ``'balanced'`` (default), ``'first'`` or ``'last'``
    — the skewed variants exist for the ordered-insertion page-split
    policies of Section 3.2.
    """
    return trie.rebalanced(pick=pick)


def depth_report(trie: Trie, pick: str = "balanced") -> BalanceReport:
    """Measure what balancing would gain without mutating anything."""
    balanced = balance(trie, pick=pick)
    return BalanceReport(trie.depth(), balanced.depth(), trie.node_count)
