"""Primary/backup shard replication, failover and live migration.

This module gives the TH* shard layer an availability story. Three
mechanisms compose, all built on machinery the layer already has — the
WAL, the dedup window, the Transport seam and IAM convergence:

* **WAL shipping** (:class:`Replicator`). Every durable primary's
  :class:`~repro.storage.wal.WALWriter` exposes commit-time *taps*: the
  operation records made durable by one fsync arrive as a batch, and
  the replicator ships them to a backup :class:`ShardServer` over the
  router's ``replicate`` edge. The backup replays them through the same
  code path crash recovery uses — including the request ids inside the
  records, so its dedup window tracks the primary's and a retry
  arriving *after* a promotion still short-circuits. Under the
  ``semisync`` :class:`ReplicationPolicy` the ship happens inside the
  primary's commit path, before the client's ack is released: an acked
  write is on the backup, which is what makes failover lossless. Under
  ``async`` the ship is fire-and-forget and gaps are repaired by the
  sequence protocol below.

* **Failover** (:class:`FailureDetector` + ``Coordinator.failover``).
  Health probes run on whatever clock the deployment has — the
  simulated fabric clock in-process, a wall-clock asyncio loop in the
  serving tier. A primary that stays down past ``failover_after`` is
  deposed: its backup is promoted in place, the authoritative partition
  repoints the region, and the router rebinds the dead id so stale
  clients reach the promoted server and converge through ordinary IAM
  patching. The deposed primary is never restarted.

* **Live migration** (:class:`Migration`). A region moves to a freshly
  built server under load: a materialized snapshot is copied in chunks
  while a tap on the source buffers every concurrently committed
  record; the cutover barrier drains the remainder, replays the buffer,
  merges the source's dedup window and repoints the partition. The
  retired source stays registered and forwards stragglers, so stale
  clients converge exactly as they do after a split.

**Sequencing.** A ship carries ``(epoch, seq)``: ``seq`` increments per
shipped batch, ``epoch`` increments whenever the backup is rebuilt from
a snapshot (resync, split, promotion). The backup applies ``seq ==
applied + 1`` batches, ignores replays (fabric duplicates, sender
retries), and answers anything else with a *resync request* carrying
its position. The primary repairs a gap by streaming the missed
segment records (:func:`~repro.storage.wal.stream_ops`) when the
backup's position is still inside the current WAL segment, and by a
full snapshot transfer — items, dedup window and WAL position —
otherwise.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any, Optional

from ..obs.tracer import TRACER
from ..storage.dedup import DedupWindow
from ..storage.recovery import DurableFile
from ..storage.wal import REC_DELETE, REC_INSERT, REC_PUT, WALRecord, stream_ops
from .errors import (
    ConfigurationError,
    MessageLostError,
    ReplicationError,
    ServerDownError,
    UnknownShardError,
)
from .messages import Op

__all__ = [
    "ReplicationPolicy",
    "ReplicaState",
    "Replicator",
    "FailureDetector",
    "Migration",
    "apply_records",
    "wire_records",
]


class ReplicationPolicy:
    """How a cluster replicates and when it fails over.

    Parameters
    ----------
    mode:
        ``"semisync"`` ships every committed WAL batch inside the
        primary's commit path and retries transient losses before the
        ack is released — an acked write is on the backup. ``"async"``
        ships fire-and-forget; a lost batch leaves the backup behind
        until the next ship triggers the resync protocol.
    heartbeat_interval:
        Minimum spacing between health-probe sweeps (detector polls are
        driven opportunistically by clock ticks, this rate-limits them).
    failover_after:
        How long a primary must stay down before its backup is
        promoted. Must exceed the expected transient-outage time, or
        routine crash/recovery cycles get needlessly deposed.
    ship_retries:
        Transient-loss retries per semisync ship before the primary
        marks itself *degraded* (keeps serving, refuses failover).
    staleness_bound:
        How many shipped batches a read replica may be known to lag
        before it refuses scans with
        :class:`~repro.distributed.errors.ReplicaStaleError`.
    """

    __slots__ = (
        "mode",
        "heartbeat_interval",
        "failover_after",
        "ship_retries",
        "staleness_bound",
    )

    def __init__(
        self,
        mode: str = "semisync",
        heartbeat_interval: float = 0.02,
        failover_after: float = 0.3,
        ship_retries: int = 8,
        staleness_bound: int = 0,
    ):
        if mode not in ("semisync", "async"):
            raise ConfigurationError(
                f"replication mode must be 'semisync' or 'async', got {mode!r}"
            )
        if heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat interval must be positive")
        if failover_after <= 0:
            raise ConfigurationError("failover_after must be positive")
        if ship_retries < 0:
            raise ConfigurationError("ship_retries cannot be negative")
        if staleness_bound < 0:
            raise ConfigurationError("staleness bound cannot be negative")
        self.mode = mode
        self.heartbeat_interval = heartbeat_interval
        self.failover_after = failover_after
        self.ship_retries = ship_retries
        self.staleness_bound = staleness_bound

    @property
    def semisync(self) -> bool:
        """True when acks are gated on the backup having the batch."""
        return self.mode == "semisync"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicationPolicy({self.mode}, "
            f"failover_after={self.failover_after})"
        )


class ReplicaState:
    """A backup's position in its primary's shipping stream.

    ``last_lsn`` is in the *primary's* LSN coordinates — the highest
    primary WAL record this backup has applied — which is what makes
    segment catch-up possible. ``lag`` is the backup's best knowledge of
    how many batches it is behind (0 while in sync; set on gap
    detection, cleared by the repair). Volatile by design: a backup that
    crashes comes back with no state and forces a full resync.
    """

    __slots__ = ("epoch", "applied_seq", "last_lsn", "lag")

    def __init__(self, epoch: int, applied_seq: int, last_lsn: int):
        self.epoch = epoch
        self.applied_seq = applied_seq
        self.last_lsn = last_lsn
        self.lag = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaState(epoch={self.epoch}, seq={self.applied_seq}, "
            f"lsn={self.last_lsn}, lag={self.lag})"
        )


def wire_records(wal_records: Iterable[WALRecord]) -> list[list]:
    """WAL op records in shipping form ``[lsn, type, key, value, rid]``."""
    return [
        [
            record.lsn,
            record.type,
            record.payload.get("k"),
            record.payload.get("v"),
            record.payload.get("rid"),
        ]
        for record in wal_records
    ]


def apply_records(file: Any, dedup: DedupWindow, recs: Iterable[list]) -> None:
    """Replay shipped op records into ``file`` the way recovery would.

    Durable files take the request id themselves — it travels inside
    the logged record and reaches the dedup window after the fsync, so
    the backup's own WAL is a faithful log and survives *its* crashes.
    One group commit per batch: the backup acks a batch only once it is
    durable locally. In-memory files apply directly and record the id
    with the op's result in the caller's window.

    The primary only ever logs *successful* operations, so replay on an
    in-sync copy cannot raise; an exception here means the copy has
    diverged and the caller must fall back to resync.
    """
    if isinstance(file, DurableFile):
        with file.group_commit():
            for _lsn, rec_type, key, value, rid in recs:
                rid_t = (int(rid[0]), int(rid[1])) if rid is not None else None
                if rec_type == REC_INSERT:
                    file.insert(key, value, rid=rid_t)
                elif rec_type == REC_PUT:
                    file.put(key, value, rid=rid_t)
                elif rec_type == REC_DELETE:
                    file.delete(key, rid=rid_t)
                else:
                    raise ReplicationError(
                        f"unknown replicated record type {rec_type}"
                    )
        return
    for _lsn, rec_type, key, value, rid in recs:
        rid_t = (int(rid[0]), int(rid[1])) if rid is not None else None
        if rec_type == REC_INSERT:
            out = file.insert(key, value)
        elif rec_type == REC_PUT:
            out = file.put(key, value)
        elif rec_type == REC_DELETE:
            out = file.delete(key)
        else:
            raise ReplicationError(
                f"unknown replicated record type {rec_type}"
            )
        dedup.record(rid_t, out)


class Replicator:
    """The primary-side half of one primary/backup pair.

    Subscribes to the primary's WAL taps (durable shards) or is fed
    applied records directly (in-memory shards) and ships each batch to
    the backup. Keeps the ``(epoch, seq)`` shipping stream and runs the
    repair ladder when the backup reports a gap: segment catch-up
    first, full snapshot resync as the last resort.
    """

    __slots__ = (
        "server",
        "backup_id",
        "policy",
        "epoch",
        "seq",
        "confirmed",
        "degraded",
        "ships",
        "catchups",
        "resyncs",
    )

    def __init__(self, server, backup, policy: ReplicationPolicy):
        self.server = server
        self.backup_id = backup.shard_id
        self.policy = policy
        self.epoch = 0
        self.seq = 0
        self.confirmed = 0
        #: True when the backup could not be reached (or repaired): the
        #: primary keeps serving alone, but refuses failover — a
        #: degraded backup may be missing acked writes.
        self.degraded = False
        self.ships = 0
        self.catchups = 0
        self.resyncs = 0

    # -- wiring --------------------------------------------------------
    def attach_wal(self, wal: Any) -> None:
        """Subscribe to ``wal``'s commit taps (idempotent)."""
        if wal is not None and self._on_commit not in wal.taps:
            wal.taps.append(self._on_commit)

    def _on_commit(self, wal_records) -> None:
        self.ship(wire_records(wal_records))

    def seed_direct(self) -> None:
        """Start a fresh epoch after a direct (in-process) copy.

        Split rebuilds, migration cutovers and post-promotion respawns
        copy the backup's contents without going through the wire; the
        epoch bump fences any ship from the pre-copy stream.
        """
        self.epoch += 1
        self.seq = 0
        self.confirmed = 0
        self.degraded = False

    # -- shipping ------------------------------------------------------
    @property
    def behind(self) -> int:
        """Batches shipped but not yet confirmed by the backup."""
        return max(0, self.seq - self.confirmed)

    def _gauge(self) -> None:
        self.server.registry.gauge(
            "dist_replicas_behind", {"shard": self.server.shard_id}
        ).set(self.behind)

    def ship(self, recs: list[list]) -> None:
        """Ship one committed batch; repair or degrade on failure."""
        self.seq += 1
        self.ships += 1
        payload = {"epoch": self.epoch, "seq": self.seq, "recs": recs}
        reply = self._send(Op.replicate(payload))
        if reply is None:
            if self.policy.semisync:
                self._degrade("unreachable")
            self._gauge()
            return
        status = reply.value if isinstance(reply.value, dict) else {}
        if status.get("resync"):
            self._repair(int(status.get("lsn", -1)))
        else:
            self.confirmed = self.seq
            self.degraded = False
        self._gauge()

    def _send(self, op: Op):
        """One ship with the policy's transient-loss retry budget."""
        attempts = 1 + (self.policy.ship_retries if self.policy.semisync else 0)
        router = self.server.router
        for attempt in range(attempts):
            try:
                return router.replicate(
                    self.server.shard_id, self.backup_id, op
                )
            except MessageLostError:
                if attempt + 1 < attempts:
                    router.sleep(0.002)
            except (ServerDownError, UnknownShardError):
                return None
        return None

    def _send_hard(self, op: Op):
        """A repair transfer: retried hard in both modes.

        Resync is the mechanism that makes async mode eventually
        consistent — giving up on it would leave the backup behind
        forever — so the retry budget applies regardless of mode.
        """
        router = self.server.router
        for attempt in range(1 + max(1, self.policy.ship_retries)):
            try:
                return router.replicate(
                    self.server.shard_id, self.backup_id, op
                )
            except MessageLostError:
                router.sleep(0.002)
            except (ServerDownError, UnknownShardError):
                return None
        return None

    def _degrade(self, reason: str) -> None:
        if not self.degraded:
            self.degraded = True
            self.server.registry.counter(
                "dist_replication_degraded_total",
                {"shard": self.server.shard_id},
            ).inc()
            if TRACER.enabled:
                TRACER.emit(
                    "replication_degraded",
                    shard=self.server.shard_id,
                    backup=self.backup_id,
                    reason=reason,
                )

    # -- repair ladder -------------------------------------------------
    def _repair(self, backup_lsn: int) -> None:
        """Close a reported gap: segment catch-up, else full resync."""
        file = self.server.file
        wal = getattr(file, "wal", None)
        manifest = getattr(file, "manifest", None)
        if (
            wal is not None
            and manifest is not None
            and backup_lsn >= int(manifest.get("lsn", 0))
        ):
            recs = wire_records(
                stream_ops(wal.store, wal.name, after_lsn=backup_lsn)
            )
            payload = {
                "epoch": self.epoch,
                "seq": self.seq,
                "recs": recs,
                "catchup": True,
                "from_lsn": backup_lsn,
            }
            reply = self._send_hard(Op.replicate(payload))
            if reply is not None:
                status = reply.value if isinstance(reply.value, dict) else {}
                if not status.get("resync"):
                    self.catchups += 1
                    self.confirmed = self.seq
                    self.degraded = False
                    self.server.registry.counter(
                        "dist_replica_catchups_total",
                        {"shard": self.server.shard_id},
                    ).inc()
                    if TRACER.enabled:
                        TRACER.emit(
                            "replica_catchup",
                            shard=self.server.shard_id,
                            backup=self.backup_id,
                            records=len(recs),
                        )
                    return
        self.resync()

    def resync(self) -> None:
        """Rebuild the backup from a full snapshot transfer."""
        file = self.server.file
        wal = getattr(file, "wal", None)
        self.epoch += 1
        self.resyncs += 1
        payload = {
            "epoch": self.epoch,
            "seq": self.seq,
            "lsn": wal.last_lsn if wal is not None else 0,
            "items": [[k, v] for k, v in self.server.items()],
            "dedup": self.server.dedup.to_spec(),
        }
        self.server.registry.counter(
            "dist_replica_resyncs_total", {"shard": self.server.shard_id}
        ).inc()
        if TRACER.enabled:
            TRACER.emit(
                "replica_resync",
                shard=self.server.shard_id,
                backup=self.backup_id,
                records=len(payload["items"]),
            )
        reply = self._send_hard(Op.resync(payload))
        if reply is None:
            self._degrade("resync failed")
            return
        status = reply.value if isinstance(reply.value, dict) else {}
        if status.get("resync"):
            self._degrade("resync rejected")
            return
        self.confirmed = self.seq
        self.degraded = False
        self._gauge()


class FailureDetector:
    """Missed-heartbeat detection on an injected clock.

    ``poll`` sweeps the primaries: a server seen down starts (or
    continues) a suspicion window; one that stays down past the
    policy's ``failover_after`` is handed to ``coordinator.failover``.
    Sweeps are rate-limited to the heartbeat interval, so callers can
    invoke it from every clock tick.
    """

    __slots__ = ("policy", "suspects", "last_poll", "probes")

    def __init__(self, policy: ReplicationPolicy):
        self.policy = policy
        self.suspects: dict[int, float] = {}
        self.last_poll: Optional[float] = None
        self.probes = 0

    def poll(self, coordinator: Any, now: float) -> list[int]:
        """Probe once per heartbeat; returns the shard ids deposed."""
        if (
            self.last_poll is not None
            and now - self.last_poll < self.policy.heartbeat_interval
        ):
            return []
        self.last_poll = now
        deposed: list[int] = []
        for shard_id, server in list(coordinator.servers.items()):
            self.probes += 1
            if not server.down:
                self.suspects.pop(shard_id, None)
                continue
            since = self.suspects.setdefault(shard_id, now)
            if now - since >= self.policy.failover_after:
                if coordinator.failover(shard_id, now=now):
                    deposed.append(shard_id)
                    self.suspects.pop(shard_id, None)
        return deposed


class Migration:
    """One live region move: snapshot chunks + tap catch-up + barrier.

    Construction materializes the source's snapshot, registers a
    catch-up tap on the source server and spins up the (off-partition)
    target. :meth:`step` copies one chunk — callers interleave steps
    with live traffic. :meth:`finish` is the cutover barrier: drain the
    remaining chunks, replay the buffered concurrent records, merge the
    source's dedup window, repoint the partition and retire the source
    as a forwarding stub.
    """

    __slots__ = (
        "coordinator",
        "source_id",
        "source",
        "target",
        "chunk_size",
        "snapshot",
        "cursor",
        "buffer",
        "done",
        "aborted",
    )

    def __init__(self, coordinator, source_id: int, chunk_size: int = 64):
        if chunk_size < 1:
            raise ConfigurationError("migration chunk size must be positive")
        self.coordinator = coordinator
        self.source_id = source_id
        self.source = coordinator.servers[source_id]
        self.target = coordinator.spawn_detached_server()
        self.chunk_size = chunk_size
        self.snapshot = self.source.items()
        self.cursor = 0
        #: Records the source committed after the snapshot was cut, in
        #: commit order — the WAL catch-up stream of this move.
        self.buffer: list[list] = []
        self.done = False
        self.aborted = False
        self.source.taps.append(self._tap)
        self.source.wire_replication()
        coordinator.registry.counter("dist_migrations_started_total").inc()
        if TRACER.enabled:
            TRACER.emit(
                "migration_start",
                shard=source_id,
                target=self.target.shard_id,
                records=len(self.snapshot),
            )

    def _tap(self, recs: list[list]) -> None:
        self.buffer.extend(recs)

    @property
    def active(self) -> bool:
        return not (self.done or self.aborted)

    def pending_chunks(self) -> bool:
        """True while snapshot chunks remain to be copied."""
        return self.cursor < len(self.snapshot)

    def step(self) -> bool:
        """Copy one snapshot chunk; True while more remain."""
        if not self.active:
            return False
        chunk = self.snapshot[self.cursor : self.cursor + self.chunk_size]
        self.cursor += len(chunk)
        if chunk:
            self.target.file.put_many(chunk)
        return self.pending_chunks()

    def finish(self) -> Optional[int]:
        """The cutover barrier; returns the new owner's shard id.

        Refuses (aborts, returns ``None``) when the source is down —
        its unreplayed tail cannot be trusted; the region stays where
        it is and the ordinary recovery/failover paths apply.
        """
        if not self.active:
            return None
        if self.source.down:
            self.abort()
            return None
        while self.step():
            pass
        # Catch-up: records committed on the source since the snapshot.
        replayed = len(self.buffer)
        if self.buffer:
            apply_records(self.target.file, self.target.dedup, self.buffer)
            self.buffer = []
        self._detach()
        # Retries of pre-cutover mutations must short-circuit on the
        # new owner even when their record predates the snapshot.
        self.target.dedup.merge(self.source.dedup)
        self.done = True
        self.coordinator.cutover_migration(self, replayed)
        return self.target.shard_id

    def abort(self) -> None:
        """Drop the move: detach the tap, discard the target."""
        if self.done or self.aborted:
            return
        self.aborted = True
        self._detach()
        self.coordinator.router.servers.pop(self.target.shard_id, None)
        if TRACER.enabled:
            TRACER.emit(
                "migration_abort",
                shard=self.source_id,
                target=self.target.shard_id,
            )

    def _detach(self) -> None:
        try:
            self.source.taps.remove(self._tap)
        except ValueError:
            pass
