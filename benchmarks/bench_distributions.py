"""Distribution view of the Fig 10 mechanics.

Why does the d = 0 trie peak and then shrink? Section 4.5's explanation
is distributional: adjacent-key cuts need longer split strings; lowering
the split key shortens them but multiplies splits. This bench prints the
boundary-length statistics along the Fig 10 sweep so the explanation is
checked against data, not just quoted.
"""

from conftest import once

from repro import SplitPolicy, THFile
from repro.analysis.distributions import boundary_length_histogram, summarize
from repro.workloads import KeyGenerator


def run():
    keys = KeyGenerator(42).sorted_keys(5000)
    rows = []
    for d in (0, 2, 4, 8):
        policy = SplitPolicy(
            split_position=-(d + 1),
            bounding_offset=None,
            nil_nodes=False,
            merge="guaranteed",
        )
        f = THFile(20, policy)
        for k in keys:
            f.insert(k)
        stats = summarize(boundary_length_histogram(f.trie))
        rows.append(
            {
                "d": d,
                "M": f.trie_size(),
                "N": f.bucket_count(),
                "mean boundary len": stats["mean"],
                "max boundary len": stats["max"],
                "a%": round(100 * f.load_factor(), 1),
            }
        )
    return rows


def test_boundary_length_mechanics(benchmark, report):
    rows = once(benchmark, run)
    report(
        "distributions",
        rows,
        "Fig 10 mechanics - boundary lengths vs d (b = 20, 5000 keys)",
    )
    means = [r["mean boundary len"] for r in rows]
    assert means == sorted(means, reverse=True)  # strings shorten with d
    splits = [r["N"] for r in rows]
    assert splits == sorted(splits)              # but splits multiply
