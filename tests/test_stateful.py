"""Stateful (model-based) testing: a THFile against a plain dict.

Hypothesis drives arbitrary interleavings of insert/put/delete/get/range
operations across the full policy matrix; after every step the file must
agree with the dictionary model, and periodically the deep structural
check must hold.
"""

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import DuplicateKeyError, KeyNotFoundError, SplitPolicy, THFile

keys_st = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

POLICIES = [
    SplitPolicy.basic_th(),
    SplitPolicy(merge="rotations"),
    SplitPolicy.thcl(),
    SplitPolicy.thcl_redistributing(),
    SplitPolicy.thcl_ascending(1),
]


class FileAgainstDict(RuleBasedStateMachine):
    @initialize(
        policy_index=st.integers(min_value=0, max_value=len(POLICIES) - 1),
        capacity=st.integers(min_value=2, max_value=6),
    )
    def setup(self, policy_index, capacity):
        self.file = THFile(
            bucket_capacity=capacity, policy=POLICIES[policy_index]
        )
        self.model = {}
        self.steps = 0

    @rule(key=keys_st, value=st.integers())
    def insert(self, key, value):
        self.steps += 1
        if key in self.model:
            try:
                self.file.insert(key, value)
                raise AssertionError("duplicate accepted")
            except DuplicateKeyError:
                pass
        else:
            self.file.insert(key, value)
            self.model[key] = value

    @rule(key=keys_st, value=st.integers())
    def put(self, key, value):
        self.steps += 1
        self.file.put(key, value)
        self.model[key] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        self.steps += 1
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.file.delete(key) == self.model.pop(key)

    @rule(key=keys_st)
    def delete_missing(self, key):
        if key in self.model:
            return
        try:
            self.file.delete(key)
            raise AssertionError("deleted a missing key")
        except KeyNotFoundError:
            pass

    @rule(key=keys_st)
    def lookup(self, key):
        if key in self.model:
            assert self.file.get(key) == self.model[key]
        else:
            assert key not in self.file

    @rule(data=st.data())
    def range_scan(self, data):
        if not self.model:
            return
        ordered = sorted(self.model)
        lo = data.draw(st.sampled_from(ordered))
        hi = data.draw(st.sampled_from(ordered))
        if lo > hi:
            lo, hi = hi, lo
        expected = [k for k in ordered if lo <= k <= hi]
        assert [k for k, _ in self.file.range_items(lo, hi)] == expected

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "model"):
            assert len(self.file) == len(self.model)

    @invariant()
    def deep_check_periodically(self):
        if hasattr(self, "model") and self.steps % 7 == 0:
            self.file.check()
            assert dict(self.file.items()) == self.model


TestFileAgainstDict = FileAgainstDict.TestCase
TestFileAgainstDict.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
