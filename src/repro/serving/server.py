"""The asyncio serving tier: a real server in front of the shard layer.

:class:`ServingServer` listens on a TCP port or a Unix-domain socket
and speaks the length-prefixed frame protocol of
:mod:`repro.distributed.codec`. Behind it sits an ordinary
:class:`~repro.distributed.coordinator.Cluster` — the same shard
servers, coordinator and exactly-once machinery the in-process fabric
drives — so everything proven over the simulated transport holds over
a real wire.

Architecture, and why it is shaped this way:

* **One reader task per connection** parses frames and feeds a single
  **bounded queue** (``max_queue``). The bound is the backpressure
  valve: when the dispatcher falls behind, ``queue.put`` blocks the
  reader coroutine, TCP/UDS flow control pushes back on the client,
  and memory stays bounded instead of buffering an unbounded burst.
* **One dispatcher task** drains the queue in micro-batches (up to
  ``batch_max`` frames). Single-threaded dispatch is what makes the
  shard layer's single-writer assumptions hold without locks — the
  asyncio loop serialises all op execution exactly like the in-process
  fabric does.
* **Group fsync.** If a micro-batch contains any mutation, the
  dispatcher opens :meth:`~repro.storage.recovery.DurableFile
  .group_commit` on every live durable shard for the duration of the
  batch: each op still appends its WAL record immediately, but the
  fsync barrier is paid **once per batch per touched file**, not once
  per op. Replies are withheld until the group closes, preserving the
  ack protocol — a client never sees an ack for an op whose WAL record
  could still be lost.
* **Controls are barriers.** Control commands (crash, restart, stats,
  ...) close the open group and flush pending replies before running,
  so a crash injected over the wire can never interleave with a
  half-committed batch.

Op and reply values cross the codec at this boundary (the op is decoded
from the frame, the reply encoded into one), so no Python reference is
ever shared between a client and a shard — the aliasing class of bugs
is structurally gone, exactly as over the in-process fabric.
"""

from __future__ import annotations

import asyncio
import struct
import time
from contextlib import ExitStack
from typing import Optional

from ..distributed.codec import (
    FRAME_CONTROL,
    FRAME_CONTROL_REPLY,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    decode_op,
    decode_value,
    encode_reply,
    encode_value,
    pack_frame,
)
from ..distributed.errors import ProtocolError
from ..distributed.messages import MUTATING_OPS, Op
from .frames import DEFAULT_MAX_FRAME, read_frame

__all__ = ["ServingServer"]

_U32 = struct.Struct(">I")

#: Remote clients get ids from this base so their request ids can never
#: collide with in-process clients minted by ``Cluster.client()``.
_CLIENT_ID_BASE = 1000


class _Conn:
    """One accepted connection (its reader feeds the shared queue)."""

    __slots__ = ("reader", "writer", "alive")

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.alive = True


class ServingServer:
    """Serve a :class:`~repro.distributed.coordinator.Cluster` over asyncio.

    Parameters
    ----------
    cluster:
        The cluster to front. Its router should be the plain
        :class:`~repro.distributed.router.InProcessTransport` — fault
        injection belongs on the *client* side of a real wire (see
        :class:`repro.serving.faults.FaultyRemoteTransport`), where
        drops and delays are visible to the retry loop under test.
    max_queue:
        Bound of the shared op queue — the backpressure valve.
    batch_max:
        Most frames one dispatcher micro-batch will drain (and so the
        most WAL appends one group fsync can amortise).
    """

    def __init__(
        self,
        cluster,
        max_queue: int = 256,
        batch_max: int = 64,
        max_frame: int = DEFAULT_MAX_FRAME,
        health_interval: float = 0.0,
    ):
        self.cluster = cluster
        self.router = cluster.router
        self.max_queue = max_queue
        self.batch_max = batch_max
        self.max_frame = max_frame
        #: Wall-clock failure-detection period. When positive, a health
        #: task polls ``coordinator.tick(monotonic())`` at this rate, so
        #: a replicated deployment promotes backups on real time even
        #: with no simulated clock in sight. ``0`` disables the task
        #: (the chaos harness drives ticks through the control plane
        #: instead, keeping detection deterministic).
        self.health_interval = health_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._health: Optional[asyncio.Task] = None
        self._conns: set = set()
        self._next_client = _CLIENT_ID_BASE
        self._stall = 0.0
        self._busy = False
        self._draining = False
        #: Dispatcher-side counters (exposed by the ``stats`` control).
        self.batches = 0
        self.grouped_batches = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start_unix(self, path: str) -> str:
        """Listen on a Unix-domain socket at ``path``."""
        self._start_dispatcher()
        self._server = await asyncio.start_unix_server(self._on_conn, path=path)
        return path

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Listen on TCP; returns the bound ``(host, port)``."""
        self._start_dispatcher()
        self._server = await asyncio.start_server(self._on_conn, host, port)
        return self._server.sockets[0].getsockname()[:2]

    def _start_dispatcher(self) -> None:
        # The queue binds to the running loop, so it is created here
        # rather than in __init__ (which may run on another thread).
        self._queue = asyncio.Queue(self.max_queue)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        if self.health_interval > 0:
            self._health = asyncio.ensure_future(self._health_loop())

    async def _health_loop(self) -> None:
        """Drive the failure detector off wall time (see ``health_interval``)."""
        while True:
            await asyncio.sleep(self.health_interval)
            # Runs between dispatcher batches on the same loop, so a
            # promotion can never interleave with an open commit group.
            self.cluster.coordinator.tick(time.monotonic())

    async def stop(self) -> None:
        """Stop accepting, cancel the dispatcher, drop all connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in (self._dispatcher, self._health):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._dispatcher = None
        self._health = None
        for conn in list(self._conns):
            self._drop(conn)

    async def shutdown(self, drain_timeout: float = 10.0) -> int:
        """Graceful stop: refuse new connections, drain, fsync, close.

        The sequence the ack protocol demands: first the listener
        closes (no new connections; ops already queued or still
        arriving on live connections keep flowing), then the dispatcher
        drains until the queue is empty and no batch is mid-flight (or
        ``drain_timeout`` wall-seconds pass — a client that never stops
        writing must not hold shutdown hostage forever), then every
        live durable shard takes a final WAL commit so any record
        appended outside a closed group is fsynced, and only then do
        connections drop. No acked write can be lost: every ack was
        preceded by its group fsync, and the final commit is a
        belt-and-braces barrier for anything later. Returns the number
        of batches dispatched during the drain.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained_from = self.batches
        deadline = time.monotonic() + drain_timeout
        while self._queue is not None and (
            not self._queue.empty() or self._busy
        ):
            if time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.005)
        for server in self.cluster.coordinator.servers.values():
            wal = getattr(server.file, "wal", None)
            if (
                wal is not None
                and not server.down
                and wal.store.exists(wal.name)  # never-written shard: no segment yet
            ):
                wal.commit()
        drained = self.batches - drained_from
        await self.stop()
        return drained

    def _drop(self, conn: _Conn) -> None:
        conn.alive = False
        self._conns.discard(conn)
        try:
            conn.writer.close()
        except Exception:  # repro-lint: disable=TH002 -- teardown of a possibly half-dead socket must never raise
            pass

    # ------------------------------------------------------------------
    # Per-connection reader
    # ------------------------------------------------------------------
    async def _on_conn(self, reader, writer) -> None:
        conn = _Conn(reader, writer)
        self._conns.add(conn)
        try:
            while True:
                kind, corr_id, payload = await read_frame(
                    reader, self.max_frame
                )
                # The bounded put is the backpressure point: a slow
                # dispatcher blocks this reader, and the kernel socket
                # buffer then pushes back on the client.
                await self._queue.put((conn, kind, corr_id, payload))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client went away — normal teardown
        except ProtocolError:
            # Unknown version / oversized frame: the stream can no
            # longer be framed, so the only safe move is to hang up.
            pass
        finally:
            self._drop(conn)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            # _busy spans from dequeue to reply flush: the graceful
            # drain uses it to tell "queue empty" from "batch still in
            # flight" (set without an await in between, so it can never
            # miss the item just taken).
            self._busy = True
            batch = [item]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._process(batch)
            except asyncio.CancelledError:
                raise
            except Exception:  # repro-lint: disable=TH002 -- a dispatcher death would hang every pending client silently; dropping the connections surfaces it as MessageLostError instead
                for conn in list(self._conns):
                    self._drop(conn)
            finally:
                self._busy = False

    async def _process(self, batch: list) -> None:
        self.batches += 1
        pending: list[tuple[_Conn, bytes]] = []
        stack: Optional[ExitStack] = None
        try:
            for conn, kind, corr_id, payload in batch:
                if kind == FRAME_CONTROL:
                    # Controls are barriers: fsync the open group and
                    # release its acks before the control runs.
                    stack = self._close_group(stack)
                    await self._flush(pending)
                    pending = []
                    await self._handle_control(conn, corr_id, payload)
                    continue
                if kind != FRAME_REQUEST:
                    pending.append(self._raised(
                        conn, corr_id,
                        ProtocolError(f"unexpected frame kind {kind}"),
                    ))
                    continue
                if self._stall:
                    # Test hook: park the dispatcher mid-stream so that
                    # deadline and batching behaviour can be exercised
                    # deterministically over a real wire.
                    delay, self._stall = self._stall, 0.0
                    stack = self._close_group(stack)
                    await self._flush(pending)
                    pending = []
                    await asyncio.sleep(delay)
                try:
                    shard_id, op = self._decode_request(payload)
                except ProtocolError as exc:
                    pending.append(self._raised(conn, corr_id, exc))
                    continue
                if op.kind in MUTATING_OPS and stack is None:
                    stack = self._open_group()
                pending.append((conn, self._execute(shard_id, op, corr_id)))
        finally:
            # The fsync barrier: replies must not leave before it.
            stack = self._close_group(stack)
        await self._flush(pending)

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_request(payload: bytes) -> tuple[int, Op]:
        if len(payload) < 4:
            raise ProtocolError("request payload is missing its shard id")
        (shard_id,) = _U32.unpack_from(payload)
        return shard_id, decode_op(payload[4:])

    @staticmethod
    def _raised(conn: _Conn, corr_id: int, exc: BaseException):
        return conn, pack_frame(
            FRAME_RESPONSE, corr_id, b"\x01" + encode_value(exc)
        )

    def _execute(self, shard_id: int, op: Op, corr_id: int) -> bytes:
        """Run one op; the response frame (Reply or raised outcome)."""
        router = self.router
        try:
            server = router._lookup(shard_id, "request")
            router._count("request")
            reply = server.handle(op)
            router._count("reply")
            body = b"\x00" + encode_reply(reply)
        except Exception as exc:  # repro-lint: disable=TH002 -- the wire boundary: every failure must become a typed error frame, not a dead dispatcher
            body = b"\x01" + encode_value(exc)
        return pack_frame(FRAME_RESPONSE, corr_id, body)

    def _open_group(self) -> ExitStack:
        """Enter ``group_commit`` on every live durable shard file."""
        self.grouped_batches += 1
        stack = ExitStack()
        for server in self.cluster.coordinator.servers.values():
            group = getattr(server.file, "group_commit", None)
            if group is not None and not server.down:
                stack.enter_context(group())
        return stack

    @staticmethod
    def _close_group(stack: Optional[ExitStack]) -> None:
        if stack is not None:
            stack.close()
        return None

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    async def _flush(self, pending: list) -> None:
        for conn, frame in pending:
            if not conn.alive:
                continue
            try:
                conn.writer.write(frame)
                await conn.writer.drain()
            except (ConnectionError, OSError):
                self._drop(conn)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    async def _handle_control(self, conn, corr_id, payload) -> None:
        try:
            command = decode_value(payload)
            if not isinstance(command, dict):
                raise ProtocolError("control payload must be a dict")
            result = self._run_control(command)
            body = b"\x00" + encode_value(result)
        except Exception as exc:  # repro-lint: disable=TH002 -- same wire boundary as _execute: a bad control must answer, not kill dispatch
            body = b"\x01" + encode_value(exc)
        await self._flush([(conn, pack_frame(FRAME_CONTROL_REPLY, corr_id, body))])

    def _run_control(self, command: dict):
        cmd = command.get("cmd")
        coordinator = self.cluster.coordinator
        if cmd == "hello":
            self._next_client += 1
            return {
                "alphabet": self.cluster.alphabet.digits,
                "first_shard": min(coordinator.servers),
                "shards": len(coordinator.servers),
                "client_id": self._next_client,
            }
        if cmd == "crash":
            # Looked up through the router so failover aliases resolve:
            # after a promotion the dead id addresses the promoted
            # server, exactly as over the in-process fabric.
            server = self.router.servers.get(command["shard"])
            if server is None or server.down:
                return False
            server.crash()
            return True
        if cmd == "restart":
            server = self.router.servers.get(command["shard"])
            # A rebound id must never bounce the live promoted server
            # answering for it (mirrors FaultyRouter's restart guard).
            if server is None or not server.down:
                return False
            server.restart()
            return True
        if cmd == "restore_all":
            restored = 0
            backups = getattr(coordinator, "replicas", {})
            for server in [
                *coordinator.servers.values(),
                *backups.values(),
            ]:
                if server.down:
                    server.restart()
                    restored += 1
            return restored
        if cmd == "tick":
            # The chaos client's simulated clock, handed to the failure
            # detector; the reply tells the client which dead ids a
            # promoted server now answers for.
            coordinator.tick(float(command.get("now", 0.0)))
            return {
                "promoted": sorted(coordinator.promoted_ids),
                "down": sorted(
                    sid
                    for sid, server in coordinator.servers.items()
                    if server.down
                ),
            }
        if cmd == "replica_of":
            return coordinator.replica_of(command["shard"])
        if cmd == "failover_log":
            return [dict(entry) for entry in coordinator.failover_log]
        if cmd == "migrate_start":
            coordinator.start_migration(
                command["shard"], chunk_size=int(command.get("chunk", 64))
            )
            return True
        if cmd == "migrate_step":
            return coordinator.step_migration(command["shard"])
        if cmd == "migrate_finish":
            return coordinator.finish_migration(command["shard"])
        if cmd == "replication":
            return {
                "replicas": sorted(
                    backup.shard_id
                    for backup in getattr(coordinator, "replicas", {}).values()
                ),
                "promoted": sorted(coordinator.promoted_ids),
                "failovers": len(coordinator.failover_log),
                "migrations_done": coordinator.migrations_done,
                "migrating": sorted(coordinator.migrations),
            }
        if cmd == "total_records":
            return coordinator.total_records()
        if cmd == "duplicate_applies":
            return self.router.duplicate_applies()
        if cmd == "stall":
            self._stall = float(command["seconds"])
            return True
        if cmd == "stats":
            return {
                "shards": len(coordinator.servers),
                "records": coordinator.total_records(),
                "messages": self.router.messages,
                "forwards": self.router.forwards,
                "batches": self.batches,
                "grouped_batches": self.grouped_batches,
                "duplicate_applies": self.router.duplicate_applies(),
            }
        raise ProtocolError(f"unknown control command {cmd!r}")
