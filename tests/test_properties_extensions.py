"""Property-based tests for the extension subsystems.

Cursor traversal vs ordered items, overflow files vs a dict model,
multikey rectangle queries vs brute force, and the lock manager's
mutual-exclusion invariant under random request streams.
"""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SplitPolicy, THFile
from repro.concurrency import LockManager, LockMode
from repro.core.cursor import Cursor
from repro.core.overflow import OverflowTHFile
from repro.multikey import Interleaver, MultikeyTHFile

keys_st = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
key_lists = st.lists(keys_st, min_size=1, max_size=80, unique=True)

slow = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCursorProperties:
    @given(key_lists, st.sampled_from([None, "thcl", "compact"]))
    @slow
    def test_forward_traversal_equals_items(self, keys, which):
        policy = {
            None: None,
            "thcl": SplitPolicy.thcl(),
            "compact": SplitPolicy.thcl_ascending(0),
        }[which]
        f = THFile(bucket_capacity=3, policy=policy)
        for k in sorted(keys) if which == "compact" else keys:
            f.insert(k)
        cursor = Cursor(f)
        out = []
        if cursor.first():
            out.append(cursor.key())
            while cursor.next():
                out.append(cursor.key())
        assert out == sorted(keys)

    @given(key_lists, keys_st)
    @slow
    def test_seek_is_lower_bound(self, keys, probe):
        f = THFile(bucket_capacity=3)
        for k in keys:
            f.insert(k)
        cursor = Cursor(f)
        expected = sorted(k for k in keys if k >= probe)
        if expected:
            assert cursor.seek(probe)
            assert cursor.key() == expected[0]
        else:
            assert not cursor.seek(probe)

    @given(key_lists)
    @slow
    def test_backward_equals_reversed(self, keys):
        f = THFile(bucket_capacity=3)
        for k in keys:
            f.insert(k)
        cursor = Cursor(f)
        out = []
        if cursor.last():
            out.append(cursor.key())
            while cursor.prev():
                out.append(cursor.key())
        assert out == sorted(keys, reverse=True)


class TestOverflowProperties:
    @given(key_lists, st.data())
    @slow
    def test_dict_equivalence_with_deletes(self, keys, data):
        f = OverflowTHFile(bucket_capacity=3)
        model = {}
        for i, k in enumerate(keys):
            f.insert(k, i)
            model[k] = i
        victims = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        for k in victims:
            f.delete(k)
            del model[k]
        f.check()
        assert dict(f.items()) == model

    @given(key_lists)
    @slow
    def test_matches_plain_file_contents(self, keys):
        plain = THFile(bucket_capacity=4, policy=SplitPolicy(merge="none"))
        deferred = OverflowTHFile(bucket_capacity=4)
        for k in keys:
            plain.insert(k)
            deferred.insert(k)
        deferred.check()
        assert list(deferred.keys()) == list(plain.keys())
        # Deferral splits at most as often as plain splitting.
        assert deferred.stats.splits <= plain.stats.splits


class TestMultikeyProperties:
    pairs = st.lists(
        st.tuples(
            st.text(alphabet="abcd", min_size=1, max_size=3),
            st.text(alphabet="abcd", min_size=1, max_size=3),
        ),
        min_size=1,
        max_size=60,
        unique=True,
    )

    @given(pairs)
    @slow
    def test_compose_decompose_roundtrip(self, points):
        inter = Interleaver((3, 3))
        for p in points:
            assert inter.decompose(inter.compose(p)) == p

    @given(pairs)
    @slow
    def test_z_order_monotone_per_axis(self, points):
        inter = Interleaver((3, 3))
        composed = sorted(inter.compose(p) for p in points)
        assert composed == sorted(set(composed))  # unique points stay unique

    @given(pairs, st.data())
    @slow
    def test_rectangle_equals_bruteforce(self, points, data):
        f = MultikeyTHFile((3, 3), bucket_capacity=3)
        for p in points:
            f.insert(p)
        lo0 = data.draw(st.sampled_from("abcd"))
        hi0 = data.draw(st.sampled_from("abcd"))
        lo1 = data.draw(st.sampled_from("abcd"))
        hi1 = data.draw(st.sampled_from("abcd"))

        def le_bound(v, hi):  # trie prefix semantics: 'b?' <= 'b'
            return v[: len(hi)].ljust(len(hi), " ") <= hi

        expected = {
            p
            for p in points
            if p[0] >= lo0 and le_bound(p[0], hi0)
            and p[1] >= lo1 and le_bound(p[1], hi1)
        }
        got = {v for v, _ in f.rectangle((lo0, lo1), (hi0, hi1))}
        assert got == expected


class TestLockManagerProperties:
    requests = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # owner
            st.sampled_from(["a", "b", "c"]),       # resource
            st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
            st.booleans(),                            # release_all after?
        ),
        max_size=60,
    )

    @given(requests)
    @slow
    def test_mutual_exclusion_invariant(self, stream):
        manager = LockManager()
        for owner, resource, mode, release in stream:
            manager.try_acquire(owner, resource, mode)
            if release:
                manager.release_all(owner)
            # Invariant: an X holder is alone on its resource.
            for _res, held in manager._held.items():
                owners = {o for o, _ in held}
                exclusive = {o for o, m in held if m is LockMode.EXCLUSIVE}
                if exclusive:
                    assert len(owners) == 1

    @given(requests)
    @slow
    def test_release_all_clears_owner(self, stream):
        manager = LockManager()
        for owner, resource, mode, _ in stream:
            manager.try_acquire(owner, resource, mode)
        # Releases promote queued requests (possibly of already-released
        # owners), so sweep until quiescent.
        for _ in range(10):
            for owner in range(5):
                manager.release_all(owner)
        for held in manager._held.values():
            assert not held
