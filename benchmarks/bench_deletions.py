"""Sections 2.4 / 3.3 / 4.3: deletion behaviour.

The basic method merges only sibling leaves (4 of the example file's 10
couples; rotations roughly double that), so it cannot bound the load
from below. THCL's shared leaves merge or borrow across any boundary,
holding every bucket at b//2 - the B-tree guarantee.
"""

from conftest import once

from repro.analysis import deletions_table


def test_deletions(benchmark, report):
    rows = once(
        benchmark, lambda: deletions_table(count=5000, bucket_capacity=10)
    )
    report(
        "deletions",
        rows,
        "Deletions - basic sibling merging vs THCL guaranteed floor",
    )
    basic, rotating, thcl = rows
    assert thcl["min_bucket"] >= 5
    assert basic["min_bucket"] <= thcl["min_bucket"]
    assert thcl["a% after 75% deleted"] >= 50
    # Rotations recover much of the deleted space the basic method cannot.
    assert (
        rotating["a% after 75% deleted"] > basic["a% after 75% deleted"]
    )
