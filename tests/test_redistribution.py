"""Redistribution tests (Section 4.4 and Fig 9)."""

from repro import SplitPolicy, THFile


def sizes(f):
    return {a: len(f.store.peek(a)) for a in f.store.live_addresses()}


class TestSuccessorRedistribution:
    def test_fills_successor_instead_of_splitting(self):
        policy = SplitPolicy(
            nil_nodes=False,
            bounding_offset=1,
            redistribution="successor",
            merge="guaranteed",
        )
        f = THFile(bucket_capacity=4, policy=policy)
        # Create two buckets, leave room in the right one.
        for k in ("aa", "ab", "ba", "bb", "bc"):
            f.insert(k)
        assert f.bucket_count() == 2
        # Fill the left bucket to overflow: with room on the right, the
        # overflow redistributes instead of appending bucket 2.
        for k in ("ac", "ad", "ae"):
            f.insert(k)
        assert f.bucket_count() == 2
        assert f.stats.redistributions >= 1
        f.check()

    def test_splits_when_successor_full(self):
        policy = SplitPolicy(
            nil_nodes=False,
            bounding_offset=1,
            redistribution="successor",
            merge="guaranteed",
        )
        f = THFile(bucket_capacity=4, policy=policy)
        for k in ("aa", "ab", "ba", "bb", "bc"):
            f.insert(k)
        # Fill the successor completely, then overflow the left bucket.
        f.insert("bd")
        before = f.bucket_count()
        for k in ("ac", "ad", "ae"):
            f.insert(k)
        assert f.bucket_count() > before  # forced to split after all
        f.check()

    def test_no_successor_for_rightmost_bucket(self):
        policy = SplitPolicy(
            nil_nodes=False,
            bounding_offset=1,
            redistribution="successor",
            merge="guaranteed",
        )
        f = THFile(bucket_capacity=2, policy=policy)
        for k in ("aa", "bb", "cc"):  # ascending: rightmost overflows
            f.insert(k)
        assert f.stats.splits >= 1  # had to split, no successor exists
        f.check()


class TestPredecessorRedistribution:
    def test_spills_low_keys_to_predecessor(self):
        policy = SplitPolicy(
            nil_nodes=False,
            bounding_offset=1,
            redistribution="predecessor",
            merge="guaranteed",
        )
        f = THFile(bucket_capacity=4, policy=policy)
        for k in ("aa", "ab", "ba", "bb", "bc"):
            f.insert(k)
        assert f.bucket_count() == 2
        # Overflow the right bucket: low keys move down to the left one.
        for k in ("bd", "be", "bf"):
            f.insert(k)
        assert f.stats.redistributions >= 1
        assert f.bucket_count() == 2
        f.check()

    def test_descending_insertions_with_predecessor_off(self):
        # Predecessor redistribution never helps descending loads (the
        # leftmost bucket has no predecessor), so splits still happen.
        policy = SplitPolicy(
            nil_nodes=False,
            bounding_offset=1,
            redistribution="predecessor",
            merge="guaranteed",
        )
        f = THFile(bucket_capacity=4, policy=policy)
        for k in reversed(["aa", "ab", "ac", "ad", "ae", "af"]):
            f.insert(k)
        assert f.stats.splits >= 1
        f.check()


class TestLoadEffects:
    def test_random_load_exceeds_plain_thcl(self, small_keys):
        plain = THFile(10, SplitPolicy.thcl_guaranteed_half())
        redis = THFile(10, SplitPolicy.thcl_redistributing())
        for k in small_keys:
            plain.insert(k)
            redis.insert(k)
        plain.check()
        redis.check()
        assert redis.load_factor() > plain.load_factor()
        assert redis.load_factor() > 0.75  # toward the ~87% of §4.5

    def test_unexpected_ascending_reaches_high_load(self, sorted_keys):
        f = THFile(10, SplitPolicy.thcl_redistributing())
        for k in sorted_keys:
            f.insert(k)
        f.check()
        assert f.load_factor() > 0.9  # §4.5: approaches 100%

    def test_compact_target_packs_tighter_on_ordered(self, sorted_keys):
        even = THFile(10, SplitPolicy.thcl_redistributing("even"))
        compact = THFile(10, SplitPolicy.thcl_redistributing("compact"))
        for k in sorted_keys:
            even.insert(k)
            compact.insert(k)
        compact.check()
        assert compact.load_factor() >= even.load_factor() - 0.02

    def test_correctness_under_heavy_redistribution(self, generator):
        keys = generator.uniform(400)
        f = THFile(4, SplitPolicy.thcl_redistributing())
        for i, k in enumerate(keys):
            f.insert(k, i)
            if i % 50 == 0:
                f.check()
        f.check()
        for i, k in enumerate(keys):
            assert f.get(k) == i


class TestTrieShrink:
    def test_collapse_policy_removes_equal_leaf_nodes(self, sorted_keys):
        keep = THFile(
            6, SplitPolicy.thcl_redistributing("compact")
        )
        shrink = THFile(
            6,
            SplitPolicy.thcl_redistributing("compact").with_(
                collapse_equal_leaves=True
            ),
        )
        for k in sorted_keys:
            keep.insert(k)
            shrink.insert(k)
        keep.check()
        shrink.check()
        assert shrink.trie_size() <= keep.trie_size()
        # Mappings agree regardless.
        assert list(keep.keys()) == list(shrink.keys())

    def test_redistribution_costs_extra_accesses(self, sorted_keys):
        plain = THFile(10, SplitPolicy.thcl_guaranteed_half())
        redis = THFile(10, SplitPolicy.thcl_redistributing())
        for k in sorted_keys:
            plain.insert(k)
            redis.insert(k)
        # The neighbour probe reads cost something (paper: "marginal").
        assert redis.store.disk.stats.reads >= plain.store.disk.stats.reads
