"""Unit tests for the observability subsystem (:mod:`repro.obs`)."""

import io
import json

import pytest

from repro import BPlusTree, MLTHFile, SplitPolicy, THFile
from repro.analysis.metrics import file_metrics
from repro.obs import (
    TRACER,
    Counter,
    JsonlTraceWriter,
    MetricsRegistry,
    metrics_json,
    prometheus_text,
    summary_rows,
    trace,
)
from repro.obs.metrics import Histogram
from repro.storage.buckets import BucketStore


class Collect:
    """A sink that keeps every event (test double)."""

    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def named(self, name):
        return [e for e in self.events if e.name == name]


@pytest.fixture(autouse=True)
def _tracer_is_clean():
    """Every test starts and must end with the global tracer disabled."""
    assert not TRACER.enabled
    yield
    if TRACER.enabled:  # pragma: no cover - safety net
        TRACER.deactivate()
        raise AssertionError("test leaked an active tracer")


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("x", {"a": 1})
        c.inc()
        assert reg.counter("x", {"a": 1}) is c
        assert reg.counter("x", {"a": 2}) is not c
        assert c.value == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc(-2)
        assert g.value == 3

    def test_histogram_buckets_and_mean(self):
        h = Histogram("h", (), bounds=[1, 2, 4])
        for v in (0, 1, 2, 3, 100):
            h.observe(v)
        assert h.total == 5
        assert h.counts == [2, 1, 1, 1]  # <=1, <=2, <=4, +Inf
        assert h.mean == pytest.approx(106 / 5)

    def test_histogram_percentiles_monotonic(self):
        h = Histogram("h", (), bounds=[1, 2, 4, 8, 16])
        for v in range(1, 17):
            h.observe(v)
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert p50 <= p90 <= p99 <= 16
        assert h.percentile(100) == 16

    def test_histogram_inf_bucket_reports_top_bound(self):
        h = Histogram("h", (), bounds=[1, 2])
        h.observe(50)
        assert h.percentile(50) == 2

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", {"k": "v"}).inc(3)
        reg.gauge("g").set(0.5)
        reg.histogram("h", bounds=[1, 2]).observe(1)
        snap = reg.snapshot()
        assert snap["counters"] == {'c{k="v"}': 3}
        assert snap["gauges"] == {"g": 0.5}
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1 and hist["buckets"]["+Inf"] == 0

    def test_derived_buffer_hit_rate(self):
        reg = MetricsRegistry()
        reg.counter("repro_buffer_requests_total", {"result": "hit"}).inc(3)
        reg.counter("repro_buffer_requests_total", {"result": "miss"}).inc(1)
        assert reg.snapshot()["derived"]["buffer_hit_rate"] == 0.75


# ----------------------------------------------------------------------
# Tracer and spans
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_by_default(self):
        assert not TRACER.enabled

    def test_double_activate_raises(self):
        TRACER.activate([])
        try:
            with pytest.raises(RuntimeError):
                TRACER.activate([])
        finally:
            TRACER.deactivate()

    def test_events_have_increasing_seq(self):
        col = Collect()
        with trace(sinks=[col]) as tr:
            tr.emit("split")
            tr.emit("merge")
        seqs = [e.seq for e in col.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_nested_spans_roll_up(self):
        col = Collect()
        with trace(sinks=[col]) as tr:
            with tr.span("insert"):
                tr.record_access(False, "buckets", 0.0)
                with tr.span("search"):
                    tr.record_access(True, "buckets", 0.0)
        ends = col.named("span_end")
        inner = next(e for e in ends if e.fields["op"] == "search")
        outer = next(e for e in ends if e.fields["op"] == "insert")
        assert inner.fields["parent"] == outer.fields["span_id"]
        assert inner.fields["accesses"] == 1
        # The parent's totals include the child's.
        assert outer.fields["reads"] == 1 and outer.fields["writes"] == 1

    def test_unattributed_accesses_counted(self):
        with trace() as tr:
            tr.record_access(False, "buckets", 0.0)
            tr.record_access(True, "pages", 0.0)
            assert tr.unattributed_reads == 1
            assert tr.unattributed_writes == 1

    def test_trace_end_carries_unattributed(self):
        col = Collect()
        with trace(sinks=[col]) as tr:
            tr.record_access(True, "buckets", 0.0)
        (end,) = col.named("trace_end")
        assert end.fields["unattributed_writes"] == 1


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class TestMetricsRecorder:
    def test_root_spans_only_in_histograms(self):
        reg = MetricsRegistry()
        with trace(registry=reg) as tr:
            with tr.span("insert"):
                with tr.span("insert"):
                    tr.record_access(False, "buckets", 0.0)
        hist = reg.histogram("repro_span_accesses", {"op": "insert"})
        assert hist.total == 1  # the nested span is not double-counted

    def test_put_counts_one_operation(self):
        reg = MetricsRegistry()
        t = BPlusTree(leaf_capacity=4)
        with trace(registry=reg):
            t.put("aa", 1)  # put -> insert nests two spans
        hist = reg.histogram("repro_span_accesses", {"op": "insert"})
        assert hist.total == 1

    def test_disk_counters_per_device(self):
        reg = MetricsRegistry()
        with trace(registry=reg):
            f = MLTHFile(bucket_capacity=4, page_capacity=8)
            for k in ("aa", "ab", "ba", "bb", "ca", "cb"):
                f.insert(k)
            f.get("aa")
        buckets = reg.counter(
            "repro_disk_accesses_total", {"device": "buckets", "kind": "read"}
        )
        pages = reg.counter(
            "repro_disk_accesses_total", {"device": "pages", "kind": "read"}
        )
        assert buckets.value == f.store.disk.stats.reads
        assert pages.value == f.page_disk.stats.reads

    def test_split_fanout_observed(self):
        reg = MetricsRegistry()
        with trace(registry=reg):
            f = THFile(bucket_capacity=4)
            for k in ("aa", "ab", "ac", "ad", "ae"):
                f.insert(k)
        assert f.stats.splits == 1
        assert reg.histogram("repro_split_fanout").total == 1


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        with trace(registry=reg):
            f = THFile(bucket_capacity=4)
            for k in ("aa", "ab", "ac", "ad", "ae", "ba"):
                f.insert(k)
            f.get("aa")
        return reg

    def test_jsonl_writer_lines_parse(self):
        buf = io.StringIO()
        with trace(sinks=[JsonlTraceWriter(buf)]) as tr:
            with tr.span("insert"):
                tr.record_access(True, "buckets", 0.0)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [e["event"] for e in lines] == [
            "disk_write",
            "span_end",
            "trace_end",
        ]
        assert lines[0]["span"] == lines[1]["span_id"]

    def test_jsonl_writer_owns_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace(sinks=[JsonlTraceWriter(str(path))]) as tr:
            tr.emit("split")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "split"

    def test_prometheus_text_format(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_events_total counter" in text
        assert "# TYPE repro_span_accesses histogram" in text
        assert 'repro_span_accesses_count{op="insert"}' in text
        # cumulative bucket counts are monotone
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('repro_span_accesses_bucket{le=')
        ]
        assert buckets == sorted(buckets)

    def test_metrics_json_round_trips(self):
        snap = json.loads(metrics_json(self._registry()))
        assert any(
            k.startswith("repro_span_accesses") for k in snap["histograms"]
        )
        assert "derived" in snap

    def test_summary_rows_feed_format_table(self):
        from repro.analysis import format_table

        rows = summary_rows(self._registry())
        text = format_table(rows, title="obs")
        assert "repro_events_total" in text
        assert "p99" in text


# ----------------------------------------------------------------------
# Instrumentation behaviour
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_disabled_tracer_emits_nothing(self):
        col = Collect()
        f = THFile(bucket_capacity=4)
        for k in ("aa", "ab", "ac", "ad", "ae"):
            f.insert(k)
        assert col.events == []  # never attached; nothing to receive

    def test_buffer_hit_and_miss_events(self):
        col = Collect()
        store = BucketStore(buffer_capacity=4)
        f = THFile(bucket_capacity=4, store=store)
        f.insert("aa")
        with trace(sinks=[col]):
            f.get("aa")  # cached by the insert's write-through
            store.pool.invalidate()
            f.get("aa")  # now a miss
        assert len(col.named("buffer_hit")) == 1
        assert len(col.named("buffer_miss")) == 1

    def test_structural_events_on_th_workload(self):
        col = Collect()
        with trace(sinks=[col]):
            f = THFile(
                bucket_capacity=4, policy=SplitPolicy.thcl_guaranteed_half()
            )
            keys = [a + b for a in "abcdefgh" for b in "abcd"]
            for k in keys:
                f.insert(k)
            for k in keys[:24]:
                f.delete(k)
        assert len(col.named("split")) == f.stats.splits
        assert len(col.named("merge")) == f.stats.merges
        assert len(col.named("rebalance")) == f.stats.borrows

    def test_page_split_events_on_mlth(self):
        col = Collect()
        with trace(sinks=[col]):
            f = MLTHFile(bucket_capacity=2, page_capacity=4)
            keys = [a + b for a in "abcdefghij" for b in "ab"]
            for k in keys:
                f.insert(k)
        assert f.levels() >= 2
        assert col.named("page_split")

    def test_overflow_events(self):
        from repro import OverflowTHFile

        col = Collect()
        with trace(sinks=[col]):
            f = OverflowTHFile(bucket_capacity=4)
            for k in ("aa", "ab", "ac", "ad", "ae", "af"):
                f.insert(k)
        assert col.named("overflow")
        assert f.chain_fraction() > 0

    def test_range_span_wraps_iteration(self):
        col = Collect()
        f = THFile(bucket_capacity=4)
        for k in ("aa", "ab", "ba", "bb", "ca"):
            f.insert(k)
        with trace(sinks=[col]):
            assert len(list(f.range_items("aa", "bb"))) == 4
        ends = [e for e in col.named("span_end") if e.fields["op"] == "range"]
        assert len(ends) == 1
        assert ends[0].fields["reads"] >= 1


# ----------------------------------------------------------------------
# file_metrics satellite fixes
# ----------------------------------------------------------------------
class TestFileMetricsKeys:
    def test_btree_keys_come_from_separator_branch(self, small_keys):
        t = BPlusTree(leaf_capacity=8)
        for k in small_keys:
            t.insert(k)
        m = file_metrics(t)
        # The B+-tree branch owns these keys; the generic branches must
        # not have overwritten (or pre-empted) them.
        assert m["buckets"] == t.leaf_count()
        assert m["index_bytes"] == t.index_bytes()

    def test_th_keys_come_from_trie_branch(self, small_keys):
        from repro.storage.layout import Layout

        f = THFile(bucket_capacity=8)
        for k in small_keys:
            f.insert(k)
        m = file_metrics(f)
        assert m["buckets"] == f.bucket_count()
        assert m["index_bytes"] == Layout().trie_bytes(f.trie_size())

    def test_buffer_hit_rate_surfaced(self):
        store = BucketStore(buffer_capacity=8)
        f = THFile(bucket_capacity=4, store=store)
        for k in ("aa", "ab", "ba", "bb"):
            f.insert(k)
        for _ in range(3):
            f.get("aa")
        m = file_metrics(f)
        assert m["buffer_hit_rate"] == store.pool.hit_rate
        assert m["buffer_hit_rate"] > 0

    def test_buffer_hit_rate_zero_without_caching(self, small_keys):
        f = THFile(bucket_capacity=8)
        for k in small_keys[:50]:
            f.insert(k)
        assert file_metrics(f)["buffer_hit_rate"] == 0.0

    def test_mlth_pools_counted(self):
        f = MLTHFile(bucket_capacity=4, page_capacity=8)
        for k in ("aa", "ab", "ba", "bb", "ca", "cb"):
            f.insert(k)
        f.get("aa")
        m = file_metrics(f)
        # The pinned root page serves reads from core: hits accrue.
        assert 0.0 <= m["buffer_hit_rate"] <= 1.0


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliObservability:
    def test_run_with_metrics_and_trace(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "m.json"
        jsonl = tmp_path / "t.jsonl"
        prom = tmp_path / "p.prom"
        code = main(
            [
                "run",
                "sec31",
                "--count",
                "200",
                "--metrics",
                str(metrics),
                "--trace",
                str(jsonl),
                "--prometheus",
                str(prom),
            ]
        )
        assert code == 0
        assert not TRACER.enabled
        snap = json.loads(metrics.read_text())
        assert any(
            k.startswith("repro_span_accesses") for k in snap["histograms"]
        )
        assert "buffer_hit_rate" in snap["derived"]
        events = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert events[-1]["event"] == "trace_end"
        assert "# TYPE" in prom.read_text()
        # Reconciliation: root spans + unattributed == disk events.
        spans = sum(
            e["accesses"]
            for e in events
            if e["event"] == "span_end" and e["parent"] is None
        )
        unattributed = (
            events[-1]["unattributed_reads"] + events[-1]["unattributed_writes"]
        )
        disk = sum(1 for e in events if e["event"] in ("disk_read", "disk_write"))
        assert spans + unattributed == disk

    def test_run_without_flags_untouched(self, capsys):
        from repro.cli import main

        assert main(["run", "capacity"]) == 0
        assert not TRACER.enabled


def test_counter_repr_smoke():
    c = Counter("x", ())
    c.inc(2)
    assert c.value == 2
