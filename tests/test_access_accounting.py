"""Pinning the disk-access contract of every operation.

The paper's performance claims are access counts, so the simulator's
accounting *is* the experiment instrument. These tests pin the cost of
each operation class exactly, so a refactor that silently changes the
metering breaks loudly.
"""

from repro import SplitPolicy, THFile
from repro.analysis.metrics import access_cost


def fresh(b=4, policy=None):
    return THFile(bucket_capacity=b, policy=policy)


class TestInsertCosts:
    def test_plain_insert_is_read_plus_write(self):
        f = fresh()
        f.insert("aa")
        cost = access_cost(f, lambda: f.insert("bb"))
        assert cost == {"reads": 1, "writes": 1, "accesses": 2}

    def test_split_insert_is_read_plus_two_writes(self):
        f = fresh()
        for k in ("aa", "ab", "ac", "ad"):
            f.insert(k)
        cost = access_cost(f, lambda: f.insert("ae"))
        assert cost == {"reads": 1, "writes": 2, "accesses": 3}

    def test_nil_allocation_is_one_write(self):
        f = fresh(policy=SplitPolicy(split_position=-1))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k)
        assert f.trie.search("ota").bucket is None
        cost = access_cost(f, lambda: f.insert("ota"))
        assert cost == {"reads": 0, "writes": 1, "accesses": 1}

    def test_thcl_split_cost_equals_basic(self):
        f = fresh(policy=SplitPolicy.thcl())
        for k in ("aa", "ab", "ac", "ad"):
            f.insert(k)
        cost = access_cost(f, lambda: f.insert("ae"))
        assert cost == {"reads": 1, "writes": 2, "accesses": 3}

    def test_redistribution_adds_neighbour_probe(self):
        policy = SplitPolicy.thcl_redistributing()
        f = fresh(policy=policy)
        for k in ("aa", "ab", "ba", "bb", "bc", "ac"):
            f.insert(k)
        # The left bucket is full with room on the right: the paper's
        # "additional accesses ... marginal": 1 extra read (the probe).
        assert len(f.store.peek(0)) == 4
        cost = access_cost(f, lambda: f.insert("ad"))
        assert cost["reads"] == 2      # own bucket + successor probe
        assert cost["writes"] == 2     # both buckets rewritten


class TestLookupCosts:
    def test_search_hit_one_read(self, small_keys):
        f = fresh(b=8)
        for k in small_keys:
            f.insert(k)
        for k in small_keys[:20]:
            assert access_cost(f, lambda k=k: f.get(k)) == {
                "reads": 1,
                "writes": 0,
                "accesses": 1,
            }

    def test_search_miss_one_read(self, small_keys):
        f = fresh(b=8)
        for k in small_keys:
            f.insert(k)
        cost = access_cost(f, lambda: f.contains("zzzzzzzq"))
        assert cost["reads"] == 1 and cost["writes"] == 0

    def test_search_through_nil_zero_reads(self):
        f = fresh(policy=SplitPolicy(split_position=-1))
        for k in ("oaaa", "obbb", "osza", "oszc", "oszh"):
            f.insert(k)
        cost = access_cost(f, lambda: f.contains("ota"))
        assert cost == {"reads": 0, "writes": 0, "accesses": 0}

    def test_full_scan_reads_each_bucket_once(self, small_keys):
        f = fresh(b=8)
        for k in small_keys:
            f.insert(k)
        cost = access_cost(f, lambda: list(f.items()))
        assert cost["reads"] == f.bucket_count()


class TestDeleteCosts:
    def test_plain_delete_read_plus_write(self, small_keys):
        f = fresh(b=8, policy=SplitPolicy(merge="none"))
        for k in small_keys:
            f.insert(k)
        cost = access_cost(f, lambda: f.delete(small_keys[0]))
        assert cost == {"reads": 1, "writes": 1, "accesses": 2}

    def test_put_replace_read_plus_write(self, small_keys):
        f = fresh(b=8)
        for k in small_keys:
            f.insert(k)
        cost = access_cost(f, lambda: f.put(small_keys[0], "new"))
        assert cost == {"reads": 1, "writes": 1, "accesses": 2}


class TestCounterConsistency:
    def test_session_audit(self, generator):
        # Over a whole session, reads and writes stay coherent with the
        # operation counts: every insert costs >= 2 accesses (except nil
        # allocations at 1), every search exactly 1 read.
        keys = generator.uniform(500)
        f = fresh(b=8)
        for k in keys:
            f.insert(k)
        stats = f.store.disk.stats
        plain_inserts = f.stats.inserts - f.stats.splits - f.stats.nil_allocations
        expected_writes = (
            plain_inserts + 2 * f.stats.splits + f.stats.nil_allocations
        )
        assert stats.writes == expected_writes
        assert stats.reads == f.stats.inserts - f.stats.nil_allocations