"""One TH* shard server: a trie-hashing file plus forwarding logic.

A server owns one contiguous region of the key space (one gap of the
coordinator's authoritative partition) and stores exactly the records
whose keys fall in it, in a single-node :class:`~repro.core.file.THFile`
— or a crash-safe :class:`~repro.storage.recovery.DurableFile` wrapping
one. Servers never trust client routing: an operation addressed to the
wrong shard is forwarded to its owner through the router (one hop — the
coordinator's partition is authoritative), and every reply carries the
IAM entries for the region the operation actually landed in, so the
addressing client's image converges.

Fault tolerance adds two responsibilities:

* **Lifecycle** — :meth:`ShardServer.crash` marks the server down (the
  router then refuses deliveries with
  :class:`~repro.distributed.errors.ServerDownError`) and, for a
  durable shard, loses the stable store's volatile state exactly like a
  process kill. :meth:`ShardServer.restart` runs the full WAL +
  checkpoint recovery path and rejoins the cluster. A non-durable shard
  keeps its in-memory file across the outage — that models a process
  pause or network partition, not data loss.

* **Exactly-once retries** — a mutating op stamped with a request id is
  checked against the shard's dedup window before executing; a hit
  short-circuits to the recorded result (the op already applied on an
  earlier delivery whose reply was lost). For durable shards the window
  lives inside the :class:`~repro.storage.recovery.DurableFile` so it
  rides the WAL and checkpoints across crashes.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Optional

from ..core.errors import TrieHashingError
from ..core.keys import prefix_le
from ..core.range_query import scan as local_scan
from ..obs.flight import FLIGHT
from ..obs.tracer import TRACER, TraceContext
from ..storage.dedup import DedupWindow
from ..storage.recovery import DurableFile
from ..storage.wal import REC_DELETE, REC_INSERT, REC_PUT
from .errors import ProtocolError, ReplicaStaleError
from .messages import (
    BATCH_OPS,
    CONTAINS,
    DELETE,
    GET,
    GET_MANY,
    INSERT,
    MUTATING_OPS,
    POINT_OPS,
    PUT,
    REPLICATE,
    RESYNC,
    SCAN,
    Op,
    Reply,
    rid_str,
)
from .replication import ReplicaState, apply_records, wire_records

__all__ = ["ShardServer"]


class ShardServer:
    """A single simulated server of the distributed file."""

    def __init__(self, shard_id: int, file, coordinator, router, role: str = "primary"):
        self.shard_id = shard_id
        self.file = file
        self.coordinator = coordinator
        self.router = router
        self.registry = coordinator.registry
        self.down = False
        self._local_dedup: Optional[DedupWindow] = None
        #: ``"primary"`` serves clients; ``"backup"`` only accepts the
        #: shipping legs (and read-replica scans) until promoted.
        self.role = role
        #: Primary side of a replicated pair (None when unreplicated).
        self.replicator = None
        #: Backup side: position in the primary's shipping stream.
        self.replica_state: Optional[ReplicaState] = None
        #: Backup side: the primary shard id this server shadows.
        self.replica_of: Optional[int] = None
        #: Commit-time subscribers beyond replication (migration
        #: catch-up buffers); each receives shipped-form record batches.
        self.taps: list = []
        router.register(self)

    # ------------------------------------------------------------------
    # Storage access (THFile and DurableFile duck-type alike)
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Any:
        """The underlying THFile (unwraps a durable session)."""
        inner = getattr(self.file, "file", None)
        return inner if inner is not None else self.file

    @property
    def dedup(self) -> DedupWindow:
        """This shard's request-dedup window.

        A durable file owns its window (it must survive crashes with the
        data it guards); a plain in-memory shard keeps a local one.
        """
        window = getattr(self.file, "dedup", None)
        if window is not None:
            return window
        if self._local_dedup is None:
            self._local_dedup = DedupWindow()
        return self._local_dedup

    def __len__(self) -> int:
        return len(self.file)

    def items(self) -> list[tuple[str, object]]:
        """This shard's records in key order (a materialized snapshot)."""
        return list(self.file.items())

    def replace_file(self, file: Any) -> None:
        """Swap in a rebuilt file (the scale-out record move)."""
        self.file = file
        self._local_dedup = None
        self.wire_replication()

    # ------------------------------------------------------------------
    # Replication feed
    # ------------------------------------------------------------------
    def wire_replication(self) -> None:
        """(Re-)attach the WAL commit tap when anyone is listening.

        Durable files rotate their WAL at checkpoints in place (the
        writer object survives), but restarts and split rebuilds mint a
        *new* writer — this must run after every file swap. A no-op
        when nothing subscribes, so unreplicated clusters pay nothing.
        """
        if self.replicator is None and not self.taps:
            return
        wal = getattr(self.file, "wal", None)
        if wal is not None and self._on_wal_commit not in wal.taps:
            wal.taps.append(self._on_wal_commit)

    def _on_wal_commit(self, wal_records) -> None:
        self._publish(wire_records(wal_records))

    def _publish(self, recs: list) -> None:
        """Fan one committed record batch out to every subscriber.

        Durable shards feed this from the WAL tap (the batch is exactly
        what one fsync made durable); in-memory shards feed it directly
        after a successful apply. Migration buffers see the batch before
        the replicator ships it, so a cutover barrier never misses a
        record the backup already has.
        """
        if not recs:
            return
        for tap in list(self.taps):
            tap(recs)
        if self.replicator is not None:
            self.replicator.ship(recs)

    def promote(self) -> None:
        """Backup becomes primary — the failover cutover point."""
        self.role = "primary"
        self.replica_state = None
        self.replica_of = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill this server: refuse deliveries, lose volatile state."""
        if self.down:
            return
        self.down = True
        stable = getattr(self.file, "stable", None)
        if stable is not None:
            stable.lose_volatile()
        self.coordinator.mark_down(self.shard_id)
        self.registry.counter(
            "dist_server_crashes_total", {"shard": self.shard_id}
        ).inc()
        if TRACER.enabled:
            TRACER.emit(
                "server_crash", shard=self.shard_id, durable=stable is not None
            )
        # Black-box dump: the last window of events leading up to the
        # crash (a no-op unless a forensics directory is configured).
        FLIGHT.dump(f"server-crash-shard-{self.shard_id}")

    def restart(self) -> None:
        """Recover (durable shards replay WAL + checkpoints) and rejoin."""
        if not self.down:
            return
        stable = getattr(self.file, "stable", None)
        replayed = 0
        if stable is not None:
            # The WAL + checkpoint replay runs inside a server_restart
            # span, so the storage layer's recovery span (and its WAL
            # traffic) lands in the causal record of *this* shard's
            # outage rather than floating unattributed.
            span = (
                TRACER.span("server_restart", shard=self.shard_id)
                if TRACER.enabled
                else nullcontext()
            )
            with span:
                self.file = DurableFile.open(stable)
            if self.file.last_recovery is not None:
                replayed = self.file.last_recovery.replayed
            self.wire_replication()
        if self.role == "backup":
            # The shipping position is volatile by design: coming back
            # with unknown (epoch, seq) forces the primary to resync us.
            self.replica_state = None
        self.down = False
        self.coordinator.mark_up(self.shard_id)
        self.registry.counter(
            "dist_server_recoveries_total", {"shard": self.shard_id}
        ).inc()
        if TRACER.enabled:
            TRACER.emit("server_recover", shard=self.shard_id, replayed=replayed)

    # ------------------------------------------------------------------
    # Operation handling
    # ------------------------------------------------------------------
    def handle(self, op: Op) -> Reply:
        """Execute ``op`` if this server owns it, else forward it.

        With tracing on, the whole delivery runs inside a
        ``shard_<kind>`` span parented under the context the op carried
        in (the client's — or, on a forward, the previous server's —
        span), and the reply is stamped with the context of the span
        that actually executed the operation. Every redelivery of a
        duplicated or retried op opens its own span, so the causal tree
        shows each delivery separately while the rid ties them together.
        """
        self.registry.counter(
            "dist_server_ops_total", {"shard": self.shard_id, "op": op.kind}
        ).inc()
        if not TRACER.enabled:
            return self._dispatch(op)
        fields: dict[str, object] = {"shard": self.shard_id}
        rid = rid_str(op.rid)
        if rid is not None:
            fields["rid"] = rid
        with TRACER.span(
            "shard_" + op.kind, ctx=TraceContext.from_wire(op.ctx), **fields
        ):
            reply = self._dispatch(op)
            if reply.ctx is None:
                # First stamp wins: on a forward chain the inner
                # (owning) server already named itself as executor.
                current = TRACER.current_context()
                if current is not None:
                    reply.ctx = current.to_wire()
            return reply

    def _dispatch(self, op: Op) -> Reply:
        if op.kind == REPLICATE:
            return self._handle_replicate(op)
        if op.kind == RESYNC:
            return self._handle_resync(op)
        if self.role == "backup":
            if op.kind == SCAN:
                return self._handle_replica_scan(op)
            raise ProtocolError(
                f"backup shard {self.shard_id} cannot serve {op.kind!r}"
            )
        if op.kind == SCAN:
            return self._handle_scan(op)
        if op.kind in BATCH_OPS:
            return self._handle_batch(op)
        return self._handle_point(op)

    def _forward(self, owner: int, op: Op) -> Reply:
        """Send a misaddressed op to its owner, carrying *our* context.

        Re-stamping ``op.ctx`` parents the owning server's span under
        this forwarding hop, which is how a forward chain shows up as a
        chain in the causal tree instead of two siblings.
        """
        if TRACER.enabled:
            current = TRACER.current_context()
            if current is not None:
                op.ctx = current.to_wire()
        return self.router.forward(self.shard_id, owner, op)

    def _handle_point(self, op: Op) -> Reply:
        if op.kind not in POINT_OPS:
            # A malformed request is a protocol bug, not a storage error:
            # raise (typed) instead of smuggling it into Reply.error.
            raise ProtocolError(f"unknown point op kind {op.kind!r}")
        owner = self.coordinator.owner_of(op.key)
        if owner != self.shard_id:
            return self._forward(owner, op)
        if op.kind in MUTATING_OPS and op.rid is not None:
            hit, stored = self.dedup.lookup(op.rid)
            if hit:
                # The op already applied on a delivery whose reply was
                # lost; replay the recorded result instead of re-executing.
                self.registry.counter(
                    "dist_dedup_hits_total", {"shard": self.shard_id}
                ).inc()
                if TRACER.enabled:
                    TRACER.emit(
                        "dedup_hit", shard=self.shard_id, rid=rid_str(op.rid)
                    )
                return Reply(
                    value=stored,
                    iam=self.coordinator.iam_for_key(op.key),
                    owner=self.shard_id,
                    dedup=True,
                )
        error: Optional[Exception] = None
        value: object = None
        try:
            if op.kind == GET:
                value = self.file.get(op.key)
            elif op.kind == CONTAINS:
                value = self.file.contains(op.key)
            else:
                value = self._apply_mutation(op)
        except TrieHashingError as exc:
            error = exc
        if op.kind in MUTATING_OPS and error is None:
            self.router.note_apply(op.rid)
            # The op may have pushed this shard over its load policy;
            # scale out *before* building the IAM so the client learns
            # the fresh cut immediately.
            self.coordinator.maybe_split(self.shard_id)
        return Reply(
            value=value,
            error=error,
            iam=self.coordinator.iam_for_key(op.key),
            owner=self.coordinator.owner_of(op.key),
        )

    def _apply_mutation(self, op: Op):
        """Execute a mutating op and record its request id as applied.

        Durable files take the id themselves — it must reach the dedup
        window only *after* the WAL fsync, and it travels inside the
        logged record so recovery rebuilds the window. In-memory shards
        record into the server's local window directly.
        """
        if isinstance(self.file, DurableFile):
            if op.kind == INSERT:
                return self.file.insert(op.key, op.value, rid=op.rid)
            if op.kind == PUT:
                return self.file.put(op.key, op.value, rid=op.rid)
            return self.file.delete(op.key, rid=op.rid)
        if op.kind == INSERT:
            result = self.file.insert(op.key, op.value)
            rec_type = REC_INSERT
        elif op.kind == PUT:
            result = self.file.put(op.key, op.value)
            rec_type = REC_PUT
        else:
            result = self.file.delete(op.key)
            rec_type = REC_DELETE
        self.dedup.record(op.rid, result)
        # In-memory shards have no WAL tap; feed replication directly.
        self._publish(
            [[0, rec_type, op.key, op.value if op.kind != DELETE else None,
              list(op.rid) if op.rid is not None else None]]
        )
        return result

    def _batch_iam(self, keys) -> list:
        """IAM entries for every distinct region the batch touches.

        A batch leg teaches the client all the cuts it tripped over in
        one reply (a point op teaches exactly one), which is why the
        leftover re-batching loop converges in a single extra round.
        """
        entries = []
        seen: set[int] = set()
        model = self.coordinator.model
        for key in keys:
            gap, shard = model.locate(key)
            if gap not in seen:
                seen.add(gap)
                low, high = model.region(gap)
                entries.append((low, high, shard))
        return entries

    def _handle_batch(self, op: Op) -> Reply:
        """Serve the owned slice of a batch; hand the rest back.

        Batches are never forwarded: the shard serves exactly the keys
        the authoritative partition assigns to it and returns the
        *leftovers* in ``Reply.records`` together with IAM entries for
        every region the batch touched, so the client re-batches the
        remainder straight to the true owners. A retried ``put_many``
        leg short-circuits on the shard's dedup window exactly like a
        point mutation — shard splits copy the window to both halves,
        so the guarantee survives keys migrating between deliveries.
        """
        if op.kind == GET_MANY:
            keys = op.value
            owned = [k for k in keys if self.coordinator.owner_of(k) == self.shard_id]
            leftover = [k for k in keys if self.coordinator.owner_of(k) != self.shard_id]
            found = self.file.get_many(owned) if owned else {}
            if TRACER.enabled:
                TRACER.emit(
                    "batch_leg",
                    shard=self.shard_id,
                    op=op.kind,
                    served=len(owned),
                    leftover=len(leftover),
                )
            return Reply(
                value=found,
                records=leftover,
                iam=self._batch_iam(keys),
                owner=self.shard_id,
            )
        items = op.value
        owned = [
            (k, v) for k, v in items if self.coordinator.owner_of(k) == self.shard_id
        ]
        leftover = [
            (k, v) for k, v in items if self.coordinator.owner_of(k) != self.shard_id
        ]
        if op.rid is not None:
            hit, _stored = self.dedup.lookup(op.rid)
            if hit:
                # The owned slice already applied on an earlier delivery
                # (possibly on the shard this window was inherited from);
                # only the currently-unowned remainder goes back out.
                self.registry.counter(
                    "dist_dedup_hits_total", {"shard": self.shard_id}
                ).inc()
                if TRACER.enabled:
                    TRACER.emit(
                        "dedup_hit", shard=self.shard_id, rid=rid_str(op.rid)
                    )
                return Reply(
                    records=leftover,
                    iam=self._batch_iam([k for k, _ in items]),
                    owner=self.shard_id,
                    dedup=True,
                )
        error: Optional[Exception] = None
        if owned:
            try:
                if isinstance(self.file, DurableFile):
                    # The durable session records the id itself, after
                    # the batch's group fsync.
                    self.file.put_many(owned, rid=op.rid)
                else:
                    self.file.put_many(owned)
                    self.dedup.record(op.rid, None)
                    rid = list(op.rid) if op.rid is not None else None
                    self._publish(
                        [[0, REC_PUT, k, v, rid] for k, v in owned]
                    )
            except TrieHashingError as exc:
                error = exc
            if error is None:
                self.router.note_apply(op.rid)
                self.coordinator.maybe_split(self.shard_id)
        if TRACER.enabled:
            TRACER.emit(
                "batch_leg",
                shard=self.shard_id,
                op=op.kind,
                served=len(owned),
                leftover=len(leftover),
            )
        return Reply(
            error=error,
            records=leftover,
            iam=self._batch_iam([k for k, _ in items]),
            owner=self.shard_id,
        )

    def _handle_scan(self, op: Op) -> Reply:
        gap = self.coordinator.scan_gap(op)
        owner = self.coordinator.shard_of_gap(gap)
        if owner != self.shard_id:
            return self._forward(owner, op)
        records = list(local_scan(self.engine, op.low, op.high))
        low_b, high_b = self.coordinator.region_of_gap(gap)
        done = high_b is None or (
            op.high is not None
            and prefix_le(op.high, high_b, self.coordinator.alphabet)
        )
        if TRACER.enabled:
            TRACER.emit(
                "scan_leg", shard=self.shard_id, records=len(records)
            )
        return Reply(
            records=records,
            region_high=high_b,
            done=done,
            iam=[(low_b, high_b, self.shard_id)],
            owner=self.shard_id,
        )

    # ------------------------------------------------------------------
    # Replication (backup side)
    # ------------------------------------------------------------------
    def _replica_status(self) -> dict:
        state = self.replica_state
        if state is None:
            return {"resync": True, "epoch": -1, "applied": -1, "lsn": -1}
        return {
            "resync": False,
            "epoch": state.epoch,
            "applied": state.applied_seq,
            "lsn": state.last_lsn,
        }

    def _resync_request(self) -> Reply:
        """Tell the primary this backup needs repair, with its position."""
        state = self.replica_state
        status = self._replica_status()
        status["resync"] = True
        if state is not None:
            state.lag = max(state.lag, 1)
        return Reply(value=status, owner=self.shard_id)

    def _apply_shipped(self, recs: list) -> bool:
        """Replay one shipped batch; False when the copy has diverged."""
        try:
            apply_records(self.file, self.dedup, recs)
        except TrieHashingError:
            return False
        state = self.replica_state
        if state is not None:
            lsns = [rec[0] for rec in recs if rec[0]]
            if lsns:
                state.last_lsn = max(state.last_lsn, max(lsns))
        return True

    def _handle_replicate(self, op: Op) -> Reply:
        if self.role != "backup":
            raise ProtocolError(
                f"shard {self.shard_id} is not a backup (replicate refused)"
            )
        payload = op.value if isinstance(op.value, dict) else {}
        epoch = int(payload.get("epoch", -1))
        seq = int(payload.get("seq", -1))
        recs = payload.get("recs") or []
        state = self.replica_state
        if state is None or state.epoch != epoch:
            return self._resync_request()
        if payload.get("catchup"):
            # A segment catch-up slice: apply only what we don't have.
            recs = [rec for rec in recs if not rec[0] or rec[0] > state.last_lsn]
            if not self._apply_shipped(recs):
                return self._resync_request()
            state.applied_seq = seq
            state.lag = 0
            return Reply(value=self._replica_status(), owner=self.shard_id)
        if seq <= state.applied_seq:
            # A fabric duplicate or sender retry of a batch we already
            # hold — the sequence number absorbs it.
            self.registry.counter(
                "dist_replicate_dups_total", {"shard": self.shard_id}
            ).inc()
            return Reply(value=self._replica_status(), owner=self.shard_id)
        if seq > state.applied_seq + 1:
            # A gap: at least one ship was lost before this one.
            state.lag = seq - state.applied_seq
            return self._resync_request()
        if not self._apply_shipped(recs):
            return self._resync_request()
        state.applied_seq = seq
        state.lag = 0
        return Reply(value=self._replica_status(), owner=self.shard_id)

    def _handle_resync(self, op: Op) -> Reply:
        """Rebuild this backup from a full snapshot transfer."""
        if self.role != "backup":
            raise ProtocolError(
                f"shard {self.shard_id} is not a backup (resync refused)"
            )
        payload = op.value if isinstance(op.value, dict) else {}
        items = [(k, v) for k, v in payload.get("items") or []]
        rebuilt = self.coordinator.file_factory()
        if items:
            rebuilt.put_many(items)
        self.replace_file(rebuilt)
        window = DedupWindow.from_spec(payload.get("dedup") or [])
        self.dedup.merge(window)
        if isinstance(rebuilt, DurableFile):
            # The merged window arrived out-of-band (not through logged
            # records), so force it into a checkpoint header now — a
            # backup crash must not forget pre-snapshot request ids.
            rebuilt.checkpoint(full=True)
        self.replica_state = ReplicaState(
            epoch=int(payload.get("epoch", 0)),
            applied_seq=int(payload.get("seq", 0)),
            last_lsn=int(payload.get("lsn", 0)),
        )
        self.registry.counter(
            "dist_replica_rebuilds_total", {"shard": self.shard_id}
        ).inc()
        if TRACER.enabled:
            TRACER.emit(
                "replica_rebuild", shard=self.shard_id, records=len(items)
            )
        return Reply(value=self._replica_status(), owner=self.shard_id)

    def _handle_replica_scan(self, op: Op) -> Reply:
        """Serve a scan leg from this backup, within staleness bounds.

        Refuses with :class:`ReplicaStaleError` — deliberately
        non-retryable, the client falls straight back to the primary —
        whenever the copy is not provably fresh enough: no shipping
        state, a known lag beyond the bound, or a leg whose range the
        shadowed primary does not own (only the primary path forwards).
        """
        policy = getattr(self.coordinator, "replication", None)
        state = self.replica_state
        if state is None or policy is None or self.replica_of is None:
            raise ReplicaStaleError(
                f"replica {self.shard_id} has no shipping state"
            )
        if state.lag > policy.staleness_bound:
            raise ReplicaStaleError(
                f"replica {self.shard_id} lags {state.lag} batches "
                f"(bound {policy.staleness_bound})"
            )
        gap = self.coordinator.scan_gap(op)
        owner = self.coordinator.shard_of_gap(gap)
        if owner != self.replica_of:
            raise ReplicaStaleError(
                f"replica {self.shard_id} shadows shard {self.replica_of}, "
                f"not range owner {owner}"
            )
        records = list(local_scan(self.engine, op.low, op.high))
        low_b, high_b = self.coordinator.region_of_gap(gap)
        done = high_b is None or (
            op.high is not None
            and prefix_le(op.high, high_b, self.coordinator.alphabet)
        )
        self.registry.counter(
            "dist_replica_reads_total", {"shard": self.shard_id}
        ).inc()
        if TRACER.enabled:
            TRACER.emit(
                "replica_scan_leg", shard=self.shard_id, records=len(records)
            )
        # The IAM names the *primary*: replica routing is a client-side
        # choice, the authoritative partition never points at backups.
        return Reply(
            records=records,
            region_high=high_b,
            done=done,
            iam=[(low_b, high_b, self.replica_of)],
            owner=self.replica_of,
        )
