"""Fault-injection tests: storage errors surface cleanly and recovery
via trie reconstruction works."""

import pytest

from repro import StorageError, THFile
from repro.core.reconstruct import reconstruct_trie
from repro.storage.buckets import BucketStore
from repro.storage.faults import FaultyDisk


def faulty_file(keys, b=6):
    disk = FaultyDisk()
    f = THFile(bucket_capacity=b, store=BucketStore(disk))
    for k in keys:
        f.insert(k)
    return f, disk


class TestFaultyDisk:
    def test_fail_on_specific_access(self):
        disk = FaultyDisk()
        block = disk.allocate("x")
        disk.fail_on_access(2)
        disk.read(block)  # access 1: fine
        with pytest.raises(StorageError):
            disk.read(block)  # access 2: injected
        disk.read(block)  # access 3: fine again
        assert disk.faults_raised == 1

    def test_fail_block(self):
        disk = FaultyDisk()
        good = disk.allocate("a")
        bad = disk.allocate("b")
        disk.fail_block(bad)
        assert disk.read(good) == "a"
        with pytest.raises(StorageError):
            disk.read(bad)
        disk.heal()
        assert disk.read(bad) == "b"

    def test_fail_from_now_on(self):
        disk = FaultyDisk()
        block = disk.allocate("x")
        disk.read(block)
        disk.fail_from_now_on()
        with pytest.raises(StorageError):
            disk.read(block)
        with pytest.raises(StorageError):
            disk.write(block, "y")
        disk.heal()
        assert disk.read(block) == "x"  # failed write never landed

    def test_failed_write_preserves_payload(self):
        disk = FaultyDisk()
        block = disk.allocate("before")
        disk.fail_on_access(1)
        with pytest.raises(StorageError):
            disk.write(block, "after")
        assert disk.peek(block) == "before"


class TestFileUnderFaults:
    def test_search_error_propagates(self, generator):
        f, disk = faulty_file(generator.uniform(100))
        disk.fail_from_now_on()
        with pytest.raises(StorageError):
            f.get(generator.uniform(100)[0])
        disk.heal()
        assert f.contains(generator.uniform(100)[0])

    def test_insert_retries_after_heal(self, generator):
        keys = generator.uniform(100)
        f, disk = faulty_file(keys)
        disk.fail_from_now_on()
        with pytest.raises(StorageError):
            f.insert("zzzzzz")
        disk.heal()
        # The failed insert never reached a bucket; retry succeeds.
        if not f.contains("zzzzzz"):
            f.insert("zzzzzz")
        assert f.contains("zzzzzz")

    def test_crash_then_reconstruct(self, generator):
        keys = generator.uniform(300)
        f, disk = faulty_file(keys)
        # Lose the in-core trie (a crash) while the disk stays intact.
        f.trie = None
        f.trie = reconstruct_trie(f.store, f.alphabet)
        f.check()
        for k in keys[:50]:
            assert f.contains(k)

    def test_transient_read_fault_counts(self, generator):
        keys = generator.uniform(50)
        f, disk = faulty_file(keys)
        disk.fail_on_access(1)
        with pytest.raises(StorageError):
            f.get(keys[0])
        assert disk.faults_raised == 1
        assert f.get(keys[0]) is None  # next attempt fine
