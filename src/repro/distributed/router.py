"""The in-process implementation of the message fabric.

:class:`InProcessTransport` (kept importable under its historical name
``Router``) is the synchronous, same-process implementation of the
:class:`~repro.distributed.transport.Transport` seam. What it adds over
a function call is the *accounting* a distributed design is judged by —
messages per edge kind (client request, reply, server-to-server
forward) and per-shard-pair forward counts — surfaced both through a
:class:`~repro.obs.metrics.MetricsRegistry` and, when tracing is on,
as ``forward`` events on the :data:`~repro.obs.tracer.TRACER` bus.

Although no socket is involved, every delivery still crosses the wire
codec of :mod:`repro.distributed.codec`: the op is encoded and decoded
on its way in, the reply on its way out. That makes the in-process
fabric **byte-equivalent** to the real asyncio transport of
:mod:`repro.serving` — a message is a value, never a shared reference,
so a client mutating a ``get`` result (or a value it already sent)
cannot silently corrupt the shard's stored record, and anything that
is not wire-encodable fails identically in simulation and production.

Edge counts reflect messages **actually delivered**: a request is
counted once it reaches a live server, a reply only once the handler
returned one (a raising handler produced no reply, so none is counted),
and a forwarded op counts both the relayed reply from the owner back to
the forwarding server and the forwarding server's reply to the client.

This base transport is a perfect fabric — no losses, no delays, no
failures beyond an explicitly crashed server (which refuses connections
with :class:`~repro.distributed.errors.ServerDownError`). The
fault-injecting variant lives in :mod:`repro.distributed.faults`.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import TRACER
from .codec import roundtrip_op, roundtrip_reply
from .errors import ServerDownError, UnknownShardError
from .messages import Op, Reply

__all__ = ["Router", "InProcessTransport"]


class InProcessTransport:
    """Delivers operations to servers and counts every message."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.servers: dict[int, object] = {}
        self.messages = 0
        self.forwards = 0
        #: Audit trail: request id -> number of times it *applied*.
        #: Exactly-once holds iff every count is 1 (the chaos harness
        #: and the serving differential both assert this).
        self.apply_counts: dict[tuple[int, int], int] = {}
        #: Failure-detection hook: called with the fabric clock on every
        #: tick of a clock-bearing transport (``Cluster`` wires it to
        #: ``Coordinator.tick`` when replication is on). The perfect
        #: fabric has no clock, so it fires only from subclasses.
        self.on_tick = None

    def register(self, server: Any) -> None:
        """Attach a shard server under its id."""
        self.servers[server.shard_id] = server

    def rebind(self, dead: Any, promoted: Any) -> list[int]:
        """Repoint every id mapped to ``dead`` at ``promoted``.

        The routing half of failover: stale clients keep addressing the
        deposed primary's id, and the promoted server answers for it —
        its reply IAM then repoints their images at the new id. Every
        alias is remapped (a server that was itself promoted earlier may
        answer for several ids), and the dead object becomes
        unreachable, so no ``restart`` path can ever resurrect it.
        Returns the rebound ids.
        """
        rebound = [sid for sid, srv in self.servers.items() if srv is dead]
        for sid in rebound:
            self.servers[sid] = promoted
        return rebound

    def _count(self, edge: str) -> None:
        self.messages += 1
        self.registry.counter("dist_messages_total", {"edge": edge}).inc()

    def _lookup(self, shard_id: int, edge: str = "request"):
        """The live server for ``shard_id``; typed errors otherwise."""
        server = self.servers.get(shard_id)
        if server is None:
            raise UnknownShardError(f"no server has ever owned shard {shard_id}")
        if getattr(server, "down", False):
            raise ServerDownError(f"shard {shard_id} is down ({edge} refused)")
        return server

    # ------------------------------------------------------------------
    # Fault-tolerance hooks (the clock never moves on the perfect fabric)
    # ------------------------------------------------------------------
    def sleep(self, seconds: float) -> None:
        """A client backing off between retries (advances no clock here)."""

    def note_apply(self, rid: Optional[tuple[int, int]]) -> None:
        """A mutating op with request id ``rid`` actually applied."""
        if rid is not None:
            self.apply_counts[rid] = self.apply_counts.get(rid, 0) + 1

    def duplicate_applies(self) -> int:
        """Request ids that applied more than once (must stay 0)."""
        return sum(1 for count in self.apply_counts.values() if count > 1)

    # ------------------------------------------------------------------
    def client_send(
        self, shard_id: int, op: Op, timeout: Optional[float] = None
    ) -> Reply:
        """A client request to ``shard_id`` plus its reply.

        ``timeout`` is the client's per-op deadline; the perfect fabric
        has no delays, so it can never be exceeded here.
        """
        server = self._lookup(shard_id, "request")
        self._count("request")
        # The wire boundary: the server sees a decoded copy of the op,
        # the client a decoded copy of the reply. No references cross.
        reply = server.handle(roundtrip_op(op))
        self._count("reply")
        return roundtrip_reply(reply)

    def forward(self, source: int, target: int, op: Op) -> Reply:
        """A server-to-server forward of a misaddressed operation."""
        server = self._lookup(target, "forward")
        self._count("forward")
        self.forwards += 1
        self.registry.counter(
            "dist_forwards_total", {"src": source, "dst": target}
        ).inc()
        if TRACER.enabled:
            TRACER.emit("forward", src=source, dst=target, op=op.kind)
        reply = server.handle(roundtrip_op(op))
        # The owner's reply relayed back to the forwarding server is a
        # delivered message too — and crosses the codec like one.
        self._count("reply")
        reply = roundtrip_reply(reply)
        reply.forwards += 1
        return reply

    def replicate(self, source: int, target: int, op: Op) -> Reply:
        """A primary-to-backup shipping leg (never forwarded)."""
        server = self._lookup(target, "replicate")
        self._count("replicate")
        self.registry.counter(
            "dist_replicate_total", {"src": source, "dst": target}
        ).inc()
        if TRACER.enabled:
            TRACER.emit("replicate", src=source, dst=target, op=op.kind)
        reply = server.handle(roundtrip_op(op))
        self._count("reply")
        return roundtrip_reply(reply)


#: The historical name; existing code and tests use the two
#: interchangeably (``Cluster.router`` *is* an ``InProcessTransport``).
Router = InProcessTransport
