"""CI benchmark smoke run: small, fast, machine-readable snapshots.

Thin wrapper over the harness package (:mod:`repro.bench`): runs the
``core`` and ``distributed`` suites through
:func:`repro.bench.reproduce`, which writes a per-run artifact
directory (``manifest.json`` / ``metrics.jsonl`` / ``summary.json``)
and refreshes ``BENCH_core.json`` / ``BENCH_distributed.json`` in
``--out-dir``. Equivalent to::

    trie-hashing reproduce --suite core --suite distributed

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [--out-dir DIR] [--count N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import reproduce


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, default=Path("."))
    parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="override both suites' key counts (default: quick profile)",
    )
    parser.add_argument("--profile", choices=("quick", "full"), default="quick")
    args = parser.parse_args(argv)

    counts = None
    if args.count is not None:
        counts = {"core": args.count, "distributed": args.count}
    outcome = reproduce(
        profile=args.profile,
        out_root=args.out_dir / "runs",
        bench_dir=args.out_dir,
        suites=["core", "distributed"],
        counts=counts,
    )
    for name in ("core", "distributed"):
        print(json.dumps(outcome["results"][name], indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
