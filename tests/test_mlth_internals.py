"""Direct tests of MLTH internals: repoint walks, boundary insertion,
and the paged step-3.4 path."""

from repro import MLTHFile, SplitPolicy
from repro.workloads import KeyGenerator


def thcl_mlth(b=4, bp=6):
    return MLTHFile(
        bucket_capacity=b,
        page_capacity=bp,
        policy=SplitPolicy.thcl().with_(merge="none"),
    )


class TestInsertBoundaryPaged:
    def test_chain_insertion_spans_pages(self):
        f = thcl_mlth()
        # Force many boundaries so the file level splits into pages.
        keys = KeyGenerator(3).sorted_keys(200)
        for k in keys:
            f.insert(k)
        f.check()
        assert f.page_count() > 3  # multiple pages in play

    def test_paged_step_34(self):
        # A boundary that already exists triggers the no-new-cell path
        # across the page structure.
        f = thcl_mlth(b=4, bp=8)
        for k in ("caba", "cabb", "cabc", "cabd"):
            f.insert(k)
        cells_before = f.trie_size()
        f.insert("cabe")  # split: chain boundaries appear
        assert f.trie_size() > cells_before
        f.check()
        # Another split within the same chain region can reuse an
        # existing prefix boundary (k == 0 possible at model level).
        for k in ("cabf", "cabg", "cabh", "cabi", "cabj", "cabk"):
            f.insert(k)
        f.check()

    def test_repoint_crosses_page_borders(self):
        # Build a file whose bucket runs straddle page borders, then
        # force boundary insertions and verify global consistency.
        f = thcl_mlth(b=3, bp=4)
        keys = KeyGenerator(9).sorted_keys(300)
        for i, k in enumerate(keys):
            f.insert(k)
            if i % 25 == 0:
                f.check()
        f.check()
        model = f.flat_model()
        # THCL invariant globally: no nil children, contiguous runs.
        assert all(c is not None for c in model.children)
        seen = set()
        previous = None
        for child in model.children:
            if child != previous:
                assert child not in seen
                seen.add(child)
            previous = child


class TestGuaranteedInternals:
    def test_borrow_over_page_border(self):
        f = MLTHFile(
            bucket_capacity=4, page_capacity=4, policy=SplitPolicy.thcl()
        )
        keys = KeyGenerator(11).sorted_keys(120)
        for k in keys:
            f.insert(k)
        f.check()
        # Ascending deletions churn the leftmost buckets repeatedly;
        # merges/borrows must stay consistent across page borders.
        for i, k in enumerate(keys[:100]):
            f.delete(k)
            if i % 10 == 0:
                f.check()
        f.check()
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        if len(sizes) > 1:
            assert min(sizes) >= 2

    def test_merge_repoint_skips_own_run(self):
        f = MLTHFile(
            bucket_capacity=4, page_capacity=6, policy=SplitPolicy.thcl()
        )
        keys = KeyGenerator(12).sorted_keys(80)
        for k in keys:
            f.insert(k)
        before = f.bucket_count()
        for k in keys[:60]:
            f.delete(k)
        f.check()
        assert f.bucket_count() < before
        assert f.stats.merges + f.stats.borrows > 0

    def test_stats_track_paged_operations(self):
        f = thcl_mlth()
        keys = KeyGenerator(13).sorted_keys(100)
        for k in keys:
            f.insert(k)
        assert f.stats.splits > 0
        assert f.stats.nodes_added >= f.stats.splits
