#!/usr/bin/env python
"""Compact files for ordered loads: the back-up / log-file scenario.

Section 4 motivates THCL with files that are *created* by sorted
insertions and then only read: back-up copies, logs, versions, query
temporaries, transferred files. This example builds the same sorted
word corpus three ways —

* basic TH with the split key shifted (the pre-THCL best effort),
* THCL with d = 0 (every split deterministic, 100% load),
* a compact B+-tree (/ROS81/), the paper's reference point —

and compares load factor, index size and full-scan cost. It then shows
the paper's warning in action: a burst of random inserts deflates a
compact file toward ~65%.

Run:  python examples/compact_backup_file.py
"""

from repro import SplitPolicy, THFile, bulk_load_compact
from repro.storage.layout import Layout
from repro.workloads import KeyGenerator, synthetic_dictionary


def scan_cost(f) -> int:
    """Disk reads for a full ordered scan."""
    device = f.store.disk if hasattr(f, "store") else f.disk
    before = device.stats.reads
    for _ in f.items():
        pass
    return device.stats.reads - before


def main() -> None:
    words = synthetic_dictionary(8000, seed=1981)
    layout = Layout(key_bytes=12, pointer_bytes=4)
    b = 20

    basic = THFile(b, SplitPolicy(split_position=-1))       # m = b
    thcl = THFile(b, SplitPolicy.thcl_ascending(0))         # THCL, d = 0
    for w in words:
        basic.insert(w)
        thcl.insert(w)
    btree = bulk_load_compact(
        ((w, None) for w in words), leaf_capacity=b, layout=layout
    )

    print(f"sorted load of {len(words)} dictionary words, b = {b}\n")
    header = f"{'method':26s} {'load':>7s} {'buckets':>8s} {'index bytes':>12s} {'scan reads':>11s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("basic TH, m=b (nil nodes)", basic),
        ("THCL, d=0 (deterministic)", thcl),
    ]
    for name, f in rows:
        print(
            f"{name:26s} {f.load_factor():>7.1%} {f.bucket_count():>8d} "
            f"{layout.trie_bytes(f.trie_size()):>12d} {scan_cost(f):>11d}"
        )
    print(
        f"{'compact B+-tree (ROS81)':26s} {btree.load_factor():>7.1%} "
        f"{btree.leaf_count():>8d} {btree.index_bytes():>12d} "
        f"{scan_cost(btree):>11d}"
    )

    # --- The paper's caveat: compact files dislike random updates -----
    # A file that must keep taking updates switches back to the middle
    # split key first (the paper: one setting serves random and ordered
    # insertions if ~70% suffices).
    print("\nnow 1500 random inserts hit the compact THCL file...")
    thcl.policy = SplitPolicy.thcl_guaranteed_half()
    extra = KeyGenerator(7).uniform(1500, length=7)
    inserted = 0
    for key in extra:
        if not thcl.contains(key):
            thcl.insert(key)
            inserted += 1
    thcl.check()
    print(
        f"  {inserted} inserted; load fell to {thcl.load_factor():.1%} "
        "- compact files suit static or throwaway data (Section 4);\n"
        "  files expecting updates keep the middle split key instead."
    )


if __name__ == "__main__":
    main()
