"""Section 5: the comparison to B-trees.

The criteria the paper argues with, measured side by side on the same
key sets: load factor, disk accesses per search, accesses per insert,
and index bytes - for random and for (unexpected/expected) ascending
insertions. Expected shape: TH searches in one access against the
B-tree's height; insert costs favour TH; index bytes favour TH several
times over; on ordered loads THCL matches the compact B-tree's 100%.
"""

from conftest import once

from repro.analysis import sec5_btree_comparison


def test_sec5_btree_comparison(benchmark, report):
    rows = once(
        benchmark, lambda: sec5_btree_comparison(count=5000, bucket_capacity=20)
    )
    report(
        "sec5_btree",
        rows,
        "Section 5 - TH / THCL vs B+-tree (5000 keys, b = 20)",
    )
    th = [r for r in rows if r["method"].startswith(("TH", "THCL"))]
    bt = [r for r in rows if r["method"].startswith("B+-tree")]
    assert all(r["search_acc"] == 1 for r in th)
    assert all(r["search_acc"] >= 2 for r in bt)
    for order in ("random", "ascending"):
        t = min(r["insert_acc"] for r in th if r["order"] == order)
        b = min(r["insert_acc"] for r in bt if r["order"] == order)
        assert t < b
        ti = min(r["index_bytes"] for r in th if r["order"] == order)
        bi = min(r["index_bytes"] for r in bt if r["order"] == order)
        assert ti < bi
    asc = {r["method"]: r for r in rows if r["order"] == "ascending"}
    assert [v for k, v in asc.items() if "THCL" in k][0]["a%"] >= 99
    assert [v for k, v in asc.items() if "B+-tree" in k][0]["a%"] >= 99
