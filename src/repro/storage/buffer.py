"""An LRU buffer pool in front of the simulated disk.

The paper's access counts assume specific caching: the (single-level)
trie is in core, the MLTH root page may be pinned, and buckets are read
fresh. The buffer pool makes those assumptions explicit and tunable —
ablation benches vary its capacity to show how the one-access claim
degrades or improves.

The pool is write-through: writes always reach the device (the paper
counts them), but they refresh the cached copy so a following read hits.
"""

from __future__ import annotations

from collections import OrderedDict

from ..obs.tracer import TRACER
from .disk import SimulatedDisk

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity LRU cache of disk blocks.

    Parameters
    ----------
    disk:
        The underlying :class:`SimulatedDisk`.
    capacity:
        Maximum number of cached blocks; ``0`` disables caching entirely
        (every access reaches the device).
    """

    def __init__(self, disk: SimulatedDisk, capacity: int = 0):
        if capacity < 0:
            raise ValueError("buffer capacity cannot be negative")
        self.disk = disk
        self.capacity = capacity
        self._cache: OrderedDict[int, object] = OrderedDict()
        self._pinned: set[int] = set()
        self.hits = 0
        self.misses = 0

    def read(self, block_id: int) -> object:
        """Fetch a block, through the cache."""
        if block_id in self._cache:
            self.hits += 1
            if TRACER.enabled:
                TRACER.emit("buffer_hit", device=self.disk.name, block=block_id)
            self._cache.move_to_end(block_id)
            return self._cache[block_id]
        self.misses += 1
        if TRACER.enabled:
            TRACER.emit("buffer_miss", device=self.disk.name, block=block_id)
        payload = self.disk.read(block_id)
        self._insert(block_id, payload)
        return payload

    def write(self, block_id: int, payload: object) -> None:
        """Write-through: update the device and refresh the cached copy."""
        self.disk.write(block_id, payload)
        if block_id in self._cache or self.capacity:
            self._insert(block_id, payload)

    def allocate(self, payload: object) -> int:
        """Allocate a device block and cache it."""
        block_id = self.disk.allocate(payload)
        self._insert(block_id, payload)
        return block_id

    def free(self, block_id: int) -> None:
        """Release a block from device and cache."""
        self._cache.pop(block_id, None)
        self._pinned.discard(block_id)
        self.disk.free(block_id)

    def pin(self, block_id: int) -> None:
        """Keep a block resident regardless of LRU pressure (root pages)."""
        self._pinned.add(block_id)
        if block_id not in self._cache:
            self.read(block_id)

    def unpin(self, block_id: int) -> None:
        """Allow a previously pinned block to be evicted again."""
        self._pinned.discard(block_id)

    def invalidate(self) -> None:
        """Drop every unpinned cached block (cold-cache measurements)."""
        for block_id in list(self._cache):
            if block_id not in self._pinned:
                del self._cache[block_id]

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _insert(self, block_id: int, payload: object) -> None:
        if self.capacity == 0 and block_id not in self._pinned:
            return
        self._cache[block_id] = payload
        self._cache.move_to_end(block_id)
        while len(self._cache) > max(self.capacity, len(self._pinned)):
            for victim in self._cache:
                if victim not in self._pinned:
                    del self._cache[victim]
                    break
            else:
                break
