"""The crash flight recorder: a bounded ring of recent events.

Production systems keep a *black box*: when something dies, the last
window of activity is dumped for offline forensics. This module is that
box for the repro. One process-wide :data:`FLIGHT` recorder is attached
as a sink whenever the tracer activates, so it always holds the most
recent ``capacity`` events (spans, faults, retries, WAL traffic — the
full taxonomy of :mod:`repro.obs.events`).

Three failure sites dump it:

* :meth:`repro.distributed.server.ShardServer.crash` — a shard went
  down, possibly losing volatile state;
* :func:`repro.distributed.chaos.run_chaos` — the differential oracle
  diverged (an ``AssertionError`` is about to surface);
* :func:`repro.check.framework.maybe_audit` — a paranoid-mode audit
  found a violated invariant at a mutation site.

Dumping is **off by default**: :meth:`FlightRecorder.dump` is a no-op
(returns ``None``) until a directory is configured, either with
:meth:`FlightRecorder.configure` or through the ``REPRO_FLIGHT_DIR``
environment variable. That keeps chaos tests from spraying files while
letting any run opt into forensics with one env var.

A dump is a single JSON document — ``reason``, ``timestamp``, optional
``extra`` payload, and the buffered ``events`` — that
:func:`repro.obs.causal.load_events` reads interchangeably with a JSONL
trace, so ``trie-hashing trace report`` renders causal trees straight
out of a forensics file.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Optional

from .events import Event

__all__ = ["FlightRecorder", "FLIGHT", "DEFAULT_CAPACITY"]

#: Events the ring retains; old entries fall off the front.
DEFAULT_CAPACITY = 4096

#: Environment variable naming the dump directory (empty = disabled).
ENV_DIR = "REPRO_FLIGHT_DIR"


class FlightRecorder:
    """A tracer sink keeping the last ``capacity`` events for forensics."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._dir: Optional[str] = None
        self._counter = 0
        #: Paths of every dump written this process, oldest first.
        self.dumps: list[str] = []

    # ------------------------------------------------------------------
    # Sink protocol
    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        """Buffer one event (constant-time ring append)."""
        self._events.append(event.to_dict())

    # ------------------------------------------------------------------
    # Configuration and inspection
    # ------------------------------------------------------------------
    def configure(self, directory: Optional[str]) -> None:
        """Set (or clear, with ``None``) the dump directory.

        An explicit directory wins over ``REPRO_FLIGHT_DIR``.
        """
        self._dir = directory

    @property
    def directory(self) -> Optional[str]:
        """Where dumps go: explicit configure first, then the env var."""
        if self._dir:
            return self._dir
        env = os.environ.get(ENV_DIR, "").strip()
        return env or None

    def snapshot(self) -> list[dict]:
        """The buffered events, oldest first (a copy)."""
        return list(self._events)

    def clear(self) -> None:
        """Drop every buffered event (tests isolate through this)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(self, reason: str, extra: Optional[dict] = None) -> Optional[str]:
        """Write the ring to a timestamped forensics file.

        Returns the path written, or ``None`` when no directory is
        configured (the call is then free). The filename carries a UTC
        timestamp, a monotonic counter (so same-second dumps never
        collide) and the sanitized reason.
        """
        directory = self.directory
        if not directory:
            return None
        os.makedirs(directory, exist_ok=True)
        self._counter += 1
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
        path = os.path.join(
            directory, f"flight-{stamp}-{self._counter:04d}-{safe}.json"
        )
        document: dict = {
            "kind": "flight_dump",
            "reason": reason,
            "timestamp": stamp,
            "capacity": self.capacity,
            "events": list(self._events),
        }
        if extra is not None:
            document["extra"] = extra
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True, default=repr)
            fh.write("\n")
        self.dumps.append(path)
        return path


#: The process-wide flight recorder the tracer feeds while active.
FLIGHT = FlightRecorder()
