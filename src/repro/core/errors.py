"""Exception hierarchy for the trie-hashing library.

All errors raised by the library derive from :class:`TrieHashingError`, so
callers can catch a single base class. The concrete subclasses mirror the
failure modes of a disk-based access method: invalid keys, duplicate or
missing keys, capacity misconfiguration, and structural corruption of the
trie (which should never occur and indicates a bug, not a user error).
"""

from __future__ import annotations


class TrieHashingError(Exception):
    """Base class for every error raised by this library."""


class InvalidKeyError(TrieHashingError, ValueError):
    """A key contains digits outside the file's alphabet, or is empty."""


class DuplicateKeyError(TrieHashingError, KeyError):
    """An insert found the key already present in the file."""


class KeyNotFoundError(TrieHashingError, KeyError):
    """A lookup or delete did not find the key in the file."""


class CapacityError(TrieHashingError, ValueError):
    """A bucket/page capacity or split-position parameter is out of range."""


class TrieCorruptionError(TrieHashingError, AssertionError):
    """A structural invariant of the TH-trie was violated.

    Raised by :meth:`repro.core.trie.Trie.check` and by internal sanity
    guards. Seeing this exception means a bug in the library (or external
    mutation of internal state), never a misuse of the public API.
    """


class StorageError(TrieHashingError, RuntimeError):
    """The simulated storage layer was asked for an unknown block."""


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent file.

    Raised when the durable state (manifest, checkpoint chain, WAL) is
    missing or damaged beyond what the recovery protocol can repair —
    e.g. a checkpoint bucket section failing its checksum with no intact
    copy elsewhere, or operations attempted on a session poisoned by a
    mid-operation device failure.
    """


class CrashError(TrieHashingError):
    """A simulated process crash (raised by the crash-point test harness).

    Deliberately *not* a :class:`StorageError`: production code paths
    that retry or absorb storage faults must never swallow a simulated
    crash — the harness relies on it propagating to the top.
    """
