"""Tests for the concurrency-control simulation (/VID87/)."""

import pytest

from repro import BPlusTree, SplitPolicy, THFile
from repro.concurrency import (
    LockManager,
    LockMode,
    btree_operation_schedule,
    simulate_clients,
    th_operation_schedule,
)
from repro.workloads import KeyGenerator

S, X = LockMode.SHARED, LockMode.EXCLUSIVE


class TestLockManager:
    def test_shared_locks_coexist(self):
        m = LockManager()
        assert m.try_acquire(1, "r", S)
        assert m.try_acquire(2, "r", S)
        assert m.conflicts == 0

    def test_exclusive_excludes(self):
        m = LockManager()
        assert m.try_acquire(1, "r", X)
        assert not m.try_acquire(2, "r", S)
        assert not m.try_acquire(2, "r", X)
        assert m.conflicts == 1  # one queued request, counted once

    def test_fifo_grant_on_release(self):
        m = LockManager()
        m.try_acquire(1, "r", X)
        assert not m.try_acquire(2, "r", X)
        assert not m.try_acquire(3, "r", X)
        m.release_all(1)
        assert m.holds(2, "r")
        assert not m.holds(3, "r")
        m.release_all(2)
        assert m.holds(3, "r")

    def test_writer_not_starved(self):
        m = LockManager()
        m.try_acquire(1, "r", S)
        assert not m.try_acquire(2, "r", X)  # writer queues
        # A later reader must wait behind the queued writer (FIFO).
        assert not m.try_acquire(3, "r", S)
        m.release_all(1)
        assert m.holds(2, "r")
        assert not m.holds(3, "r")

    def test_reacquire_held_is_noop(self):
        m = LockManager()
        m.try_acquire(1, "r", X)
        assert m.try_acquire(1, "r", S)
        assert m.try_acquire(1, "r", X)

    def test_upgrade_when_alone(self):
        m = LockManager()
        m.try_acquire(1, "r", S)
        assert m.try_acquire(1, "r", X)

    def test_single_release(self):
        m = LockManager()
        m.try_acquire(1, "a", X)
        m.try_acquire(1, "b", X)
        m.release(1, "a")
        assert not m.holds(1, "a")
        assert m.holds(1, "b")

    def test_waiting_flag(self):
        m = LockManager()
        m.try_acquire(1, "r", X)
        m.try_acquire(2, "r", X)
        assert m.waiting(2)
        m.release_all(1)
        assert not m.waiting(2)


class TestSchedules:
    def setup_method(self):
        self.keys = KeyGenerator(11).uniform(300)
        self.th = THFile(bucket_capacity=8)
        self.bt = BPlusTree(leaf_capacity=8)
        for k in self.keys:
            self.th.insert(k)
            self.bt.insert(k)

    def test_th_search_locks_one_bucket(self):
        sched = th_operation_schedule(self.th, "search", self.keys[0])
        locks = [s for s in sched if s[0] == "lock"]
        assert len(locks) == 1
        assert locks[0][2] is S

    def test_th_plain_insert_locks_one_bucket(self):
        sched = th_operation_schedule(self.th, "insert", "zzzzzq")
        locks = [s for s in sched if s[0] == "lock"]
        assert [r for _, r, _ in locks] != []
        assert all(mode is X for _, _, mode in locks)
        assert len(locks) <= 2  # bucket (+ N only if it split)

    def test_th_split_locks_bucket_and_counter(self):
        # Force a split: fill one bucket's range.
        f = THFile(bucket_capacity=2)
        f.insert("aa")
        f.insert("ab")
        sched = th_operation_schedule(f, "insert", "ac")
        locks = [s for s in sched if s[0] == "lock"]
        resources = [r for _, r, _ in locks]
        assert ("bucket", 0) in resources
        assert "N" in resources
        assert len(resources) == 2  # and nothing else - the VID87 point

    def test_btree_search_couples_down(self):
        sched = btree_operation_schedule(self.bt, "search", self.keys[0])
        locks = [s for s in sched if s[0] == "lock"]
        unlocks = [s for s in sched if s[0] == "unlock"]
        assert len(locks) == self.bt.height
        assert len(unlocks) == self.bt.height - 1

    def test_btree_insert_locks_root_exclusively(self):
        sched = btree_operation_schedule(self.bt, "insert", "zzzzzr")
        first_lock = [s for s in sched if s[0] == "lock"][0]
        assert first_lock[2] is X  # conservative coupling hits the root

    def test_th_schedule_smaller_than_btree(self):
        th_locks = len(
            [
                s
                for s in th_operation_schedule(self.th, "search", self.keys[1])
                if s[0] == "lock"
            ]
        )
        bt_locks = len(
            [
                s
                for s in btree_operation_schedule(self.bt, "search", self.keys[1])
                if s[0] == "lock"
            ]
        )
        assert th_locks < bt_locks


class TestSimulation:
    def _schedules(self, method, n=200):
        gen = KeyGenerator(23)
        present = gen.uniform(400)
        new = gen.uniform(n, salt=5)
        if method == "th":
            f = THFile(bucket_capacity=8)
            for k in present:
                f.insert(k)
            return [
                th_operation_schedule(f, "insert", k)
                for k in new
                if not f.contains(k)
            ] + [th_operation_schedule(f, "search", k) for k in present[:n]]
        t = BPlusTree(leaf_capacity=8)
        for k in present:
            t.insert(k)
        return [
            btree_operation_schedule(t, "insert", k)
            for k in new
            if not t.contains(k)
        ] + [btree_operation_schedule(t, "search", k) for k in present[:n]]

    def test_single_client_no_conflicts(self):
        report = simulate_clients(self._schedules("th"), clients=1)
        assert report.conflicts == 0
        assert report.wait_ticks == 0
        assert report.makespan >= report.io_ticks

    def test_th_outconcurs_btree(self):
        th = simulate_clients(self._schedules("th"), clients=8)
        bt = simulate_clients(self._schedules("btree"), clients=8)
        assert th.conflicts < bt.conflicts
        assert th.wait_ticks <= bt.wait_ticks

    def test_more_clients_finish_sooner(self):
        one = simulate_clients(self._schedules("th"), clients=1)
        eight = simulate_clients(self._schedules("th"), clients=8)
        assert eight.makespan < one.makespan
        assert eight.operations == one.operations

    def test_report_derived_metrics(self):
        report = simulate_clients(self._schedules("th"), clients=4)
        assert 0 < report.throughput
        assert 0 < report.utilization <= 1

    def test_watchdog_detects_artificial_deadlock(self):
        # Hand-built cyclic schedules (never produced by the protocols,
        # which lock in a global order) must trip the watchdog instead
        # of hanging.
        from repro.concurrency.locks import LockMode

        # Client A works r1 for two ticks so B can grab r2 meanwhile.
        a = [("lock", "r1", LockMode.EXCLUSIVE), ("io",), ("io",),
             ("lock", "r2", LockMode.EXCLUSIVE), ("io",)]
        b = [("lock", "r2", LockMode.EXCLUSIVE), ("io",),
             ("lock", "r1", LockMode.EXCLUSIVE), ("io",)]
        with pytest.raises(RuntimeError):
            simulate_clients([a, b], clients=2)

    def test_no_deadlock_under_mixed_load(self):
        gen = KeyGenerator(29)
        keys = gen.uniform(300)
        f = THFile(bucket_capacity=6, policy=SplitPolicy.thcl())
        for k in keys:
            f.insert(k)
        schedules = []
        for i, k in enumerate(keys[:150]):
            schedules.append(th_operation_schedule(f, "delete", k))
            schedules.append(th_operation_schedule(f, "search", keys[150 + i % 100]))
        report = simulate_clients(schedules, clients=6)
        assert report.operations == len(schedules)
