"""The server-side request-dedup window (exactly-once retries).

A retried mutating operation whose first reply was lost must not apply
twice. The TH* client stamps every mutating op with a per-client
monotonic request id ``(client_id, seq)``; the server that *applies* the
op records the id and its result here, and a later delivery of the same
id short-circuits to the recorded result instead of re-executing.

The window is bounded (FIFO eviction) because retries are prompt: a
request id only needs to survive the retry horizon of one logical
operation, not forever. For durable shards the window rides the
existing crash-safety machinery — request ids travel inside the WAL
operation records and the current window is embedded in every
checkpoint header — so a server crash between applying an op and the
client's retry cannot forget that the op already happened (see
:mod:`repro.storage.recovery`).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from typing import Optional

from ..check.hook import maybe_audit

__all__ = ["DedupWindow", "DEFAULT_WINDOW"]

#: One request id: (client id, per-client monotonic sequence number).
RequestId = tuple[int, int]

#: Default window size — generous against the retry horizon (a retried
#: op is re-delivered within a handful of messages, not thousands).
DEFAULT_WINDOW = 1024

_MISSING = object()


class DedupWindow:
    """A bounded map from request id to the applied op's result."""

    __slots__ = ("limit", "_entries")

    def __init__(self, limit: int = DEFAULT_WINDOW):
        if limit < 1:
            raise ValueError("dedup window must hold at least one entry")
        self.limit = limit
        self._entries: OrderedDict[RequestId, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rid: RequestId) -> bool:
        return rid in self._entries

    def lookup(self, rid: RequestId) -> tuple[bool, object]:
        """``(hit, result)`` for ``rid`` (results may be ``None``)."""
        value = self._entries.get(rid, _MISSING)
        if value is _MISSING:
            return False, None
        return True, value

    def record(self, rid: Optional[RequestId], result: object) -> None:
        """Remember that ``rid`` applied with ``result`` (None rid: no-op)."""
        if rid is None:
            return
        self._entries[rid] = result
        self._entries.move_to_end(rid)
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)
        maybe_audit(self, "DedupWindow.record")

    def merge(self, other: DedupWindow) -> None:
        """Absorb every entry of ``other`` (shard-split handover).

        Extra entries are harmless — a dedup hit only ever short-circuits
        an op that *did* already apply — so the split handover copies the
        whole window rather than filtering by moved region.
        """
        for rid, result in other._entries.items():
            self.record(rid, result)
        maybe_audit(self, "DedupWindow.merge")

    # -- checkpoint codec ----------------------------------------------
    def to_spec(self) -> list[list]:
        """JSON-ready form: ``[[client, seq, result], ...]`` oldest first."""
        return [[c, s, v] for (c, s), v in self._entries.items()]

    @classmethod
    def from_spec(
        cls, spec: Iterable[list], limit: int = DEFAULT_WINDOW
    ) -> DedupWindow:
        """Rebuild a window from :meth:`to_spec` output."""
        window = cls(limit)
        for client, seq, result in spec:
            window.record((int(client), int(seq)), result)
        return window
