"""Command-line face of the perf-trajectory harness.

Everything lives in the importable package :mod:`repro.bench`; this
script (and the equivalent ``trie-hashing reproduce``) is the thin CLI
over :func:`repro.bench.reproduce`:

    PYTHONPATH=src python benchmarks/harness.py --profile quick
    PYTHONPATH=src python benchmarks/harness.py --suite chaos --seed 3

Each invocation writes a fresh run directory under
``benchmarks/results/runs/<stamp>-<profile>/`` — ``manifest.json``
(full config), ``metrics.jsonl`` (one line per suite as it completes),
``summary.json`` — and refreshes the committed ``BENCH_*.json``
trajectory files that ``scripts/bench_gate.py`` diffs in CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import PROFILES, reproduce
from repro.bench.suites import SUITES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    parser.add_argument(
        "--suite", action="append", dest="suites", choices=sorted(SUITES)
    )
    parser.add_argument("--out-root", default="benchmarks/results/runs")
    parser.add_argument(
        "--bench-dir", default=".", help="where BENCH_*.json go ('-' to skip)"
    )
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)
    reproduce(
        profile=args.profile,
        out_root=args.out_root,
        bench_dir=None if args.bench_dir == "-" else args.bench_dir,
        suites=args.suites,
        seed=args.seed,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
