"""TH* distributed layer: routed throughput and image convergence.

The convergence table is the layer's reproduction artifact (a client's
hit rate versus work done while the file scales out); the throughput
benchmarks price the routing indirection against a plain single-node
:class:`~repro.core.file.THFile` on the same workload.
"""

import pytest

from repro import Cluster, ShardPolicy, THFile
from repro.distributed.report import distributed_table
from repro.workloads import KeyGenerator

from conftest import once

KEYS = KeyGenerator(31).uniform(3000)
PROBES = KEYS[::5]


@pytest.fixture(scope="module")
def loaded_cluster():
    cluster = Cluster(
        shards=4, bucket_capacity=20, shard_policy=ShardPolicy(shard_capacity=256)
    )
    f = cluster.client(warm=True)
    for k in KEYS:
        f.insert(k)
    return cluster


@pytest.fixture(scope="module")
def single_node():
    f = THFile(bucket_capacity=20)
    for k in KEYS:
        f.insert(k)
    return f


def test_distributed_convergence_table(benchmark, report):
    rows = once(benchmark, lambda: distributed_table(count=3000, windows=6))
    report("distributed", rows, "TH* image convergence vs scale-out")
    assert rows[-1]["hit%"] >= 90.0


def test_search_throughput_distributed_warm(benchmark, loaded_cluster):
    client = loaded_cluster.client(warm=True)
    benchmark(lambda: [client.get(k) for k in PROBES])
    assert client.ops_forwarded == 0


def test_search_throughput_distributed_cold(benchmark, loaded_cluster):
    def probe_cold():
        client = loaded_cluster.client()
        return [client.get(k) for k in PROBES]

    benchmark(probe_cold)


def test_search_throughput_single_node_baseline(benchmark, single_node):
    benchmark(lambda: [single_node.get(k) for k in PROBES])


def test_insert_throughput_distributed(benchmark):
    def build():
        cluster = Cluster(
            shards=4,
            bucket_capacity=20,
            shard_policy=ShardPolicy(shard_capacity=512),
        )
        f = cluster.client(warm=True)
        for k in KEYS[:1500]:
            f.insert(k)
        return cluster

    cluster = benchmark(build)
    assert len(cluster) == 1500


def test_scan_throughput_distributed(benchmark, loaded_cluster):
    client = loaded_cluster.client(warm=True)
    s = sorted(KEYS)
    lo, hi = s[500], s[2500]
    out = benchmark(lambda: sum(1 for _ in client.range_items(lo, hi)))
    assert out == 2001
