#!/usr/bin/env python
"""Quickstart: the paper's running example, then the basic API tour.

Builds the Fig 1 file — the 31 most-used English words in buckets of
four — and walks through search, ordered iteration, range queries,
deletion and the file statistics the paper reports (load factor ~70%,
one disk access per search, a six-byte-per-cell trie).

Run:  python examples/quickstart.py
"""

from repro import THFile
from repro.storage.serializer import serialize_trie
from repro.workloads import MOST_USED_WORDS


def main() -> None:
    # --- Build the example file ---------------------------------------
    f = THFile(bucket_capacity=4)
    for rank, word in enumerate(MOST_USED_WORDS, start=1):
        f.insert(word, rank)  # value = frequency rank

    print("Fig 1 example file")
    print(f"  records      : {len(f)}")
    print(f"  buckets (N+1): {f.bucket_count()}")
    print(f"  trie cells M : {f.trie_size()}")
    print(f"  load factor  : {f.load_factor():.1%}")
    print(f"  trie bytes   : {len(serialize_trie(f.trie))} "
          "(six bytes per cell plus a small header)")

    # --- Key search: one disk access ----------------------------------
    reads_before = f.store.disk.stats.reads
    rank = f.get("which")
    print(f"\nget('which') -> rank {rank} "
          f"({f.store.disk.stats.reads - reads_before} disk access)")

    # --- The file is ordered: range queries work ----------------------
    print("\nwords in ['h', 'j']:")
    for word, rank in f.range_items("h", "j"):
        print(f"  {word:8s} rank {rank}")

    # --- Updates -------------------------------------------------------
    f.insert("hat", None)          # the Fig 3 insertion: splits bucket 7
    print(f"\nafter inserting 'hat': buckets={f.bucket_count()}, "
          f"cells={f.trie_size()} (the split added node (a,1))")
    f.delete("hat")
    f.put("the", "most frequent")  # overwrite
    print(f"get('the') -> {f.get('the')!r}")

    # --- The trie itself -----------------------------------------------
    print("\ntrie boundaries (the cut points, in key order):")
    print("  " + " | ".join(f.trie.boundaries()))
    print("\nbuckets:")
    for address in sorted(f.store.live_addresses()):
        bucket = f.store.peek(address)
        print(f"  {address:2d}: {' '.join(bucket.keys)}")


if __name__ == "__main__":
    main()
