"""Trie pages for multilevel trie hashing (Section 2.5).

When the trie outgrows main memory it is split into *pages*, each holding
one subtrie of at most ``b'`` cells. Pages form levels of equal depth; all
bucket-pointing leaves live in *file-level* pages (level 0) and upper
levels hold the separator nodes moved up by page splits.

A page is represented by its boundary span plus one child per gap —
exactly one cell per boundary, so the paper's page-capacity arithmetic
(``b'`` cells of six bytes) holds. The binary subtrie a page ships to
disk is materialised on demand from the span (see
:meth:`TriePage.subtrie`), with leaves encoding gap indices; search runs
the real Algorithm A1 inside each page, carrying the ``(j, C)`` state
across page hops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .alphabet import Alphabet
from .boundaries import BoundaryModel, gap_index
from .errors import TrieCorruptionError
from .trie import Trie

if TYPE_CHECKING:  # runtime cycle: storage imports core
    from ..storage.wal import WALWriter

__all__ = ["TriePage"]


class TriePage:
    """One page of a multilevel trie.

    Parameters
    ----------
    level:
        0 for file-level pages (children are bucket addresses or ``None``
        for nil leaves); higher levels hold page ids as children.
    boundaries / children:
        The page's boundary span and its ``len(boundaries) + 1`` children.
    """

    __slots__ = (
        "level",
        "boundaries",
        "children",
        "next_page",
        "prev_page",
        "_subtrie",
    )

    def __init__(
        self,
        level: int,
        boundaries: list[str],
        children: list[Optional[int]],
        next_page: Optional[int] = None,
        prev_page: Optional[int] = None,
    ):
        self.level = level
        self.boundaries = boundaries
        self.children = children
        self.next_page = next_page
        self.prev_page = prev_page
        self._subtrie: Optional[Trie] = None

    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Internal nodes in the page — the unit of page capacity."""
        return len(self.boundaries)

    def subtrie(self, alphabet: Alphabet, pick: str = "balanced") -> Trie:
        """The page's binary subtrie (leaves are local gap indices)."""
        if self._subtrie is None:
            model = BoundaryModel(
                alphabet, self.boundaries, list(range(len(self.boundaries) + 1))
            )
            self._subtrie = Trie.from_model(model, pick=pick)
        return self._subtrie

    def invalidate(self) -> None:
        """Drop the cached subtrie after a structural change."""
        self._subtrie = None

    def gap_of(self, key: str, alphabet: Alphabet) -> int:
        """Gap index of ``key`` within this page (model-level lookup)."""
        return gap_index(self.boundaries, key, alphabet)

    def splice(
        self,
        gap: int,
        new_boundaries: list[str],
        new_children: list[Optional[int]],
        journal: Optional[WALWriter] = None,
    ) -> None:
        """Replace gap ``gap`` by a run of boundaries and children.

        ``new_children`` must have exactly ``len(new_boundaries) + 1``
        entries; the old child of the gap is discarded. When a
        ``journal`` (a :class:`~repro.storage.wal.WALWriter`) is given,
        the edit is recorded as a ``page_edit`` WAL record.
        """
        if len(new_children) != len(new_boundaries) + 1:
            raise TrieCorruptionError(
                f"splice needs len(children) == len(boundaries) + 1, got "
                f"{len(new_children)} and {len(new_boundaries)}"
            )
        self.boundaries[gap:gap] = new_boundaries
        self.children[gap : gap + 1] = new_children
        self.invalidate()
        if journal is not None:
            journal.log_page_edit(gap, list(new_boundaries))

    def to_spec(self) -> dict:
        """A JSON-encodable description (for snapshots and checkpoints)."""
        return {
            "level": self.level,
            "boundaries": list(self.boundaries),
            "children": list(self.children),
            "next": self.next_page,
            "prev": self.prev_page,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> TriePage:
        """Inverse of :meth:`to_spec`."""
        return cls(
            level=spec["level"],
            boundaries=list(spec["boundaries"]),
            children=list(spec["children"]),
            next_page=spec["next"],
            prev_page=spec["prev"],
        )

    def split_candidates(self) -> list[int]:
        """Boundary indices eligible as the split node (condition (ii)).

        A node may move up only when its logical parent — the boundary
        one digit shorter — is not inside this page's own span.
        """
        span = set(self.boundaries)
        return [
            i
            for i, s in enumerate(self.boundaries)
            if len(s) == 1 or s[:-1] not in span
        ]

    def choose_split_index(self, pick: str = "balanced") -> int:
        """Pick the split node (condition (i): closest to the middle).

        ``pick='last'``/``'first'`` shift the node toward the span's end,
        the Section 3.2 refinement for expected ordered insertions.
        """
        candidates = self.split_candidates()
        if pick == "first":
            return candidates[0]
        if pick == "last":
            return candidates[-1]
        middle = (len(self.boundaries) - 1) / 2
        return min(candidates, key=lambda i: (abs(i - middle), i))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TriePage(level={self.level}, cells={self.cell_count}, "
            f"span={self.boundaries[:2]}..{self.boundaries[-2:]})"
        )
