"""Bucket splitting — Algorithm A2 of the basic method.

A split has two halves: a *plan* (pure computation on the ordered key
sequence ``B``: find the split string, decide which records stay and which
move) and the *trie expansion* (graft the new internal nodes). The plan is
shared by every variant — basic TH, THCL, redistribution — because THCL's
split control only changes which key bounds the split string (Section
4.2). The expansion differs: the basic method's rare case creates nil
leaves (step 3.3 of A2), THCL's never does (see
:mod:`repro.core.thcl_split`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional

from .alphabet import Alphabet
from .cells import NIL
from .errors import TrieCorruptionError
from .keys import common_prefix_length, prefix_gt, split_string
from .trie import Location, Trie

if TYPE_CHECKING:  # runtime cycle: storage imports core
    from ..storage.wal import WALWriter

__all__ = ["SplitPlan", "plan_split", "expand_basic"]

Record = tuple[str, object]


class SplitPlan(NamedTuple):
    """The outcome of planning a bucket split."""

    #: The split string ``(c')_i`` — the new boundary cut into key space.
    boundary: str
    #: Records that stay in the overflowing bucket (keys <= boundary).
    stay: list[Record]
    #: Records that move to the target bucket (keys > boundary).
    move: list[Record]
    #: The split key ``c'`` (stays; anchors the trie expansion).
    split_key: str


def plan_split(
    records: list[Record],
    split_index: int,
    bounding_index: int,
    alphabet: Alphabet,
) -> SplitPlan:
    """Plan the split of the ordered sequence ``B`` (steps 1–2 of A2).

    Parameters
    ----------
    records:
        The ``b + 1`` records to split, sorted by key (bucket contents
        plus the incoming record).
    split_index:
        1-based position ``m`` of the split key ``c'``.
    bounding_index:
        1-based position of the bounding key: ``b + 1`` reproduces the
        basic method (bounding key = last key ``c''``); ``m + 1`` makes
        the split deterministic (THCL split control).

    Both resulting sides are guaranteed non-empty: the split key stays,
    the bounding key moves.
    """
    if not 1 <= split_index < bounding_index <= len(records):
        raise TrieCorruptionError(
            f"split position {split_index} and bounding position "
            f"{bounding_index} invalid for {len(records)} records"
        )
    split_key = records[split_index - 1][0]
    bounding_key = records[bounding_index - 1][0]
    boundary = split_string(split_key, bounding_key, alphabet)
    stay: list[Record] = []
    move: list[Record] = []
    for record in records:
        if prefix_gt(record[0], boundary, alphabet):
            move.append(record)
        else:
            stay.append(record)
    if not stay or not move:
        raise TrieCorruptionError("split produced an empty side")
    return SplitPlan(boundary, stay, move, split_key)


def expand_basic(
    trie: Trie,
    leaf_location: Location,
    leaf_path: str,
    boundary: str,
    bucket_a: int,
    bucket_n: int,
    journal: Optional[WALWriter] = None,
) -> int:
    """Step 3 of Algorithm A2 — expand the trie after a basic-TH split.

    ``leaf_location``/``leaf_path`` identify the overflowing bucket's
    (unique) leaf and its logical path ``C``, as returned by the search
    that hit the overflow. The digits of the split string already present
    in ``C`` are cut (step 3.1); the usual case grafts a single node
    (step 3.2); the rare case grafts a left-descending chain whose
    intermediate right children are *nil* leaves (step 3.3).

    Returns the number of internal nodes added.
    """
    shared = common_prefix_length(boundary, leaf_path)
    new_digits = boundary[shared:]
    if not new_digits:
        raise TrieCorruptionError(
            f"split string {boundary!r} already fully on the logical path "
            f"{leaf_path!r}: impossible in the basic method"
        )
    chain, _ = trie.build_left_chain(
        new_digits,
        first_position=shared,
        bottom_left=bucket_a,
        right_fill=NIL,
        bottom_right=bucket_n,
    )
    trie.set_ptr(leaf_location, chain)
    if journal is not None:
        journal.log_trie_expand(boundary, bucket_a, bucket_n, len(new_digits))
    return len(new_digits)
