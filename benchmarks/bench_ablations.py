"""Ablations of the design choices DESIGN.md calls out.

* nil nodes vs shared leaves (TH vs THCL) at the same split key;
* trie balancing (in-core depth only - disk metrics must not move);
* bucket buffer-pool size vs disk reads.
"""

from conftest import once

from repro.analysis import ablation_balance, ablation_buffer, ablation_nil_nodes


def test_ablation_nil_nodes(benchmark, report):
    rows = once(
        benchmark, lambda: ablation_nil_nodes(count=5000, bucket_capacity=20)
    )
    report(
        "ablation_nil",
        rows,
        "Ablation - nil nodes (basic) vs shared leaves (THCL), ascending load",
    )
    at_mid = [r for r in rows if r["split key"] == "m = middle"][0]
    at_b = [r for r in rows if r["split key"] == "m = b"][0]
    # §4.5's observation: at the middle split key the two variants are
    # close (the basic trie often slightly smaller); at m = b only THCL
    # reaches 100%.
    assert at_b["thcl a%"] == 100
    assert at_b["basic a%"] < 95
    assert abs(at_mid["basic M"] - at_mid["thcl M"]) < 0.3 * at_mid["thcl M"]


def test_ablation_balance(benchmark, report):
    rows = once(benchmark, lambda: ablation_balance(count=5000, bucket_capacity=10))
    report(
        "ablation_balance",
        rows,
        "Ablation - trie balancing: depth before/after the canonical rebuild",
    )
    asc = [r for r in rows if r["workload"] == "ascending"][0]
    assert asc["balanced depth"] < asc["depth"]
    for r in rows:
        assert r["balanced depth"] <= r["depth"]


def test_ablation_buffer(benchmark, report):
    rows = once(
        benchmark,
        lambda: ablation_buffer(
            count=5000, bucket_capacity=10, buffer_sizes=(0, 16, 128)
        ),
    )
    report(
        "ablation_buffer",
        rows,
        "Ablation - bucket buffer pool size vs disk reads (500 probes)",
    )
    reads = [r["disk reads / 500 probes"] for r in rows]
    assert reads[0] == 500           # no cache: the paper's accounting
    assert reads[0] >= reads[1] >= reads[2]
