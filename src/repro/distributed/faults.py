"""Fault injection for the TH* message fabric.

The distributed analogue of :class:`~repro.storage.faults.FaultyDisk`:
:class:`FaultyRouter` wraps the delivery path of
:class:`~repro.distributed.router.Router` with a seeded deterministic
:class:`FaultPlan` that injects, per edge kind (``request`` / ``reply``
/ ``forward``) and per shard:

* **drops** — the message never arrives; the sender sees
  :class:`~repro.distributed.errors.MessageLostError`. A dropped
  *reply* is the interesting case: the server **did** execute the op,
  so a naïve retry would double-apply — the fault that forces the
  request-id dedup protocol.
* **duplicates** — the request is delivered twice; the second delivery
  must be absorbed by the owner's dedup window.
* **delays** — delivery takes simulated time on the router's logical
  clock; a round trip whose total elapsed time (request, forward and
  reply delays alike) exceeds the client's per-op ``timeout`` surfaces
  as :class:`~repro.distributed.errors.OpTimeoutError` (with the same
  already-executed ambiguity as a lost reply). The deadline is measured
  against the clock across the *whole* delivery, so a slow forward leg
  counts — the client's ``RetryPolicy.timeout`` is enforced, not
  merely carried.
* **crashes** — the target server crashes (losing its volatile state;
  a durable shard recovers from WAL + checkpoints on restart) and
  refuses connections with
  :class:`~repro.distributed.errors.ServerDownError` until its
  scheduled restart time on the simulated clock.

Time is simulated: the clock only advances through injected delays and
through clients sleeping out their retry backoff
(:meth:`FaultyRouter.sleep`), which is also what brings crashed servers
back — a client backing off long enough rides out any finite downtime.

Every injected fault is counted in ``dist_faults_total{kind,edge}`` and
(tracing on) emitted as a ``net_fault`` event, so a chaos run can be
reconciled fault by fault.
"""

from __future__ import annotations

import random
from typing import Optional

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import TRACER
from .codec import decode_op, encode_op, roundtrip_reply
from .errors import (
    ConfigurationError,
    MessageLostError,
    OpTimeoutError,
    UnknownShardError,
)
from .messages import Op, Reply
from .router import Router

__all__ = ["FaultPlan", "FaultDecision", "FaultyRouter", "RetryPolicy"]

#: The edge kinds a plan can schedule faults on.
EDGES = ("request", "reply", "forward", "replicate")


class FaultDecision:
    """What the plan decided for one delivery."""

    __slots__ = ("drop", "duplicate", "delay")

    def __init__(self, drop: bool = False, duplicate: bool = False, delay: float = 0.0):
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay


class RetryPolicy:
    """Client-side resilience knobs: deadline, budget, backoff shape.

    ``backoff(attempt, rng)`` is capped exponential
    (``base_delay * 2**(attempt-1)``, at most ``max_delay``) with
    multiplicative jitter: the full delay scaled by a uniform draw from
    ``[1 - jitter, 1]``, so retries de-synchronise without ever backing
    off *longer* than the cap.
    """

    __slots__ = ("max_retries", "base_delay", "max_delay", "timeout", "jitter")

    def __init__(
        self,
        max_retries: int = 10,
        base_delay: float = 0.005,
        max_delay: float = 0.5,
        timeout: float = 0.25,
        jitter: float = 0.5,
    ):
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if base_delay <= 0 or max_delay < base_delay:
            raise ConfigurationError("need 0 < base_delay <= max_delay")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.timeout = timeout
        self.jitter = jitter

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The sleep before retry number ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return delay * (1.0 - self.jitter * rng.random())


class FaultPlan:
    """A seeded deterministic fault schedule.

    ``drop`` / ``duplicate`` / ``delay`` / ``crash`` are global
    per-delivery probabilities; ``edges`` and ``shards`` optionally
    override any rate for one edge kind or one shard id (shard override
    wins over edge override wins over global). All decisions come from
    one private :class:`random.Random`, so the same plan against the
    same workload injects the same faults.

    Scripted one-shot faults (for targeted tests) are queued with
    :meth:`force` and consumed before any random draw. :meth:`heal`
    stops all injection — decisions become "no fault" without consuming
    randomness — which is how a chaos run lets the cluster converge.
    """

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        delay_seconds: tuple[float, float] = (0.001, 0.05),
        crash: float = 0.0,
        downtime: tuple[float, float] = (0.05, 0.25),
        edges: Optional[dict[str, dict[str, float]]] = None,
        shards: Optional[dict[int, dict[str, float]]] = None,
    ):
        for name, rate in (("drop", drop), ("duplicate", duplicate),
                           ("delay", delay), ("crash", crash)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} rate must be in [0, 1]")
        if edges is not None and set(edges) - set(EDGES):
            raise ConfigurationError(f"edge overrides must be among {EDGES}")
        self.rng = random.Random(seed)
        self.rates = {"drop": drop, "duplicate": duplicate,
                      "delay": delay, "crash": crash}
        self.delay_seconds = delay_seconds
        self.downtime = downtime
        self.edges = edges if edges is not None else {}
        self.shards = shards if shards is not None else {}
        self.active = True
        self._forced: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def rate(self, kind: str, edge: str, shard: int) -> float:
        """The effective rate for fault ``kind`` on ``edge`` to ``shard``."""
        by_shard = self.shards.get(shard)
        if by_shard is not None and kind in by_shard:
            return by_shard[kind]
        by_edge = self.edges.get(edge)
        if by_edge is not None and kind in by_edge:
            return by_edge[kind]
        return self.rates[kind]

    def force(self, edge: str, kind: str, count: int = 1) -> None:
        """Queue ``count`` scripted faults on ``edge`` (consumed first).

        ``kind`` is ``"drop"``, ``"duplicate"`` or ``"delay"``.
        """
        if edge not in EDGES:
            raise ConfigurationError(f"edge must be one of {EDGES}")
        if kind not in ("drop", "duplicate", "delay"):
            raise ConfigurationError("forced kind must be drop, duplicate or delay")
        self._forced.setdefault(edge, []).extend([kind] * count)

    def heal(self) -> None:
        """Stop injecting: every later decision is 'no fault'."""
        self.active = False
        self._forced.clear()

    def resume(self) -> None:
        """Resume injection after :meth:`heal`."""
        self.active = True

    # ------------------------------------------------------------------
    def decide(self, edge: str, shard: int) -> FaultDecision:
        """The (deterministic) fate of one delivery on ``edge``."""
        if not self.active:
            return FaultDecision()
        queue = self._forced.get(edge)
        if queue:
            kind = queue.pop(0)
            if kind == "drop":
                return FaultDecision(drop=True)
            if kind == "duplicate":
                return FaultDecision(duplicate=True)
            return FaultDecision(delay=self.delay_seconds[1])
        decision = FaultDecision()
        if self.rng.random() < self.rate("drop", edge, shard):
            decision.drop = True
            return decision  # a dropped message can be nothing else
        if self.rng.random() < self.rate("duplicate", edge, shard):
            decision.duplicate = True
        if self.rng.random() < self.rate("delay", edge, shard):
            lo, hi = self.delay_seconds
            decision.delay = lo + (hi - lo) * self.rng.random()
        return decision

    def decide_crash(self, shard: int) -> Optional[float]:
        """Crash ``shard`` now? Returns a downtime, or ``None``."""
        if not self.active:
            return None
        if self.rng.random() < self.rate("crash", "request", shard):
            lo, hi = self.downtime
            return lo + (hi - lo) * self.rng.random()
        return None


class FaultyRouter(Router):
    """A :class:`Router` whose deliveries run under a :class:`FaultPlan`."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        plan: Optional[FaultPlan] = None,
    ):
        super().__init__(registry)
        self.plan = plan if plan is not None else FaultPlan()
        #: The simulated clock (seconds); advances only through injected
        #: delays and client backoff sleeps.
        self.now = 0.0
        self.faults_injected = 0
        self.crash_cycles = 0
        self._restart_at: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Clock and lifecycle
    # ------------------------------------------------------------------
    def sleep(self, seconds: float) -> None:
        """Advance the simulated clock (client retry backoff)."""
        self.now += seconds
        self._tick()

    def _tick(self) -> None:
        """Restart due servers, then run the failure-detection hook."""
        due = [s for s, at in self._restart_at.items() if at <= self.now]
        for shard_id in due:
            del self._restart_at[shard_id]
            server = self.servers.get(shard_id)
            # The id may have been rebound to a promoted server in the
            # meantime — a live server must not be bounced by the dead
            # one's leftover restart schedule.
            if server is not None and server.down:
                server.restart()
        if self.on_tick is not None:
            self.on_tick(self.now)

    def crash_server(self, shard_id: int, downtime: Optional[float] = None) -> None:
        """Crash ``shard_id``; auto-restart after ``downtime`` sim-seconds.

        With ``downtime=None`` the server stays down until someone calls
        its :meth:`~repro.distributed.server.ShardServer.restart`.
        """
        server = self.servers.get(shard_id)
        if server is None:
            raise UnknownShardError(f"no server for shard {shard_id}")
        if server.down:
            return
        server.crash()
        self.crash_cycles += 1
        if downtime is not None:
            self._restart_at[shard_id] = self.now + downtime

    def restore_all(self) -> None:
        """Restart every crashed server immediately (end of a chaos run)."""
        self._restart_at.clear()
        for server in self.servers.values():
            if server.down:
                server.restart()

    # ------------------------------------------------------------------
    # Fault bookkeeping
    # ------------------------------------------------------------------
    def _fault(self, kind: str, edge: str, shard: int) -> None:
        self.faults_injected += 1
        self.registry.counter(
            "dist_faults_total", {"kind": kind, "edge": edge}
        ).inc()
        if TRACER.enabled:
            TRACER.emit("net_fault", kind=kind, edge=edge, shard=shard)

    def _lookup(self, shard_id: int, edge: str = "request"):
        from .errors import ServerDownError

        try:
            return super()._lookup(shard_id, edge)
        except ServerDownError:
            self._fault("server_down", edge, shard_id)
            raise

    def _maybe_crash(self, shard_id: int) -> None:
        downtime = self.plan.decide_crash(shard_id)
        if downtime is not None:
            self._fault("crash", "request", shard_id)
            self.crash_server(shard_id, downtime=downtime)

    # ------------------------------------------------------------------
    # Delivery under faults
    # ------------------------------------------------------------------
    def client_send(
        self, shard_id: int, op: Op, timeout: Optional[float] = None
    ) -> Reply:
        self._tick()
        self._maybe_crash(shard_id)
        server = self._lookup(shard_id, "request")
        decision = self.plan.decide("request", shard_id)
        if decision.drop:
            self._fault("drop", "request", shard_id)
            raise MessageLostError(f"request to shard {shard_id} lost")
        # The per-op deadline is measured on the clock across the whole
        # delivery: request delay, any forward-leg delays the handler
        # incurs (they advance ``self.now`` inside ``handle``), and the
        # reply delay all count against ``timeout``.
        sent_at = self.now
        if decision.delay:
            self._fault("delay", "request", shard_id)
            self.now += decision.delay
        self._count("request")
        # One encode per logical send: a duplicated delivery hands the
        # server a second decode of the *same bytes*, exactly what a
        # network duplicate looks like.
        wire = encode_op(op)
        reply = server.handle(decode_op(wire))
        if decision.duplicate:
            # The fabric delivered the request twice; the second
            # execution must be absorbed by the owner's dedup window.
            self._fault("duplicate", "request", shard_id)
            self._count("request")
            reply = server.handle(decode_op(wire))
        back = self.plan.decide("reply", shard_id)
        if back.drop:
            # The op executed; the client just never hears about it.
            self._fault("drop", "reply", shard_id)
            raise MessageLostError(f"reply from shard {shard_id} lost")
        if back.delay:
            self._fault("delay", "reply", shard_id)
            self.now += back.delay
        elapsed = self.now - sent_at
        if timeout is not None and elapsed > timeout:
            # The reply exists but arrived after the client gave up.
            self._fault("timeout", "reply", shard_id)
            raise OpTimeoutError(
                f"shard {shard_id} answered in {elapsed:.4f}s > {timeout:.4f}s"
            )
        self._count("reply")
        return roundtrip_reply(reply)

    def forward(self, source: int, target: int, op: Op) -> Reply:
        self._tick()
        server = self._lookup(target, "forward")
        decision = self.plan.decide("forward", target)
        if decision.drop:
            self._fault("drop", "forward", target)
            raise MessageLostError(f"forward {source}->{target} lost")
        if decision.delay:
            self._fault("delay", "forward", target)
            self.now += decision.delay
        self._count("forward")
        self.forwards += 1
        self.registry.counter(
            "dist_forwards_total", {"src": source, "dst": target}
        ).inc()
        if TRACER.enabled:
            TRACER.emit("forward", src=source, dst=target, op=op.kind)
        wire = encode_op(op)
        reply = server.handle(decode_op(wire))
        if decision.duplicate:
            self._fault("duplicate", "forward", target)
            self._count("forward")
            reply = server.handle(decode_op(wire))
        self._count("reply")
        reply = roundtrip_reply(reply)
        reply.forwards += 1
        return reply

    def replicate(self, source: int, target: int, op: Op) -> Reply:
        """A shipping leg under faults (no tick: runs mid-delivery).

        A dropped ship surfaces as :class:`MessageLostError` for the
        primary's retry/repair ladder; a duplicated ship delivers the
        same bytes twice and the backup's sequence numbers absorb the
        replay — the replication-protocol mirror of the client-edge
        dedup guarantee.
        """
        server = self._lookup(target, "replicate")
        decision = self.plan.decide("replicate", target)
        if decision.drop:
            self._fault("drop", "replicate", target)
            raise MessageLostError(f"ship {source}->{target} lost")
        if decision.delay:
            self._fault("delay", "replicate", target)
            self.now += decision.delay
        self._count("replicate")
        self.registry.counter(
            "dist_replicate_total", {"src": source, "dst": target}
        ).inc()
        if TRACER.enabled:
            TRACER.emit("replicate", src=source, dst=target, op=op.kind)
        wire = encode_op(op)
        reply = server.handle(decode_op(wire))
        if decision.duplicate:
            self._fault("duplicate", "replicate", target)
            self._count("replicate")
            reply = server.handle(decode_op(wire))
        self._count("reply")
        return roundtrip_reply(reply)
