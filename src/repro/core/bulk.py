"""Bottom-up bulk loading of trie-hashing files.

Building a compact file through the insertion algorithm costs a split
per bucket; a bulk load from sorted input can instead cut the key
sequence into buckets directly and synthesise the trie in one pass —
the same shortcut :func:`repro.btree.bulk_load_compact` provides for the
B-tree baseline. The result is indistinguishable from a THCL ``d = 0``
load (same boundaries as deterministic adjacent-pair splits, canonically
balanced shape) at a fraction of the construction cost.

The boundary between consecutive buckets is the shortest prefix
separating the last key of one from the first key of the next (exactly
step 1 of A2 with the adjacent bounding key); missing prefixes are added
with THCL shared leaves to keep the set prefix-closed.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import Optional

from ..storage.buckets import BucketStore
from .alphabet import DEFAULT_ALPHABET, Alphabet
from .boundaries import BoundaryModel
from .errors import CapacityError
from .file import THFile
from .keys import split_string
from .policies import SplitPolicy

__all__ = ["bulk_load_th"]


def bulk_load_th(
    records: Iterable[tuple[str, object]],
    bucket_capacity: int = 20,
    fill: float = 1.0,
    policy: Optional[SplitPolicy] = None,
    alphabet: Alphabet = DEFAULT_ALPHABET,
    trie_backend: str = "cells",
) -> THFile:
    """Build a THCL file bottom-up from sorted, unique records.

    ``fill`` sets the per-bucket record count (1.0 = the compact file).
    The returned file carries a THCL policy (``thcl_guaranteed_half`` by
    default) so subsequent updates behave sensibly. ``trie_backend``
    picks the in-memory trie representation exactly as on
    :class:`~repro.core.file.THFile`.
    """
    if not 0.0 < fill <= 1.0:
        raise CapacityError("fill must be in (0, 1]")
    # Ceiling, not round(): banker's rounding would under-fill (e.g.
    # fill=0.5, b=5 -> 2-record buckets, a 0.4 load) and break the
    # guaranteed-load contract that every bucket holds >= fill * b.
    # The epsilon keeps float noise just above an integer from bumping
    # the count to the next one.
    per_bucket = min(
        bucket_capacity, max(1, math.ceil(fill * bucket_capacity - 1e-9))
    )
    policy = policy or SplitPolicy.thcl_guaranteed_half()
    if policy.nil_nodes:
        raise CapacityError("bulk loading builds THCL (shared-leaf) files")

    file = THFile(
        bucket_capacity,
        policy,
        alphabet,
        store=BucketStore(),
        trie_backend=trie_backend,
    )
    bucket = file.store.peek(0)
    address = 0
    count = 0
    previous_key: Optional[str] = None
    cuts = []  # (boundary, left bucket address)

    for key, value in records:
        key = alphabet.validate_key(key)
        if previous_key is not None and key <= previous_key:
            raise CapacityError("bulk load requires sorted, unique keys")
        if len(bucket) >= per_bucket:
            boundary = split_string(previous_key, key, alphabet)
            cuts.append((boundary, address))
            file.store.write(address, bucket)
            address = file.store.allocate()
            bucket = file.store.peek(address)
        bucket.insert(key, value)
        previous_key = key
        count += 1
    file.store.write(address, bucket)

    # Assemble the boundary model: the cuts plus prefix-closure fills.
    model = BoundaryModel(alphabet, [], [0])
    for boundary, left in cuts:
        model.insert_boundary(boundary, left, left + 1)
    for boundary, _ in cuts:
        for l in range(1, len(boundary)):
            prefix = boundary[:l]
            if not model.has_boundary(prefix):
                child = model.children[model.gap_for_boundary(prefix)]
                model.insert_boundary(prefix, child, child)
    file.trie = type(file.trie).from_model(model)
    file._size = count

    # Record the right cuts in the bucket headers (reconstruction).
    for boundary, left in cuts:
        file.store.peek(left).header_path = boundary
    file.stats.splits = len(cuts)
    file.stats.nodes_added = file.trie.node_count
    return file
