"""The asyncio serving tier: real sockets in front of the shard layer.

:mod:`repro.serving` turns the in-process distributed fabric into a
network service without changing a line of the protocol logic above
it: :class:`ServingServer` fronts an ordinary
:class:`~repro.distributed.coordinator.Cluster` over TCP or a
Unix-domain socket, and :class:`RemoteTransport` is a synchronous
:class:`~repro.distributed.transport.Transport` facade, so the same
:class:`~repro.distributed.client.DistributedFile` — image routing,
IAM patching, retries, request-id dedup — runs unmodified over a real
wire. :class:`FaultyRemoteTransport` replays
:class:`~repro.distributed.faults.FaultPlan` schedules over that wire,
so the chaos differential holds against live sockets too.

See ``docs/SERVING.md`` for the frame format and protocol contract.
"""

from .client import (
    AsyncClient,
    LoopRunner,
    RemoteCluster,
    RemoteSession,
    RemoteTransport,
    connect,
)
from .faults import FaultyRemoteTransport
from .frames import DEFAULT_MAX_FRAME, read_frame
from .server import ServingServer
from .testing import ServingFixture

__all__ = [
    "AsyncClient",
    "LoopRunner",
    "RemoteCluster",
    "RemoteSession",
    "RemoteTransport",
    "connect",
    "FaultyRemoteTransport",
    "DEFAULT_MAX_FRAME",
    "read_frame",
    "ServingServer",
    "ServingFixture",
]
