"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper (see
EXPERIMENTS.md). The ``report`` fixture prints the reproduced table on
the real stdout (even under pytest capture) and archives it under
``benchmarks/results/`` so a plain ``pytest benchmarks/ --benchmark-only``
run leaves the full reproduction on disk.

Observability: set ``REPRO_OBS=1`` in the environment to run every
benchmark under the :mod:`repro.obs` tracer. Each reported experiment
then also archives a ``results/<name>.metrics.json`` snapshot (event
counts, per-operation access histograms, buffer hit rate) next to its
table. Tracing stays off by default so throughput numbers remain
comparable with the seed.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis import format_table
from repro.obs import MetricsRecorder, MetricsRegistry, TRACER, metrics_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def obs_registry():
    """A per-test metrics registry, active only under ``REPRO_OBS=1``."""
    if not os.environ.get("REPRO_OBS"):
        yield None
        return
    registry = MetricsRegistry()
    TRACER.activate([MetricsRecorder(registry)])
    try:
        yield registry
    finally:
        TRACER.deactivate()


@pytest.fixture
def report(capsys, obs_registry):
    """Print and archive an experiment's table (plus metrics when traced)."""

    def _report(name: str, rows, title: str) -> None:
        text = format_table(rows, title=title)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if obs_registry is not None:
            (RESULTS_DIR / f"{name}.metrics.json").write_text(
                metrics_json(obs_registry) + "\n"
            )
        with capsys.disabled():
            print()
            print(text)

    return _report


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
