"""Primary/backup replication, automatic failover and live migration.

Four layers over :mod:`repro.distributed.replication`:

* policy validation and wiring (a replicated cluster builds backups,
  ships every commit, keeps backups byte-identical through splits);
* targeted failure drills — permanent primary kills must end in a
  promotion that loses no acked write and double-applies nothing,
  transient crashes must *not* depose, a degraded backup must refuse
  promotion;
* live migration under concurrent writes, including the dedup window
  travelling with the region across the cutover;
* the replication chaos acceptance run (sim and UDS transports) and a
  Hypothesis stateful machine interleaving ops, kills, failovers and
  migrations against a dict model.
"""

import string

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro import Cluster, ShardPolicy
from repro.distributed import (
    FaultPlan,
    ReplicationPolicy,
    RetryPolicy,
    run_chaos,
)
from repro.distributed.errors import ConfigurationError
from repro.distributed.messages import Op


def _counter_sum(registry, name):
    return sum(
        inst.value
        for inst in registry.instruments()
        if inst.name == name and not hasattr(inst, "set") and hasattr(inst, "value")
    )


def _cluster(plan=None, **kwargs):
    """A durable semisync cluster on the fault-injecting fabric."""
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("durable", True)
    kwargs.setdefault("replication", "semisync")
    kwargs.setdefault("shard_policy", ShardPolicy(shard_capacity=64))
    return Cluster(faults=plan if plan is not None else FaultPlan(), **kwargs)


def _keys(count, prefix=""):
    letters = string.ascii_lowercase
    out = []
    n = 0
    while len(out) < count:
        word = prefix
        i = n
        for _ in range(3):
            word += letters[i % 26]
            i //= 26
        out.append(word)
        n += 1
    return out


def _settle(cluster, seconds=0.5, step=0.02):
    """Advance the fabric clock so detector sweeps run."""
    ticks = int(seconds / step) + 1
    for _ in range(ticks):
        cluster.router.sleep(step)


# ======================================================================
# Policy validation
# ======================================================================
class TestReplicationPolicy:
    def test_mode_validated(self):
        with pytest.raises(ConfigurationError):
            ReplicationPolicy(mode="sync")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval": 0.0},
            {"failover_after": 0.0},
            {"failover_after": -1.0},
            {"ship_retries": -1},
            {"staleness_bound": -1},
        ],
    )
    def test_bounds_validated(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReplicationPolicy(**kwargs)

    def test_semisync_property(self):
        assert ReplicationPolicy(mode="semisync").semisync
        assert not ReplicationPolicy(mode="async").semisync

    def test_cluster_rejects_unknown_mode_string(self):
        with pytest.raises(ConfigurationError):
            Cluster(shards=1, durable=True, replication="paxos")

    def test_cluster_rejects_non_policy_object(self):
        with pytest.raises(ConfigurationError):
            Cluster(shards=1, durable=True, replication=3.14)

    def test_kill_cycles_require_replication(self):
        with pytest.raises(ConfigurationError):
            run_chaos(ops=10, kill_cycles=1)


# ======================================================================
# WAL shipping keeps backups identical
# ======================================================================
class TestShipping:
    def test_every_primary_gets_a_backup(self):
        cluster = _cluster(shards=3)
        coord = cluster.coordinator
        assert set(coord.replicas) == set(coord.servers)
        for sid in coord.servers:
            assert coord.replica_of(sid) is not None
        # Backups are shadow capacity, not partition members.
        assert cluster.shard_count() == 3

    def test_committed_batches_arrive_and_backups_match(self):
        cluster = _cluster()
        f = cluster.client(warm=True)
        for k in _keys(120):
            f.insert(k, k.upper())
        cluster.check()  # includes byte-identical backup comparison
        for sid, primary in cluster.coordinator.servers.items():
            backup = cluster.coordinator.replicas[sid]
            assert sorted(backup.items()) == sorted(primary.items())
            assert primary.replicator.behind == 0
            assert not primary.replicator.degraded

    def test_backups_follow_through_splits(self):
        cluster = _cluster(shards=1, shard_policy=ShardPolicy(shard_capacity=24))
        f = cluster.client(warm=True)
        for k in _keys(150):
            f.insert(k)
        coord = cluster.coordinator
        assert cluster.shard_count() > 1  # scale-out happened under load
        assert set(coord.replicas) == set(coord.servers)
        cluster.check()

    def test_semisync_rides_out_a_dropped_ship(self):
        plan = FaultPlan()
        cluster = _cluster(plan)
        f = cluster.client(warm=True)
        f.insert("apple", "one")
        plan.force("replicate", "drop")
        f.insert("banana", "two")  # ship retried inside the commit path
        cluster.check()
        assert cluster.router.duplicate_applies() == 0
        for primary in cluster.coordinator.servers.values():
            assert not primary.replicator.degraded

    def test_duplicated_ship_absorbed_by_sequence_numbers(self):
        plan = FaultPlan()
        cluster = _cluster(plan)
        f = cluster.client(warm=True)
        plan.force("replicate", "duplicate")
        f.insert("cherry", "three")
        cluster.check()
        assert cluster.router.duplicate_applies() == 0

    def test_async_mode_repairs_on_next_ship(self):
        plan = FaultPlan()
        cluster = _cluster(plan, replication="async")
        f = cluster.client(warm=True)
        f.insert("apple", "one")
        plan.force("replicate", "drop")
        f.insert("banana", "two")  # fire-and-forget: this batch is lost
        f.insert("cherry", "three")  # gap detected -> catch-up or resync
        cluster.check()
        repaired = sum(
            p.replicator.catchups + p.replicator.resyncs
            for p in cluster.coordinator.servers.values()
        )
        assert repaired >= 1
        assert cluster.router.duplicate_applies() == 0

    def test_crashed_backup_forces_full_resync(self):
        cluster = _cluster(shards=1)
        f = cluster.client(warm=True)
        for k in _keys(40):
            f.insert(k)
        backup = cluster.coordinator.replicas[0]
        backup.crash()
        backup.restart()
        assert backup.replica_state is None  # shipping state is volatile
        before = cluster.coordinator.servers[0].replicator.resyncs
        f.insert("zzz", "late")
        assert cluster.coordinator.servers[0].replicator.resyncs == before + 1
        cluster.check()


# ======================================================================
# Failover
# ======================================================================
class TestFailover:
    def test_permanent_kill_promotes_the_backup(self):
        cluster = _cluster()
        f = cluster.client(warm=True)
        keys = _keys(80)
        for k in keys:
            f.insert(k, k)
        victim = 0
        promoted = cluster.coordinator.replica_of(victim)
        cluster.router.crash_server(victim, downtime=None)
        _settle(cluster)
        log = cluster.coordinator.failover_log
        assert [e["shard"] for e in log] == [victim]
        assert log[0]["promoted"] == promoted
        assert victim not in cluster.coordinator.servers
        assert promoted in cluster.coordinator.servers
        # Every acked write survives; stale clients converge via IAMs.
        cold = cluster.client()
        for k in keys:
            assert cold.get(k) == k
        # The promoted primary serves writes and has a fresh backup.
        f.put("after", "failover")
        assert cluster.coordinator.replica_of(promoted) is not None
        cluster.check()
        assert cluster.router.duplicate_applies() == 0
        assert _counter_sum(cluster.registry, "dist_failovers_total") == 1

    def test_transient_crash_is_not_deposed(self):
        cluster = _cluster()
        f = cluster.client(warm=True)
        f.insert("apple", "one")
        cluster.router.crash_server(0, downtime=0.1)  # < failover_after
        _settle(cluster)
        assert cluster.coordinator.failover_log == []
        assert 0 in cluster.coordinator.servers
        assert not cluster.coordinator.servers[0].down
        assert f.get("apple") == "one"

    def test_degraded_backup_refuses_promotion(self):
        cluster = _cluster(shards=1)
        f = cluster.client(warm=True)
        f.insert("apple", "one")
        backup = cluster.coordinator.replicas[0]
        backup.crash()
        f.insert("banana", "two")  # semisync ship fails hard -> degraded
        primary = cluster.coordinator.servers[0]
        assert primary.replicator.degraded
        backup.restart()  # back up, but possibly missing acked writes
        cluster.router.crash_server(0, downtime=None)
        assert cluster.coordinator.failover(0) is False
        assert cluster.coordinator.failover_log == []

    def test_exactly_once_across_promotion(self):
        """A retry landing after the failover still dedups.

        The reply to a mutation is lost; the primary dies before the
        client retries. The dedup window shipped with the WAL means the
        promoted backup recognises the rid and absorbs the replay
        instead of double-applying.
        """
        cluster = _cluster(shards=1)
        router = cluster.router
        f = cluster.client(warm=True)
        f.insert("apple", "A")
        op = Op.insert("pear", "P")
        op.rid = (99, 1)
        first = router.client_send(0, op)
        assert first.error is None  # acked -> shipped to the backup
        cluster.router.crash_server(0, downtime=None)
        _settle(cluster)
        assert len(cluster.coordinator.failover_log) == 1
        retry = router.client_send(0, op)  # rebound id -> promoted backup
        assert retry.error is None  # dedup hit, not DuplicateKeyError
        assert router.duplicate_applies() == 0
        assert cluster.client().get("pear") == "P"

    def test_writes_to_the_dead_id_heal_through_retries(self):
        """A client mid-flight when the primary dies rides it out."""
        cluster = _cluster(retry=RetryPolicy(max_retries=40))
        f = cluster.client(warm=True)
        f.insert("apple", "one")
        cluster.router.crash_server(0, downtime=None)
        # No manual settling: the retry backoff sleeps advance the
        # fabric clock, which drives the detector to the promotion.
        f.put("apple", "two")
        assert len(cluster.coordinator.failover_log) == 1
        assert f.get("apple") == "two"
        assert cluster.router.duplicate_applies() == 0


# ======================================================================
# Read replicas
# ======================================================================
class TestReadReplicas:
    def test_replica_scans_serve_when_in_sync(self):
        cluster = _cluster()
        f = cluster.client(warm=True)
        keys = _keys(60)
        for k in keys:
            f.insert(k, k)
        reader = cluster.client(warm=True, read_preference="replica")
        assert sorted(k for k, _ in reader.items()) == sorted(set(keys))
        assert reader.replica_fallbacks == 0

    def test_stateless_replica_falls_back_to_primary(self):
        cluster = _cluster()
        f = cluster.client(warm=True)
        keys = _keys(60)
        for k in keys:
            f.insert(k, k)
        for backup in cluster.coordinator.replicas.values():
            backup.crash()
            backup.restart()  # up, but with no shipping state
        reader = cluster.client(warm=True, read_preference="replica")
        assert sorted(k for k, _ in reader.items()) == sorted(set(keys))
        assert reader.replica_fallbacks >= 1
        assert _counter_sum(
            cluster.registry, "dist_replica_fallbacks_total"
        ) >= 1

    def test_known_lag_beyond_bound_refused(self):
        cluster = _cluster(shards=1)
        f = cluster.client(warm=True)
        for k in _keys(30):
            f.insert(k, k)
        backup = cluster.coordinator.replicas[0]
        backup.replica_state.lag = 2  # beyond the default bound of 0
        reader = cluster.client(warm=True, read_preference="replica")
        assert len(list(reader.items())) == 30
        assert reader.replica_fallbacks >= 1

    def test_read_preference_validated(self):
        cluster = _cluster()
        with pytest.raises(ConfigurationError):
            cluster.client(read_preference="nearest")


# ======================================================================
# Live migration
# ======================================================================
class TestMigration:
    def test_migrate_under_concurrent_writes(self):
        cluster = _cluster()
        f = cluster.client(warm=True)
        keys = _keys(120)
        for k in keys:
            f.insert(k, "v1")
        source = min(cluster.coordinator.servers)
        hot = [k for k in keys if cluster.coordinator.owner_of(k) == source]
        assert hot  # the moving region must actually hold records
        cluster.coordinator.start_migration(source, chunk_size=16)
        moved = 0
        while cluster.coordinator.step_migration(source):
            # Writes keep landing in the moving region mid-copy.
            f.put(hot[moved % len(hot)], "v2")
            moved += 1
        assert moved > 0  # chunked copy interleaved with the load
        new_id = cluster.coordinator.finish_migration(source)
        assert new_id is not None
        assert not cluster.coordinator.migrations
        assert _counter_sum(cluster.registry, "dist_migrations_total") == 1
        cluster.check()
        # Values written during the copy window won; nothing was lost.
        got = dict(cluster.client(warm=True).items())
        assert set(got) == set(keys)
        for k in hot[:moved]:
            assert got[k] == "v2"
        assert cluster.router.duplicate_applies() == 0

    def test_stale_clients_converge_through_forwarding(self):
        cluster = _cluster()
        stale = cluster.client(warm=True)  # snapshots the old partition
        f = cluster.client(warm=True)
        keys = _keys(80)
        for k in keys:
            f.insert(k, k)
        source = min(cluster.coordinator.servers)
        cluster.coordinator.start_migration(source, chunk_size=32)
        while cluster.coordinator.step_migration(source):
            pass
        assert cluster.coordinator.finish_migration(source) is not None
        for k in keys:
            assert stale.get(k) == k  # old image -> forwarded + IAM
        cluster.check()

    def test_dedup_window_travels_with_the_region(self):
        """A replay arriving after the cutover is still absorbed."""
        cluster = _cluster(shards=1)
        router = cluster.router
        f = cluster.client(warm=True)
        for k in _keys(40):
            f.insert(k)
        op = Op.insert("mango", "M")
        op.rid = (55, 7)
        assert router.client_send(0, op).error is None
        cluster.coordinator.start_migration(0, chunk_size=16)
        while cluster.coordinator.step_migration(0):
            pass
        new_id = cluster.coordinator.finish_migration(0)
        assert new_id is not None
        replay = router.client_send(new_id, op)
        assert replay.error is None  # dedup hit on the migrated window
        assert router.duplicate_applies() == 0

    def test_cutover_barrier_aborts_when_the_source_is_down(self):
        """A dead source's unreplayed tail cannot be trusted: abort.

        The region stays where it was (recovery / failover own the
        problem); once the source is back a fresh migration succeeds.
        """
        cluster = _cluster()
        f = cluster.client(warm=True)
        keys = _keys(60)
        for k in keys:
            f.insert(k, k)
        source = min(cluster.coordinator.servers)
        cluster.coordinator.start_migration(source, chunk_size=16)
        cluster.coordinator.step_migration(source)
        cluster.router.crash_server(source, downtime=0.05)
        assert cluster.coordinator.finish_migration(source) is None  # aborted
        assert source not in cluster.coordinator.migrations
        assert source in cluster.coordinator.servers  # region did not move
        _settle(cluster, seconds=0.1)  # transient crash: source restarts
        assert not cluster.coordinator.servers[source].down
        cluster.coordinator.start_migration(source, chunk_size=16)
        while cluster.coordinator.step_migration(source):
            pass
        assert cluster.coordinator.finish_migration(source) is not None
        assert dict(cluster.client(warm=True).items()) == {k: k for k in keys}
        cluster.check()


# ======================================================================
# Chaos acceptance: kills + failovers + migration under faults
# ======================================================================
class TestReplicationChaos:
    def test_sim_transport_converges_through_kills_and_migrations(self):
        report = run_chaos(
            ops=600,
            shards=3,
            seed=7,
            durable=True,
            drop=0.01,
            duplicate=0.01,
            delay=0.01,
            crash_cycles=0,
            shard_capacity=128,
            replication="semisync",
            kill_cycles=3,
            migrate_cycles=1,
        )
        assert report.converged
        assert report.kills == 3
        assert report.failovers >= 3
        assert report.migrations >= 1
        assert report.duplicate_applies == 0
        assert report.failover_mttr > 0

    def test_async_mode_converges(self):
        report = run_chaos(
            ops=400,
            shards=2,
            seed=3,
            durable=True,
            crash_cycles=0,
            shard_capacity=128,
            replication="async",
            kill_cycles=1,
        )
        assert report.converged
        assert report.failovers >= 1
        assert report.duplicate_applies == 0

    def test_uds_transport_converges_through_kills_and_migrations(self):
        report = run_chaos(
            ops=400,
            shards=3,
            seed=7,
            durable=True,
            drop=0.01,
            duplicate=0.01,
            delay=0.01,
            crash_cycles=0,
            shard_capacity=128,
            replication="semisync",
            kill_cycles=2,
            migrate_cycles=1,
            transport="uds",
        )
        assert report.converged
        assert report.kills == 2
        assert report.failovers >= 2
        assert report.migrations >= 1
        assert report.duplicate_applies == 0


# ======================================================================
# Hypothesis: ops, kills, failovers and migrations vs a dict model
# ======================================================================
keys_st = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)


class ReplicatedAgainstDict(RuleBasedStateMachine):
    """Mixed ops while primaries get killed, promoted and migrated."""

    @initialize(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.sampled_from([0.0, 0.02]),
    )
    def setup(self, seed, rate):
        self.plan = FaultPlan(
            seed=seed, drop=rate, duplicate=rate, delay=rate,
            delay_seconds=(0.001, 0.01),
        )
        self.cluster = Cluster(
            shards=2,
            durable=True,
            shard_policy=ShardPolicy(shard_capacity=32),
            faults=self.plan,
            retry=RetryPolicy(max_retries=16),
            replication="semisync",
        )
        self.client = self.cluster.client()
        self.model = {}
        self.killed = 0

    @rule(key=keys_st, value=keys_st)
    def put(self, key, value):
        self.client.put(key, value)
        self.model[key] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.client.delete(key) == self.model.pop(key)

    @rule(key=keys_st)
    def lookup(self, key):
        assert self.client.contains(key) == (key in self.model)

    def _viable_victims(self):
        coord = self.cluster.coordinator
        out = []
        for sid, srv in coord.servers.items():
            if srv.down or sid in coord.migrations:
                continue
            backup = coord.replicas.get(sid)
            rep = srv.replicator
            if backup is None or backup.down or rep is None or rep.degraded:
                continue
            out.append(sid)
        return sorted(out)

    @precondition(lambda self: self.killed < 3)
    @rule(data=st.data())
    def kill_and_fail_over(self, data):
        victims = self._viable_victims()
        if not victims:
            return
        sid = data.draw(st.sampled_from(victims))
        before = len(self.cluster.coordinator.failover_log)
        self.cluster.router.crash_server(sid, downtime=None)
        self.killed += 1
        for _ in range(25):
            self.cluster.router.sleep(0.02)
        assert len(self.cluster.coordinator.failover_log) == before + 1

    @rule(data=st.data())
    def migrate_one_region(self, data):
        coord = self.cluster.coordinator
        movable = [
            sid for sid, srv in coord.servers.items()
            if not srv.down and sid not in coord.migrations
        ]
        if not movable:
            return
        sid = data.draw(st.sampled_from(sorted(movable)))
        coord.start_migration(sid, chunk_size=16)
        while coord.step_migration(sid):
            pass
        assert coord.finish_migration(sid) is not None

    def teardown(self):
        self.plan.heal()
        self.cluster.router.restore_all()
        self.cluster.check()
        assert dict(self.client.items()) == self.model
        assert self.cluster.router.duplicate_applies() == 0


TestReplicatedStateful = ReplicatedAgainstDict.TestCase
TestReplicatedStateful.settings = settings(deadline=None)
