"""Paranoid-mode integration: audits run after every mutating op.

With paranoid mode on, :func:`repro.check.maybe_audit` re-audits the
touched structure at each mutation site in the chaos harness and the
stateful machines. These tests drive real workloads end-to-end under
the switch — a clean run proves the hooks are wired and cheap enough,
and the corruption test proves a violation stops the run at the op
that introduced it."""

import pytest
from hypothesis import settings
from hypothesis.stateful import run_state_machine_as_test

from repro.check import ParanoidAuditError, maybe_audit, set_paranoid
from repro.distributed.chaos import run_chaos


@pytest.fixture
def paranoid():
    set_paranoid(True)
    yield
    set_paranoid(None)


def test_chaos_run_under_paranoid_audits(paranoid):
    # Every insert/delete/put re-audits the oracle THFile and the whole
    # cluster (PARANOID level: full sweep + reconstruction oracle), with
    # crash cycles and message faults active throughout.
    report = run_chaos(ops=150, shards=3, seed=11, crash_cycles=2)
    assert report.converged
    assert report.duplicate_applies == 0


def test_chaos_env_var_path(monkeypatch):
    # The env-var spelling (REPRO_PARANOID=1) reaches the same hooks.
    monkeypatch.setenv("REPRO_PARANOID", "1")
    report = run_chaos(ops=60, shards=2, seed=5, crash_cycles=1)
    assert report.converged


def test_durability_machine_under_paranoid_audits(paranoid):
    # The Hypothesis durability machine (insert/put/delete/crash/recover
    # against a dict model) audits the DurableFile after every mutation
    # and after every crash recovery.
    from tests.test_stateful import DurableAgainstDict

    run_state_machine_as_test(
        DurableAgainstDict,
        settings=settings(
            max_examples=5, stateful_step_count=25, deadline=None
        ),
    )


def test_paranoid_audit_stops_at_the_corrupting_op(paranoid):
    from repro import THFile
    from repro.workloads import KeyGenerator

    f = THFile(bucket_capacity=4)
    for k in KeyGenerator(9).uniform(80):
        f.insert(k)
        maybe_audit(f, f"insert {k!r}")  # clean all the way
    f._size -= 2  # simulate a lost-update bug
    with pytest.raises(ParanoidAuditError):
        maybe_audit(f, "after the buggy op")


def test_mutators_route_through_the_hook_themselves(paranoid):
    # TH014 regression: the mutating methods call maybe_audit directly —
    # no harness cooperation needed. A corruption introduced behind the
    # structure's back surfaces at the *next* mutation, whoever makes it.
    from repro import THFile

    f = THFile(bucket_capacity=4)
    f.insert("abc")
    f._size += 3  # phantom records
    with pytest.raises(ParanoidAuditError):
        f.put("abd")


def test_self_auditing_mutators_run_clean(paranoid):
    # Each audited structure's own mutation path audits (and passes) —
    # including PARANOID-level reconstruction oracles re-running the very
    # mutators that triggered them (the hook's reentrancy guard).
    from repro import BPlusTree, MLTHFile, THFile
    from repro.workloads import KeyGenerator

    keys = list(KeyGenerator(3).uniform(40))
    for make in (
        lambda: THFile(bucket_capacity=4),
        lambda: MLTHFile(bucket_capacity=4, page_capacity=8),
        lambda: BPlusTree(leaf_capacity=4, branch_capacity=4),
    ):
        f = make()
        for k in keys:
            f.put(k, "v")
        for k in keys[::3]:
            f.delete(k)
