"""Async length-prefixed frame I/O shared by the server and the client.

A frame on the stream is ``u32 length | frame body``, where the body is
what :func:`~repro.distributed.codec.pack_frame` produced (version,
kind, correlation id, payload) and ``length`` counts the body alone.
Reading is the only shared concern — writing is ``writer.write(frame)``
since :func:`~repro.distributed.codec.pack_frame` already emits the
length prefix.
"""

from __future__ import annotations

import asyncio
import struct

from ..distributed.codec import unpack_frame
from ..distributed.errors import ProtocolError

__all__ = ["DEFAULT_MAX_FRAME", "read_frame"]

_U32 = struct.Struct(">I")

#: A frame larger than this is wire damage, not a workload: the biggest
#: legitimate payloads are batched ``put_many`` legs, far below 8 MiB.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple[int, int, bytes]:
    """Read one frame; returns ``(kind, corr_id, payload)``.

    Raises :class:`~asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`~repro.distributed.errors.ProtocolError` on an oversized
    length prefix or an incompatible wire version.
    """
    head = await reader.readexactly(4)
    (length,) = _U32.unpack(head)
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte cap"
        )
    body = await reader.readexactly(length)
    return unpack_frame(body)
