"""Deferred splitting through overflow chaining (Section 6 future work).

The paper closes by noting that "the ideas of 'overflow' ... that worked
fine for a B-tree, should reveal equally useful" for trie hashing. This
variant implements the classic scheme: an overflowing bucket first
spills into a private *overflow bucket*; only when primary + overflow
are both full does the bucket really split (over the union of records).

The trade is the textbook one, and the ablation bench measures it:
deferred splitting raises the bucket load factor well above the ~70%
baseline, while an (increasingly likely) second disk access appears on
searches that fall through to the overflow bucket.

Overflow buckets live in the same metered store but are invisible to the
trie — only primaries have leaves. The load factor
``a = x / (b (N+1))`` counts them, keeping the space accounting honest.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional

from ..obs.tracer import TRACER
from ..storage.buckets import BucketStore
from .alphabet import DEFAULT_ALPHABET, Alphabet
from .cells import is_nil
from .errors import CapacityError, DuplicateKeyError, KeyNotFoundError
from .file import THFile
from .policies import SplitPolicy
from .split import plan_split
from .thcl_split import insert_boundary
from .split import expand_basic

__all__ = ["OverflowTHFile"]


class OverflowTHFile(THFile):
    """A :class:`THFile` that defers splits through overflow buckets.

    Restrictions: ``merge='none'`` and ``redistribution='none'`` (the
    overflow chain already plays the role redistribution would).
    """

    def __init__(
        self,
        bucket_capacity: int = 4,
        policy: Optional[SplitPolicy] = None,
        alphabet: Alphabet = DEFAULT_ALPHABET,
        store: Optional[BucketStore] = None,
    ):
        policy = policy if policy is not None else SplitPolicy(merge="none")
        if policy.merge != "none" or policy.redistribution != "none":
            raise CapacityError(
                "the overflow variant supports merge='none' and "
                "redistribution='none' only"
            )
        super().__init__(bucket_capacity, policy, alphabet, store)
        #: primary address -> overflow address.
        self._overflow: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _get(self, key: str) -> object:
        """One access normally; two when the key sits in the overflow.

        (The public :meth:`~repro.core.file.THFile.get` wraps this in a
        ``search`` span when tracing is enabled.)
        """
        key = self.alphabet.validate_key(key)
        result = self.trie.search(key)
        self.stats.searches += 1
        if result.bucket is None:
            raise KeyNotFoundError(key)
        bucket = self.store.read(result.bucket)
        at = bucket.find(key)
        if at >= 0:
            return bucket.values[at]
        chain = self._overflow.get(result.bucket)
        if chain is not None:
            return self.store.read(chain).get(key)
        raise KeyNotFoundError(key)

    def _contains(self, key: str) -> bool:
        """True when ``key`` is stored (primary or overflow)."""
        try:
            self._get(key)
            return True
        except KeyNotFoundError:
            return False

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def _store_record(self, key: str, value: object, replace: bool) -> None:
        key = self.alphabet.validate_key(key)
        result = self.trie.search(key)
        if result.bucket is None:
            return super()._store_record(key, value, replace)
        primary = self.store.read(result.bucket)
        chain_addr = self._overflow.get(result.bucket)
        chain = self.store.read(chain_addr) if chain_addr is not None else None

        for holder, addr in ((primary, result.bucket), (chain, chain_addr)):
            if holder is None:
                continue
            at = holder.find(key)
            if at >= 0:
                if not replace:
                    raise DuplicateKeyError(key)
                holder.values[at] = value
                self.store.write(addr, holder)
                return

        if len(primary) < self.capacity:
            primary.insert(key, value)
            self.store.write(result.bucket, primary)
        elif chain is not None and len(chain) < self.capacity:
            chain.insert(key, value)
            self.store.write(chain_addr, chain)
            if TRACER.enabled:
                TRACER.emit(
                    "overflow", bucket=result.bucket, chain=chain_addr
                )
        elif chain is None:
            chain_addr = self.store.allocate()
            chain = self.store.peek(chain_addr)
            chain.insert(key, value)
            self.store.write(chain_addr, chain)
            self._overflow[result.bucket] = chain_addr
            if TRACER.enabled:
                TRACER.emit(
                    "overflow", bucket=result.bucket, chain=chain_addr
                )
        else:
            self._deferred_split(result, primary, chain, key, value)
        self.stats.inserts += 1
        self._size += 1

    def _deferred_split(self, result, primary, chain, key, value) -> None:
        """Split over primary + overflow + the new record (2b+1 records)."""
        records: list[tuple[str, object]] = sorted(
            list(primary.items()) + list(chain.items()) + [(key, value)]
        )
        total = len(records)
        # Scale the policy's position to the doubled sequence; the
        # bounding rule carries over unchanged.
        m = max(1, min(total - 1, round(self.policy.split_index(self.capacity) / self.capacity * total)))
        bounding = (
            total
            if self.policy.bounding_offset is None
            else min(total, m + self.policy.bounding_offset)
        )
        plan = plan_split(records, m, bounding, self.alphabet)
        new_address = self.store.allocate()
        if self.policy.nil_nodes:
            added = expand_basic(
                self.trie,
                result.location,
                result.path,
                plan.boundary,
                result.bucket,
                new_address,
            )
        else:
            added, _ = insert_boundary(
                self.trie,
                plan.split_key,
                plan.boundary,
                result.bucket,
                new_address,
                result.bucket,
            )
        chain_addr = self._overflow.pop(result.bucket)
        self._fill(result.bucket, primary, plan.stay, chain_addr, chain)
        new_bucket = self.store.peek(new_address)
        new_bucket.header_path = result.path
        self._fill(new_address, new_bucket, plan.move, None, None)
        primary.header_path = plan.boundary
        self.stats.splits += 1
        self.stats.nodes_added += added
        if TRACER.enabled:
            TRACER.emit(
                "split",
                kind="deferred",
                bucket=result.bucket,
                new_bucket=new_address,
                moved=len(plan.move),
                stayed=len(plan.stay),
                nodes_added=added,
            )

    def _fill(self, address, bucket, records, chain_addr, chain) -> None:
        """Place records into a primary (+ overflow when they spill)."""
        head = records[: self.capacity]
        tail = records[self.capacity :]
        bucket.keys[:] = [k for k, _ in head]
        bucket.values[:] = [v for _, v in head]
        self.store.write(address, bucket)
        if tail:
            if chain_addr is None:
                chain_addr = self.store.allocate()
                chain = self.store.peek(chain_addr)
            chain.keys[:] = [k for k, _ in tail]
            chain.values[:] = [v for _, v in tail]
            self.store.write(chain_addr, chain)
            self._overflow[address] = chain_addr
        elif chain_addr is not None:
            self.store.free(chain_addr)

    # ------------------------------------------------------------------
    # Deletion (records only; chain kept tidy)
    # ------------------------------------------------------------------
    def _delete(self, key: str) -> object:
        key = self.alphabet.validate_key(key)
        result = self.trie.search(key)
        if result.bucket is None:
            raise KeyNotFoundError(key)
        primary = self.store.read(result.bucket)
        chain_addr = self._overflow.get(result.bucket)
        if primary.find(key) >= 0:
            value = primary.remove(key)
            # Pull one record down from the overflow, keeping it the
            # spill area for the *highest* keys of the range.
            if chain_addr is not None:
                chain = self.store.read(chain_addr)
                k2, v2 = chain.keys[0], chain.values[0]
                chain.pop_range(0, 1)
                primary.insert(k2, v2)
                if len(chain) == 0:
                    self.store.free(chain_addr)
                    del self._overflow[result.bucket]
                else:
                    self.store.write(chain_addr, chain)
            self.store.write(result.bucket, primary)
        else:
            if chain_addr is None:
                raise KeyNotFoundError(key)
            chain = self.store.read(chain_addr)
            value = chain.remove(key)
            if len(chain) == 0:
                self.store.free(chain_addr)
                del self._overflow[result.bucket]
            else:
                self.store.write(chain_addr, chain)
        self.stats.deletes += 1
        self._size -= 1
        return value

    # ------------------------------------------------------------------
    # Iteration and metrics
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[str, object]]:
        previous = None
        for _, ptr, _path in self.trie.leaves_in_order():
            if is_nil(ptr) or ptr == previous:
                continue
            previous = ptr
            primary = self.store.read(ptr)
            chain_addr = self._overflow.get(ptr)
            if chain_addr is None:
                yield from primary.items()
            else:
                chain = self.store.read(chain_addr)
                merged = sorted(list(primary.items()) + list(chain.items()))
                yield from merged

    def range_items(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, object]]:
        """Range scan over primaries and their chains."""
        it = self._range_items(low, high)
        if TRACER.enabled:
            return TRACER.wrap_iter("range", it)
        return it

    def _range_items(self, low=None, high=None):
        if low is not None:
            low = self.alphabet.validate_key(low)
        if high is not None:
            high = self.alphabet.validate_key(high)
        for k, v in self.items():
            if low is not None and k < low:
                continue
            if high is not None and k > high:
                return
            yield k, v

    def chain_fraction(self) -> float:
        """Fraction of primaries that currently carry an overflow bucket."""
        primaries = {
            ptr
            for _, ptr, _ in self.trie.leaves_in_order()
            if not is_nil(ptr)
        }
        return len(self._overflow) / len(primaries) if primaries else 0.0

    def check(self) -> None:
        """Structural validation adapted to overflow chains."""
        self.trie.check(expect_no_nil=not self.policy.nil_nodes)
        model = self.trie.to_model()
        reachable = {c for c in model.children if c is not None}
        live = set(self.store.live_addresses())
        overflow = set(self._overflow.values())
        if reachable | overflow != live or reachable & overflow:
            raise AssertionError("primary/overflow bucket sets inconsistent")
        total = 0
        for primary_addr in reachable:
            primary = self.store.peek(primary_addr)
            holders = [(primary_addr, primary)]
            if primary_addr in self._overflow:
                chain_addr = self._overflow[primary_addr]
                holders.append((chain_addr, self.store.peek(chain_addr)))
            for _, holder in holders:
                if len(holder) > self.capacity:
                    raise AssertionError("bucket over capacity")
                total += len(holder)
                for key in holder.keys:
                    if model.lookup(key) != primary_addr:
                        raise AssertionError(f"{key!r} mapped off its chain")
        if total != self._size:
            raise AssertionError("record count mismatch")
