"""Self-tests for ``repro.lint``: every rule trips on a minimal fixture
and stays quiet on the compliant rewrite, suppressions work (and rot
loudly), and the CLI exits 0 on the project's own tree."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_file, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parent.parent

CORE = "repro/core/_fixture.py"
DISTRIBUTED = "repro/distributed/_fixture.py"
ANALYSIS = "repro/analysis/_fixture.py"
CLI_LAYER = "repro/_fixture.py"  # in scope for repro/ rules, out of core/
SERVING = "repro/serving/_fixture.py"


def codes(violations):
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# Fixtures: one (tripping, passing) pair per rule.
# ----------------------------------------------------------------------
RULE_FIXTURES = {
    "TH001": (
        CORE,
        "import random\n\ndef jitter():\n    return random.random()\n",
        "import random\n\ndef jitter(seed):\n"
        "    return random.Random(seed).random()\n",
    ),
    "TH002": (
        CLI_LAYER,
        "def run(op):\n    try:\n        op()\n"
        "    except Exception:\n        pass\n",
        "def run(op):\n    try:\n        op()\n"
        "    except KeyError:\n        pass\n",
    ),
    "TH003": (
        DISTRIBUTED,
        "def route(shard):\n    raise ValueError('bad shard')\n",
        "from .errors import UnknownShardError\n\n"
        "def route(shard):\n    raise UnknownShardError('bad shard')\n",
    ),
    "TH004": (
        CLI_LAYER,
        "def dump(disk, address):\n    return disk.read(address)\n",
        "def dump(pool, address):\n    return pool.fetch(address)\n",
    ),
    "TH005": (
        CORE,
        "def splice(n):\n    assert n > 0\n",
        "def splice(n):\n    if n <= 0:\n"
        "        raise ValueError('n must be positive')\n",
    ),
    "TH006": (
        CORE,
        "def build(keys=[]):\n    return keys\n",
        "def build(keys=None):\n    return keys or []\n",
    ),
    "TH007": (
        ANALYSIS,
        "def loaded(f):\n    return f.load_factor() == 0.85\n",
        "import math\n\ndef loaded(f):\n"
        "    return math.isclose(f.load_factor(), 0.85, abs_tol=0.01)\n",
    ),
    "TH008": (
        CORE,
        "def insert(key, value):\n    return None\n",
        "def insert(key: str, value: str) -> None:\n    return None\n",
    ),
}


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_rule_trips_on_fixture(code):
    module_path, tripping, _ = RULE_FIXTURES[code]
    found = lint_source(tripping, module_path=module_path, select=[code])
    assert codes(found) == [code], f"{code} did not trip:\n{tripping}"


@pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
def test_rule_passes_on_compliant_fixture(code):
    module_path, _, passing = RULE_FIXTURES[code]
    assert lint_source(passing, module_path=module_path, select=[code]) == []


def test_every_registered_rule_has_a_fixture():
    assert {r.code for r in all_rules()} == set(RULE_FIXTURES)


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------
def test_rules_respect_path_scope():
    # Float equality is an analysis-layer rule; the same snippet in core
    # is out of scope. Unseeded randomness is core-scoped, not analysis.
    floats = RULE_FIXTURES["TH007"][1]
    assert lint_source(floats, module_path=CORE, select=["TH007"]) == []
    rng = RULE_FIXTURES["TH001"][1]
    assert lint_source(rng, module_path=ANALYSIS, select=["TH001"]) == []


def test_th004_exempts_storage_layer():
    snippet = RULE_FIXTURES["TH004"][1]
    assert lint_source(
        snippet, module_path="repro/storage/_fixture.py", select=["TH004"]
    ) == []


def test_th009_is_retired_from_the_per_file_pass():
    # TH009 moved to the whole-program pass as TH010 (a coroutine's
    # *helpers* can block too); the per-file engine no longer runs it,
    # but a lingering suppression for it must not trip LINT002 —
    # the flow pass owns flow-code suppressions.
    assert "TH009" not in {r.code for r in all_rules()}
    lingering = (
        "import time\n\nasync def flush(conn):\n"
        "    time.sleep(0.1)  # repro-lint: disable=TH009 -- facade\n"
    )
    assert lint_source(lingering, module_path=SERVING) == []


def test_th004_covers_allocate_and_free():
    # A flat backend (CompactTrie) holding a disk reference could shuffle
    # payloads on/off the SimulatedDisk without a read or write — the
    # whole mutation surface is in scope.
    snippet = (
        "def stash(disk, payload):\n"
        "    address = disk.allocate(payload)\n"
        "    disk.free(address)\n"
    )
    assert codes(
        lint_source(snippet, module_path=CORE, select=["TH004"])
    ) == ["TH004", "TH004"]


def test_th003_exempts_assertion_error():
    snippet = "def diverged():\n    raise AssertionError('differential')\n"
    assert lint_source(snippet, module_path=DISTRIBUTED, select=["TH003"]) == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_justified_suppression_silences_violation():
    source = (
        "def run(op):\n    try:\n        op()\n"
        "    except Exception:  # repro-lint: disable=TH002 -- test boundary\n"
        "        pass\n"
    )
    assert lint_source(source, module_path=CLI_LAYER, select=["TH002"]) == []


def test_standalone_suppression_covers_next_code_line():
    source = (
        "def run(op):\n    try:\n        op()\n"
        "    # repro-lint: disable=TH002 -- test boundary\n"
        "    except Exception:\n        pass\n"
    )
    assert lint_source(source, module_path=CLI_LAYER, select=["TH002"]) == []


def test_unjustified_suppression_reported(tmp_path):
    target = tmp_path / "repro" / "core" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "def _splice(n):\n    assert n > 0  # repro-lint: disable=TH005\n"
    )
    assert codes(lint_file(target)) == ["LINT001"]


def test_stale_suppression_reported(tmp_path):
    target = tmp_path / "repro" / "core" / "stale.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "def _splice(n):\n"
        "    # repro-lint: disable=TH005 -- nothing here anymore\n"
        "    return None\n"
    )
    assert codes(lint_file(target)) == ["LINT002"]


def test_disable_comment_inside_string_is_ignored():
    source = (
        'TEXT = "# repro-lint: disable=TH005 -- not a comment"\n'
        "def splice(n):\n    assert n > 0\n"
    )
    assert codes(
        lint_source(source, module_path=CORE, select=["TH005"])
    ) == ["TH005"]


# ----------------------------------------------------------------------
# Reports and the CLI
# ----------------------------------------------------------------------
def test_lint_paths_report_shape(tmp_path):
    target = tmp_path / "repro" / "core" / "mixed.py"
    target.parent.mkdir(parents=True)
    target.write_text("def splice(n):\n    assert n > 0\n")
    report = lint_paths([str(tmp_path)])
    assert not report.ok
    payload = json.loads(report.to_json())
    assert payload["files_checked"] == 1
    found = {v["code"] for v in payload["violations"]}
    assert "TH005" in found
    assert payload["counts_by_code"]["TH005"] >= 1
    assert "mixed.py" in report.render_table()


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def test_cli_clean_on_project_tree():
    result = _run_cli("src")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "no findings" in result.stdout


def test_cli_json_and_exit_code(tmp_path):
    target = tmp_path / "repro" / "core" / "dirty.py"
    target.parent.mkdir(parents=True)
    target.write_text("def splice(n):\n    assert n > 0\n")
    result = _run_cli("--json", str(target))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["violation_count"] >= 1


def test_cli_list_rules():
    result = _run_cli("--list")
    assert result.returncode == 0
    for rule in all_rules():
        assert rule.code in result.stdout
