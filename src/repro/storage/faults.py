"""Fault injection for the simulated disk.

Crash-recovery testing needs a disk that fails on cue.
:class:`FaultyDisk` wraps the access path of :class:`SimulatedDisk` with
a deterministic failure schedule: fail the Nth access, fail every access
to a chosen block, fail only *writes* of a chosen block (the hook the
crash-point tests use to kill a split mid-flight), or fail for a window
of accesses. Failures raise :class:`~repro.core.errors.StorageError`
*before* touching the payload, so the block's previous content stays
intact — the model of a write rejected by the device.

Every injected fault is counted consistently: in the device's
:class:`~repro.storage.disk.DiskStats` (the ``faults`` counter — the
rejected access is *not* counted as a read or write, since it never
touched the payload), in the legacy :attr:`FaultyDisk.faults_raised`
attribute, and — when tracing is on — as a ``disk_fault`` event on the
:mod:`repro.obs` bus.

The trie-reconstruction story (/TOR83/) is exercised end to end with
this: load a file, start failing, catch the error, lift the fault,
rebuild the trie from the bucket headers, carry on.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import StorageError
from ..obs.tracer import TRACER
from .disk import SimulatedDisk

__all__ = ["FaultyDisk"]


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` with a programmable failure schedule."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._fail_at: set[int] = set()
        self._fail_blocks: set[int] = set()
        self._fail_write_blocks: set[int] = set()
        self._fail_from: Optional[int] = None
        self._access_counter = 0
        self.faults_raised = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def fail_on_access(self, *counts: int) -> None:
        """Fail the given access ordinals (1-based, counted from now)."""
        base = self._access_counter
        self._fail_at.update(base + c for c in counts)

    def fail_block(self, block_id: int) -> None:
        """Fail every access to one block until :meth:`heal`."""
        self._fail_blocks.add(block_id)

    def fail_on_write_of(self, block_id: int) -> None:
        """Fail every *write* of one block until :meth:`heal`.

        Reads of the block keep working — the model of a medium going
        read-only under a failing head, and the precise scalpel for
        killing one bucket write inside a multi-write structure change
        (a split or merge) while the rest of the operation proceeds.
        """
        self._fail_write_blocks.add(block_id)

    def fail_from_now_on(self) -> None:
        """Fail every subsequent access until :meth:`heal` (a crash)."""
        self._fail_from = self._access_counter

    def heal(self) -> None:
        """Clear the whole failure schedule."""
        self._fail_at.clear()
        self._fail_blocks.clear()
        self._fail_write_blocks.clear()
        self._fail_from = None

    # ------------------------------------------------------------------
    def _maybe_fail(self, block_id: int, write: bool) -> None:
        self._access_counter += 1
        failing = (
            self._access_counter in self._fail_at
            or block_id in self._fail_blocks
            or (write and block_id in self._fail_write_blocks)
            or (self._fail_from is not None and self._access_counter > self._fail_from)
        )
        if failing:
            self.faults_raised += 1
            self.stats.faults += 1
            if TRACER.enabled:
                TRACER.emit(
                    "disk_fault",
                    device=self.name,
                    block=block_id,
                    write=write,
                    access=self._access_counter,
                )
            raise StorageError(
                f"injected fault on access #{self._access_counter} "
                f"(block {block_id})"
            )

    def read(self, block_id: int) -> object:
        self._maybe_fail(block_id, write=False)
        return super().read(block_id)

    def write(self, block_id: int, payload: object) -> None:
        self._maybe_fail(block_id, write=True)
        super().write(block_id, payload)
