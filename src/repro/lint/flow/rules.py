"""The interprocedural ruleset (``TH010``...``TH014``).

Each rule is a function over a linked :class:`~.graph.Program` — the
whole-program call graph — rather than a single parsed file, so it can
hold invariants that live across module boundaries: event-loop purity
through helper chains (TH010), wire-protocol exhaustiveness (TH011),
commit-path ordering (TH012), clock discipline under the fabric clock
(TH013) and paranoid-audit coverage (TH014). ``docs/STATIC_ANALYSIS.md``
documents the why, the resolution policy and the soundness caveats
behind every rule.

Rules register with :func:`flow_rule` into a registry separate from the
per-file one (:mod:`repro.lint.engine`); the flow engine runs them once
per program, not once per file.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from ..engine import LintViolation
from .graph import CallSite, FunctionNode, Program

__all__ = [
    "FlowRule",
    "all_flow_rules",
    "flow_rule",
]

#: Modules that are observational or tooling surfaces, not part of the
#: executable protocol: the flight recorder and tracer write files by
#: design, the linter/benchmarks/CLI never run inside the event loop or
#: the fabric. Reachability traversals do not descend into them.
TOOLING_MODULES = (
    "repro.obs",
    "repro.lint",
    "repro.bench",
    "repro.analysis",
    "repro.cli",
)

FlowChecker = Callable[[Program], Iterable[LintViolation]]


@dataclass(frozen=True)
class FlowRule:
    """A registered whole-program rule."""

    code: str
    name: str
    description: str
    checker: FlowChecker


_REGISTRY: dict[str, FlowRule] = {}


def flow_rule(
    code: str, name: str, description: str
) -> Callable[[FlowChecker], FlowChecker]:
    """Register ``checker`` under ``code``; codes must be unique."""

    def decorate(checker: FlowChecker) -> FlowChecker:
        if code in _REGISTRY:
            raise ValueError(f"duplicate flow rule code {code}")
        _REGISTRY[code] = FlowRule(
            code=code, name=name, description=description, checker=checker
        )
        return checker

    return decorate


def all_flow_rules() -> list[FlowRule]:
    """Every registered flow rule, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _violation(
    code: str, node: FunctionNode, line: int, message: str
) -> LintViolation:
    return LintViolation(
        code=code, message=message, path=node.path, line=line
    )


def _render_chain(program: Program, parents: dict, qualname: str) -> str:
    chain = program.chain(parents, qualname)
    short = [q.split(".", 1)[-1] if q.count(".") > 1 else q for q in chain]
    return " -> ".join(short)


# ----------------------------------------------------------------------
# TH010 — transitive blocking calls under the serving event loop
# ----------------------------------------------------------------------
#: External callees that stall the event loop. ``open`` is the builtin;
#: the module-prefixed entries match resolved dotted targets, so module
#: aliasing (``import time as t``) never hides one.
_BLOCKING_EXTERNALS = {"time.sleep", "os.fsync", "os.fdatasync", "open"}
_BLOCKING_PREFIXES = ("socket.", "subprocess.")


def _is_blocking(target: str) -> bool:
    return target in _BLOCKING_EXTERNALS or target.startswith(
        _BLOCKING_PREFIXES
    )


@flow_rule(
    "TH010",
    "blocking-call-reachable-from-coroutine",
    "no blocking call reachable from a repro.serving coroutine "
    "(subsumes the retired per-file TH009)",
)
def check_blocking_reachability(program: Program) -> Iterator[LintViolation]:
    """The serving tier is one event loop per process: ``time.sleep``,
    a synchronous socket, or an ``os.fsync`` stalls every connection
    the loop multiplexes — whether it sits *in* the coroutine (TH009's
    old direct check) or three sync helpers down the call chain. The
    traversal follows widened attribute calls (``router.sleep`` may
    dispatch to any ``sleep`` method in the program), so the diagnostic
    chain names how the loop can reach the blocking site."""
    entries = [
        node.qualname
        for node in program.functions.values()
        if node.summary.is_async and node.module.startswith("repro.serving")
    ]
    if not entries:
        return
    parents = program.reachable(
        entries, follow_widened=True, skip_modules=TOOLING_MODULES
    )
    seen: set = set()
    for qualname in parents:
        node = program.functions[qualname]
        for index, site in enumerate(node.summary.calls):
            for target in node.externals[index]:
                if not _is_blocking(target):
                    continue
                key = (node.path, site.line, target)
                if key in seen:
                    continue
                seen.add(key)
                yield _violation(
                    "TH010",
                    node,
                    site.line,
                    f"blocking {target}() is reachable from the serving "
                    f"event loop via {_render_chain(program, parents, qualname)}",
                )


# ----------------------------------------------------------------------
# TH011 — wire-protocol exhaustiveness
# ----------------------------------------------------------------------
def _messages_module(program: Program):
    for name, summary in program.modules.items():
        if name.endswith(".messages") and "Op" in summary.classes:
            return summary
    return None


def _dispatch_entries(program: Program) -> list[str]:
    """The wire dispatch surface: shard dispatch + serving coroutines."""
    entries = []
    for node in program.functions.values():
        if (
            node.module.endswith(".server")
            and node.summary.cls is not None
            and node.summary.cls.endswith("Server")
            and node.summary.name in ("handle", "_dispatch")
        ):
            entries.append(node.qualname)
        elif node.summary.is_async and ".serving" in f".{node.module}":
            entries.append(node.qualname)
    return entries


@flow_rule(
    "TH011",
    "wire-protocol-exhaustiveness",
    "every op kind has dispatch + a constructor; every exception "
    "raisable from dispatch is registered in ERROR_CODES",
)
def check_wire_exhaustiveness(program: Program) -> Iterator[LintViolation]:
    """Three seams where the wire contract can silently rot:

    * an op kind added to ``messages.py`` but never tested for in any
      shard dispatch function serves only ``ProtocolError``;
    * a kind without an ``Op`` constructor classmethod cannot be built
      (or round-tripped) by clients at all;
    * an exception type raisable from code reachable off the dispatch
      surface that is not in ``ERROR_CODES`` (and has no registered
      ancestor other than the first-entry catch-all) degrades to the
      catch-all on the wire — the client re-raises the wrong type.

    Raise sites are collected over direct *and* widened edges; builtin
    raises are TH003's domain and are skipped here.
    """
    messages = _messages_module(program)
    if messages is not None:
        kinds = {
            name: value
            for name, value in messages.constants.items()
            if name.isupper()
        }
        covered: set = set()
        for node in program.functions.values():
            for tested in node.summary.kind_tests:
                resolved = program._resolve_export(tested)
                value = program.constant_value(resolved)
                if value is not None:
                    covered.add(value)
                    continue
                members = program.const_set_values(resolved)
                if members is not None:
                    covered.update(members)
        op_methods = set(messages.classes["Op"].methods)
        for name, value in sorted(kinds.items()):
            line = messages.const_lines.get(name, 1)
            anchor = FunctionNode(
                qualname=f"{messages.module}.{name}",
                module=messages.module,
                summary=None,  # type: ignore[arg-type]
                path=messages.path,
            )
            if value not in covered:
                yield _violation(
                    "TH011",
                    anchor,
                    line,
                    f"op kind {name} ({value!r}) has no dispatch handler: "
                    "no server dispatch tests `op.kind` against it",
                )
            if value not in op_methods:
                yield _violation(
                    "TH011",
                    anchor,
                    line,
                    f"op kind {name} ({value!r}) has no Op.{value}() "
                    "constructor, so clients cannot build or round-trip it",
                )

    registered = [
        program._resolve_export(entry)
        for entry in program.registry("ERROR_CODES")
    ]
    if not registered:
        return
    catch_all = registered[0]
    accepted = set(registered[1:])
    entries = _dispatch_entries(program)
    parents = program.reachable(
        entries, follow_widened=True, skip_modules=TOOLING_MODULES
    )
    seen: set = set()
    for qualname in parents:
        node = program.functions[qualname]
        for raised in node.summary.raises:
            klass = program._resolve_export(raised.name)
            if klass not in program.classes:
                continue  # builtin or unresolved: TH003's domain
            ancestry = program.ancestry(klass)
            if accepted.intersection(ancestry):
                continue
            key = (node.path, raised.line, klass)
            if key in seen:
                continue
            seen.add(key)
            short = klass.rsplit(".", 1)[-1]
            root = catch_all.rsplit(".", 1)[-1]
            yield _violation(
                "TH011",
                node,
                raised.line,
                f"{short} can cross the codec seam (reachable via "
                f"{_render_chain(program, parents, qualname)}) but is not "
                f"in ERROR_CODES — it would degrade to the {root} "
                "catch-all on the wire",
            )


# ----------------------------------------------------------------------
# TH012 — commit-ordering discipline
# ----------------------------------------------------------------------
_COMMIT_SCOPE = ("repro.storage", "repro.distributed", "repro.serving")


def _is_barrier(site: CallSite) -> bool:
    recv = site.recv.lower()
    if site.attr == "commit" and "wal" in recv:
        return True
    return site.attr in ("_commit_barrier", "group_commit")


def _is_wal_append(site: CallSite) -> bool:
    return site.attr == "append" and "wal" in site.recv.lower()


def _is_dedup_record(site: CallSite) -> bool:
    return site.attr == "record" and "dedup" in site.recv.lower()


def _is_ship(site: CallSite) -> bool:
    return site.attr in ("ship", "_publish")


def _is_reply_build(site: CallSite, program: Program) -> bool:
    if site.attr != "Reply":
        return False
    if site.form != "dotted":
        return True
    target = program._resolve_export(site.target)
    return target.endswith(".Reply") or target == "Reply"


@flow_rule(
    "TH012",
    "commit-ordering",
    "WAL fsync barriers precede dedup acks; appends reach a barrier; "
    "semisync ship precedes the reply",
)
def check_commit_ordering(program: Program) -> Iterator[LintViolation]:
    """The ack protocol's whole correctness argument is an ordering:
    *apply, log, fsync, then acknowledge*. Three per-function checks
    over the acyclic may-follow relation hold it in place:

    * a ``dedup.record(...)`` (the ack: the id enters the exactly-once
      window) that can run after a ``wal.append`` but before any fsync
      barrier acknowledges an operation that is not durable yet;
    * a ``wal.append`` with no barrier reachable after it (in a
      function that owns a barrier) can leave acknowledged bytes
      un-fsynced on some path;
    * in a function that both ships to a backup and builds a ``Reply``,
      a reply that runs after a mutation (a dedup record or WAL append)
      but without the ship preceding it breaks semisync's
      ship-before-ack promise. Replies on mutation-free paths (reads,
      dedup hits) legitimately skip the ship.

    Cross-function orderings (a barrier deferred to a caller's
    ``group_commit`` block) are out of scope by design — the deferring
    function simply owns no barrier and is skipped.
    """
    for node in program.functions.values():
        if not node.module.startswith(_COMMIT_SCOPE):
            continue
        calls = node.summary.calls
        order = {tuple(pair) for pair in node.summary.order}
        barriers = [i for i, s in enumerate(calls) if _is_barrier(s)]
        appends = [i for i, s in enumerate(calls) if _is_wal_append(s)]
        records = [i for i, s in enumerate(calls) if _is_dedup_record(s)]
        ships = [i for i, s in enumerate(calls) if _is_ship(s)]
        replies = [
            i for i, s in enumerate(calls) if _is_reply_build(s, program)
        ]
        for record in records:
            preceded_by_append = any(
                (append, record) in order for append in appends
            )
            preceded_by_barrier = any(
                (barrier, record) in order for barrier in barriers
            )
            if preceded_by_append and not preceded_by_barrier:
                yield _violation(
                    "TH012",
                    node,
                    calls[record].line,
                    f"{node.summary.qual}: dedup window records the request "
                    "id after a WAL append but before any fsync barrier — "
                    "the ack would precede durability",
                )
        if barriers:
            for append in appends:
                if not any(
                    (append, barrier) in order for barrier in barriers
                ):
                    yield _violation(
                        "TH012",
                        node,
                        calls[append].line,
                        f"{node.summary.qual}: WAL append has no fsync "
                        "barrier after it on any path — appended records "
                        "can stay un-fsynced past the acknowledgement",
                    )
        if ships and replies:
            for reply in replies:
                mutated_before = any(
                    (site, reply) in order for site in records + appends
                )
                if mutated_before and not any(
                    (ship, reply) in order for ship in ships
                ):
                    yield _violation(
                        "TH012",
                        node,
                        calls[reply].line,
                        f"{node.summary.qual}: reply is built before the "
                        "batch ships to the backup — semisync promises "
                        "ship-before-ack",
                    )


# ----------------------------------------------------------------------
# TH013 — clock discipline on the simulated fabric
# ----------------------------------------------------------------------
_WALLCLOCK_EXTERNALS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Entry modules that must run entirely on the fabric clock: fault
#: scheduling and chaos verdicts replay from a seed, so one wall-clock
#: read anywhere below them breaks bit-identical replay.
_FABRIC_ENTRY_MODULES = (
    "repro.distributed.chaos",
    "repro.distributed.faults",
    "repro.concurrency.simulator",
)

#: TH013 additionally prunes the serving tier: it is wall-clock land by
#: design (a real event loop) and unreachable from the fabric except
#: through name-widened calls on its sync facade.
_TH013_SKIP = TOOLING_MODULES + ("repro.serving",)


@flow_rule(
    "TH013",
    "wall-clock-on-the-fabric",
    "no wall-clock read reachable from simulation/chaos entry points",
)
def check_fabric_clock(program: Program) -> Iterator[LintViolation]:
    """TH001 bans wall-clock reads per file inside the deterministic
    layers; this closes the interprocedural gap — a chaos run that
    reaches ``time.monotonic()`` through a helper in an unscoped module
    replays differently on every machine. Entry points are the fault
    scheduler, the chaos harness and the concurrency simulator."""
    entries = [
        node.qualname
        for node in program.functions.values()
        if node.module.startswith(_FABRIC_ENTRY_MODULES)
    ]
    if not entries:
        return
    parents = program.reachable(
        entries, follow_widened=True, skip_modules=_TH013_SKIP
    )
    seen: set = set()
    for qualname in parents:
        node = program.functions[qualname]
        for index, site in enumerate(node.summary.calls):
            for target in node.externals[index]:
                if target not in _WALLCLOCK_EXTERNALS:
                    continue
                key = (node.path, site.line, target)
                if key in seen:
                    continue
                seen.add(key)
                yield _violation(
                    "TH013",
                    node,
                    site.line,
                    f"wall-clock {target}() is reachable from the "
                    "simulated fabric via "
                    f"{_render_chain(program, parents, qualname)}; replay "
                    "depends on the fabric clock only",
                )


# ----------------------------------------------------------------------
# TH014 — paranoid-audit coverage of mutating methods
# ----------------------------------------------------------------------
#: The mutating verbs of the storage vocabulary. A public method with
#: one of these names on an audited class is a mutation entry point.
_MUTATORS = {
    "insert",
    "put",
    "delete",
    "put_many",
    "patch",
    "record",
    "merge",
}


@flow_rule(
    "TH014",
    "unaudited-mutation",
    "public mutating methods on register_audit-ed classes route "
    "through maybe_audit",
)
def check_audit_coverage(program: Program) -> Iterator[LintViolation]:
    """``repro.check`` registers a structural audit for a class so that
    paranoid runs re-verify its invariants after *every* mutation. A
    public mutator that skips :func:`repro.check.maybe_audit` is a
    blind spot: paranoid chaos certifies a structure the mutation never
    re-checked. The hook must be reachable from the method through
    direct (non-widened) calls."""
    for class_qual in program.audited_classes():
        if class_qual not in program.classes:
            continue
        _module, klass = program.classes[class_qual]
        for method in klass.methods:
            if method.startswith("_") or method not in _MUTATORS:
                continue
            qualname = f"{class_qual}.{method}"
            node = program.functions.get(qualname)
            if node is None:
                continue
            parents = program.reachable([qualname], follow_widened=False)
            audited = any(
                any(
                    site.attr == "maybe_audit"
                    for site in program.functions[reached].summary.calls
                )
                for reached in parents
            )
            if not audited:
                yield _violation(
                    "TH014",
                    node,
                    node.summary.lineno,
                    f"{class_qual.rsplit('.', 1)[-1]}.{method}() mutates an "
                    "audited class without routing through maybe_audit — "
                    "paranoid runs cannot re-verify its invariants",
                )
