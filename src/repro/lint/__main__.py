"""CLI for the project linter: ``python -m repro.lint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from typing import Optional

from .engine import all_rules, lint_paths

__all__ = ["main"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis for the reproduction",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the ruleset and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for registered in all_rules():
            scope = (
                ", ".join(registered.scope) if registered.scope else "src/**"
            )
            print(f"{registered.code}  {registered.name:28s} [{scope}]")
            print(f"       {registered.description}")
        return 0

    select = args.select.split(",") if args.select else None
    report = lint_paths(args.paths, select=select)
    if args.json:
        print(report.to_json())
    else:
        print(report.render_table())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
