"""Figure 10: THCL under expected ascending insertions.

Regenerates the paper's sweep — load factor ``a%``, trie size ``M`` and
file size ``N`` against ``d = b - m`` — for 5 000 randomly drawn then
sorted keys and b in {10, 20, 50}, exactly the simulation protocol of
Section 4.5. Expected shape: a = 100% at d = 0; M falls from its d = 0
peak to an interior minimum while a stays high; the growth rate s at
full load is the highest of the sweep.
"""

from conftest import once

from repro.analysis import fig10_ascending
from repro.analysis.figures import fig_curves


def test_fig10_ascending(benchmark, report):
    rows = once(
        benchmark,
        lambda: fig10_ascending(
            count=5000,
            bucket_capacities=(10, 20, 50),
            d_values=(0, 1, 2, 3, 4, 6, 8),
        ),
    )
    report(
        "fig10",
        rows,
        "Figure 10 - THCL ascending: a%, M, N vs d = b - m (5000 sorted keys)",
    )
    import pathlib

    charts = "\n\n".join(fig_curves(rows, b) for b in (10, 20, 50))
    (pathlib.Path(__file__).parent / "results" / "fig10_curves.txt").write_text(
        charts + "\n"
    )
    for b in (10, 20, 50):
        sweep = [r for r in rows if r["b"] == b]
        assert sweep[0]["a%"] == 100          # d=0 is the compact file
        ms = [r["M"] for r in sweep]
        assert min(ms[1:]) < ms[0]            # M drops from the d=0 peak
        loads = [r["a%"] for r in sweep]
        assert loads == sorted(loads, reverse=True)
