"""Figure 8: controlled splitting for descending insertions.

The bounding key bounds the split's randomness: with it adjacent to the
split key the split is deterministic. m = middle gives a guaranteed 50%
load for descending insertions; m = 1 gives 100%.
"""

from conftest import once

from repro import SplitPolicy, THFile
from repro.workloads import KeyGenerator


def run():
    keys = KeyGenerator(42).descending_keys(5000)
    rows = []
    cases = [
        ("m = b/2+1, bounding m+1 (50% target)", SplitPolicy.thcl_guaranteed_half()),
        ("m = 1, bounding 2 (100% target)", SplitPolicy.thcl_descending(0)),
        ("m = 1, bounding 4 (d = 2)", SplitPolicy.thcl_descending(2)),
        ("basic TH, m = 1 (uncontrolled)", SplitPolicy(split_position=1)),
    ]
    for label, policy in cases:
        f = THFile(bucket_capacity=4, policy=policy)
        for k in keys:
            f.insert(k)
        rows.append(
            {
                "configuration": label,
                "a%": round(100 * f.load_factor(), 1),
                "M": f.trie_size(),
                "N": f.bucket_count(),
            }
        )
    return rows


def test_fig08_controlled_descending(benchmark, report):
    rows = once(benchmark, run)
    report(
        "fig08_controlled",
        rows,
        "Figure 8 - split control, descending insertions (b = 4)",
    )
    by = {r["configuration"]: r for r in rows}
    assert by["m = b/2+1, bounding m+1 (50% target)"]["a%"] >= 49.5
    assert by["m = 1, bounding 2 (100% target)"]["a%"] >= 99
    uncontrolled = by["basic TH, m = 1 (uncontrolled)"]["a%"]
    assert uncontrolled < 99  # randomness caps the basic method
