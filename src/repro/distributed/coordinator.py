"""The coordinator: authoritative partition, scale-out, and the cluster.

The coordinator owns the one true :class:`~repro.core.image.TrieImage`
— the partition of the key space into shard regions — and the shard
registry. Everything else in the layer works off possibly-stale copies:
clients route with their image, servers consult the coordinator to
detect misaddressing and to build Image Adjustment Messages.

Scale-out is the TH* file expansion: when a shard's load crosses the
:class:`ShardPolicy` threshold, the coordinator cuts the shard's region
at the split string of its two median records (Algorithm A2's step 1,
applied at the shard level), moves the upper half of the records to a
freshly created server, and refines the partition. Clients discover the
new shard lazily, through IAMs.

:class:`Cluster` is the assembly: it wires a coordinator, a router and
the initial servers together, seeds an optional static pre-partition,
and hands out client handles.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import nullcontext
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # import cycle: client builds on the coordinator
    from .client import DistributedFile

from ..core.alphabet import DEFAULT_ALPHABET, Alphabet
from ..core.file import THFile
from ..core.image import IAMEntry, TrieImage
from ..core.keys import prefix_gt, prefix_le, split_string
from ..core.policies import SplitPolicy
from ..obs.flight import FLIGHT
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import TRACER
from ..storage.recovery import DurableFile
from .errors import ConfigurationError, FailoverError
from .messages import Op
from .replication import (
    FailureDetector,
    Migration,
    ReplicaState,
    ReplicationPolicy,
    Replicator,
)
from .router import Router
from .server import ShardServer

__all__ = ["ShardPolicy", "Coordinator", "Cluster"]


class ShardPolicy:
    """When a shard scales out.

    A shard's *load factor* is ``records / shard_capacity``; the shard
    splits when it crosses ``split_threshold``. The defaults keep
    simulated shards small enough that a few thousand records exercise
    several generations of splits.
    """

    __slots__ = ("shard_capacity", "split_threshold")

    def __init__(self, shard_capacity: int = 256, split_threshold: float = 0.8):
        if shard_capacity < 2:
            raise ConfigurationError("shard capacity must be at least 2")
        if not 0.0 < split_threshold <= 1.0:
            raise ConfigurationError("split threshold must be in (0, 1]")
        self.shard_capacity = shard_capacity
        self.split_threshold = split_threshold

    def load_factor(self, records: int) -> float:
        """The shard-level load ``records / capacity``."""
        return records / self.shard_capacity

    def should_split(self, records: int) -> bool:
        """True when a shard holding ``records`` must scale out."""
        return records >= 2 and self.load_factor(records) > self.split_threshold


class Coordinator:
    """Authoritative partition state and the scale-out machinery."""

    def __init__(
        self,
        alphabet: Alphabet,
        registry: MetricsRegistry,
        shard_policy: ShardPolicy,
        router: Router,
        file_factory: Callable[[], object],
        replication: Optional[ReplicationPolicy] = None,
    ):
        self.alphabet = alphabet
        self.registry = registry
        self.shard_policy = shard_policy
        self.router = router
        self.file_factory = file_factory
        self.replication = replication
        self._next_shard = 0
        self.servers: dict[int, ShardServer] = {}
        #: Primary shard id -> its backup server.
        self.replicas: dict[int, ShardServer] = {}
        #: Every id ever rebound to a promoted backup (the dead ids a
        #: remote client must stop treating as down).
        self.promoted_ids: set[int] = set()
        #: One entry per completed failover (MTTR accounting).
        self.failover_log: list[dict] = []
        #: Source shard id -> in-flight :class:`Migration`.
        self.migrations: dict[int, Migration] = {}
        self.migrations_done = 0
        self.detector = (
            FailureDetector(replication) if replication is not None else None
        )
        first = self._new_server()
        self.model = TrieImage(alphabet, (), (first.shard_id,))
        registry.gauge("dist_shards").set(1)
        if replication is not None:
            self.ensure_backup(first)

    def _new_server(self) -> ShardServer:
        shard_id = self._next_shard
        self._next_shard += 1
        server = ShardServer(shard_id, self.file_factory(), self, self.router)
        self.servers[shard_id] = server
        return server

    def spawn_detached_server(self) -> ShardServer:
        """A fresh server outside the partition (a migration target)."""
        shard_id = self._next_shard
        self._next_shard += 1
        return ShardServer(shard_id, self.file_factory(), self, self.router)

    # ------------------------------------------------------------------
    # Authoritative addressing (what servers consult)
    # ------------------------------------------------------------------
    def owner_of(self, key: str) -> int:
        """The shard that owns ``key`` right now."""
        return self.model.shard_for_key(key)

    def shard_of_gap(self, gap: int) -> int:
        return self.model.shards[gap]

    def region_of_gap(self, gap: int) -> tuple[Optional[str], Optional[str]]:
        return self.model.region(gap)

    def gap_of_shard(self, shard_id: int) -> int:
        return self.model.shards.index(shard_id)

    def scan_gap(self, op: Op) -> int:
        """The gap a scan leg's remaining range starts in."""
        if op.after is not None:
            return self.model.gap_above(op.after)
        if op.low is not None:
            return self.model.locate(op.low)[0]
        return 0

    def iam_for_key(self, key: str) -> list[IAMEntry]:
        """The Image Adjustment entry for the region holding ``key``."""
        gap, shard = self.model.locate(key)
        low, high = self.model.region(gap)
        return [(low, high, shard)]

    def total_records(self) -> int:
        """Records across all shards (authoritative metadata)."""
        return sum(len(s) for s in self.servers.values())

    # ------------------------------------------------------------------
    # Availability bookkeeping
    # ------------------------------------------------------------------
    def _is_backup(self, shard_id: int) -> bool:
        return any(b.shard_id == shard_id for b in self.replicas.values())

    def mark_down(self, shard_id: int) -> None:
        """Note that ``shard_id`` crashed (availability gauges only).

        The partition is untouched: the region still belongs to the
        crashed shard, and operations for it fail fast with
        :class:`~repro.distributed.errors.ServerDownError` until the
        server recovers — or, with replication on, until the failure
        detector deposes it and promotes its backup. Ids belonging to
        neither the partition nor a tracked backup (retired migration
        sources, already-deposed primaries) are ignored.
        """
        if shard_id in self.servers:
            self.registry.gauge("dist_shards_down").inc(1)
        elif self._is_backup(shard_id):
            self.registry.gauge("dist_replicas_down").inc(1)

    def mark_up(self, shard_id: int) -> None:
        """Note that ``shard_id`` recovered and rejoined."""
        if shard_id in self.servers:
            self.registry.gauge("dist_shards_down").inc(-1)
        elif self._is_backup(shard_id):
            self.registry.gauge("dist_replicas_down").inc(-1)

    def down_shards(self) -> list[int]:
        """The shard ids currently refusing deliveries."""
        return sorted(s for s, srv in self.servers.items() if srv.down)

    # ------------------------------------------------------------------
    # Replication: backups, failover, migration
    # ------------------------------------------------------------------
    def replica_of(self, shard_id: int) -> Optional[int]:
        """The live backup id shadowing primary ``shard_id`` (or None)."""
        backup = self.replicas.get(shard_id)
        if backup is None or backup.down:
            return None
        return backup.shard_id

    def ensure_backup(self, primary: ShardServer) -> None:
        """Give ``primary`` an in-sync backup (create or reseed)."""
        if self.replication is None or primary.role != "primary":
            return
        if primary.shard_id not in self.replicas:
            self._new_backup(primary)
        else:
            self._seed_backup(primary)

    def _new_backup(self, primary: ShardServer) -> ShardServer:
        backup_id = self._next_shard
        self._next_shard += 1
        backup = ShardServer(
            backup_id, self.file_factory(), self, self.router, role="backup"
        )
        backup.replica_of = primary.shard_id
        self.replicas[primary.shard_id] = backup
        primary.replicator = Replicator(primary, backup, self.replication)
        primary.wire_replication()
        self._seed_backup(primary)
        self.registry.gauge("dist_replicas").set(len(self.replicas))
        return backup

    def _seed_backup(self, primary: ShardServer) -> None:
        """Direct-copy the primary onto its backup and fence the stream.

        The in-process equivalent of a full resync, used where both
        ends are already in the coordinator's hands (initial creation,
        split rebuilds, post-promotion respawns). A crashed backup is
        left alone — it will request a resync over the wire when it
        comes back and sees an unknown epoch.
        """
        backup = self.replicas[primary.shard_id]
        rep = primary.replicator
        rep.seed_direct()
        if backup.down:
            rep.degraded = True
            return
        items = primary.items()
        rebuilt = self.file_factory()
        if items:
            rebuilt.put_many(items)
        backup.replace_file(rebuilt)
        backup.dedup.merge(primary.dedup)
        if isinstance(rebuilt, DurableFile) and len(backup.dedup):
            # The window arrived out-of-band; checkpoint it so a backup
            # crash cannot forget pre-copy request ids.
            rebuilt.checkpoint(full=True)
        wal = getattr(primary.file, "wal", None)
        backup.replica_state = ReplicaState(
            epoch=rep.epoch,
            applied_seq=0,
            last_lsn=wal.last_lsn if wal is not None else 0,
        )

    def tick(self, now: float) -> list[int]:
        """Run one health-probe sweep on the caller's clock.

        Wired to the fabric clock in simulation
        (``FaultyRouter._tick``), to the ``tick`` control frame over a
        wire transport, and to a wall-clock asyncio loop in the serving
        tier. Returns the shard ids deposed by this sweep.
        """
        if self.detector is None:
            return []
        return self.detector.poll(self, now)

    def failover(self, shard_id: int, now: Optional[float] = None) -> bool:
        """Depose the down primary ``shard_id``; promote its backup.

        Refuses (returns False) unless the primary is actually down and
        its backup is up and was never degraded — a degraded backup may
        be missing acked writes, and losing those silently would be
        worse than staying unavailable. The deposed server's ids are
        rebound to the promoted backup on the router, so stale clients
        still reach data and converge through ordinary IAM patching;
        the dead object itself becomes unreachable and is never
        restarted.
        """
        dead = self.servers.get(shard_id)
        backup = self.replicas.get(shard_id)
        if dead is None or not dead.down:
            return False
        if backup is None or backup.down:
            return False
        rep = dead.replicator
        if rep is not None and rep.degraded:
            return False
        span = (
            TRACER.span("failover", shard=shard_id, backup=backup.shard_id)
            if TRACER.enabled
            else nullcontext()
        )
        with span:
            migration = self.migrations.pop(shard_id, None)
            if migration is not None:
                migration.abort()
            self.replicas.pop(shard_id)
            self.servers.pop(shard_id)
            gap = self.gap_of_shard(shard_id)
            self.model.reassign(gap, backup.shard_id)
            backup.promote()
            self.servers[backup.shard_id] = backup
            rebound = self.router.rebind(dead, backup)
            self.promoted_ids.update(rebound)
            self.failover_log.append(
                {
                    "shard": shard_id,
                    "promoted": backup.shard_id,
                    "at": now,
                }
            )
            self.registry.counter("dist_failovers_total").inc()
            self.registry.gauge("dist_shards_down").inc(-1)
            self.registry.gauge("dist_replicas").set(len(self.replicas))
            if TRACER.enabled:
                TRACER.emit(
                    "failover",
                    shard=shard_id,
                    promoted=backup.shard_id,
                    rebound=rebound,
                )
                TRACER.emit(
                    "promote", shard=backup.shard_id, records=len(backup)
                )
            # Black-box dump: the event window leading into the
            # promotion (a no-op unless forensics are configured).
            FLIGHT.dump(f"promote-shard-{backup.shard_id}")
            if self.replication is not None:
                self.ensure_backup(backup)
        return True

    def start_migration(self, shard_id: int, chunk_size: int = 64) -> Migration:
        """Begin moving ``shard_id``'s region to a fresh server."""
        if shard_id not in self.servers:
            raise FailoverError(f"shard {shard_id} is not in the partition")
        if shard_id in self.migrations:
            raise FailoverError(f"shard {shard_id} is already migrating")
        if self.servers[shard_id].down:
            raise FailoverError(f"cannot migrate down shard {shard_id}")
        migration = Migration(self, shard_id, chunk_size=chunk_size)
        self.migrations[shard_id] = migration
        return migration

    def step_migration(self, shard_id: int) -> bool:
        """Copy one chunk; True while the migration wants more steps."""
        migration = self.migrations.get(shard_id)
        if migration is None:
            return False
        return migration.step()

    def finish_migration(self, shard_id: int) -> Optional[int]:
        """Run the cutover barrier; returns the new owner id (or None)."""
        migration = self.migrations.get(shard_id)
        if migration is None:
            return None
        result = migration.finish()
        if result is None:
            self.migrations.pop(shard_id, None)
        return result

    def cutover_migration(self, migration: Migration, replayed: int) -> None:
        """Commit a finished migration into the partition (barrier tail)."""
        source = migration.source
        target = migration.target
        gap = self.gap_of_shard(migration.source_id)
        self.model.reassign(gap, target.shard_id)
        self.servers.pop(migration.source_id)
        self.servers[target.shard_id] = target
        self.migrations.pop(migration.source_id, None)
        self.migrations_done += 1
        # Retire the source as a forwarding stub: it stays registered
        # (stale clients still reach it and get forwarded + IAM'd) but
        # owns nothing and keeps no data.
        source.replicator = None
        retired_backup = self.replicas.pop(migration.source_id, None)
        if retired_backup is not None:
            retired_backup.replica_state = None
        source.replace_file(self.file_factory())
        if isinstance(target.file, DurableFile):
            # The merged dedup window arrived out-of-band of the
            # target's WAL; a full checkpoint persists it so a crash on
            # the new owner cannot forget pre-cutover request ids.
            target.file.checkpoint(full=True)
        self.registry.counter("dist_migrations_total").inc()
        self.registry.gauge("dist_replicas").set(len(self.replicas))
        if TRACER.enabled:
            TRACER.emit(
                "migration_cutover",
                shard=migration.source_id,
                target=target.shard_id,
                records=len(target),
                replayed=replayed,
            )
        if self.replication is not None:
            self.ensure_backup(target)
        self.maybe_split(target.shard_id)

    # ------------------------------------------------------------------
    # Scale-out
    # ------------------------------------------------------------------
    def maybe_split(self, shard_id: int) -> None:
        """Scale ``shard_id`` out while it exceeds the load policy."""
        if shard_id in self.migrations:
            # The region is mid-move; recutting it would invalidate the
            # migration snapshot. The target splits after cutover.
            return
        while self.shard_policy.should_split(len(self.servers[shard_id])):
            if not self.split_shard(shard_id):
                return

    def split_shard(self, shard_id: int) -> bool:
        """Cut the shard's region at its median records' split string."""
        server = self.servers[shard_id]
        items = server.items()
        if len(items) < 2:
            return False
        mid = len(items) // 2
        cut = split_string(items[mid - 1][0], items[mid][0], self.alphabet)
        new_id = self.split_gap_at(self.gap_of_shard(shard_id), cut)
        # The new half may itself still exceed the policy (bulk arrival).
        self.maybe_split(new_id)
        return True

    def split_gap_at(self, gap: int, cut: str) -> int:
        """Split gap ``gap`` at boundary ``cut``; returns the new shard id.

        Records above the cut move to a freshly created server; both
        sides are rebuilt compactly. Works on empty regions too (static
        pre-partitioning).

        With tracing on, the whole move runs in a ``shard_split`` span:
        triggered by a mutation it nests under that op's shard span, so
        the causal tree shows which client op paid for the scale-out.
        """
        span = (
            TRACER.span("shard_split", shard=self.model.shards[gap], cut=cut)
            if TRACER.enabled
            else nullcontext()
        )
        with span:
            return self._split_gap_at(gap, cut)

    def _split_gap_at(self, gap: int, cut: str) -> int:
        shard_id = self.model.shards[gap]
        server = self.servers[shard_id]
        old_dedup = server.dedup
        items = server.items()
        keep = [(k, v) for k, v in items if prefix_le(k, cut, self.alphabet)]
        move = items[len(keep):]
        new_server = self._new_server()
        for key, value in move:
            new_server.file.insert(key, value)
        rebuilt = self.file_factory()
        for key, value in keep:
            rebuilt.insert(key, value)
        server.replace_file(rebuilt)
        # Both halves inherit the full dedup window: a retried mutation
        # may land on either side of the fresh cut, and surplus entries
        # are harmless (a hit only short-circuits an op that did apply).
        server.dedup.merge(old_dedup)
        new_server.dedup.merge(old_dedup)
        self.model.split_region(gap, cut, new_server.shard_id)
        # Both halves changed contents wholesale; their backups restart
        # from fresh direct copies (and fresh shipping epochs).
        if self.replication is not None:
            self.ensure_backup(server)
            self.ensure_backup(new_server)
        self.registry.counter("dist_shard_splits_total").inc()
        self.registry.gauge("dist_shards").set(len(self.servers))
        if TRACER.enabled:
            TRACER.emit(
                "shard_split",
                shard=shard_id,
                new_shard=new_server.shard_id,
                boundary=cut,
                moved=len(move),
                stayed=len(keep),
            )
        return new_server.shard_id

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify the global invariants of the distributed file.

        The partition must be a well-formed image, each shard id must
        own exactly one region, every server's records must lie inside
        its region, and each shard's single-node file must satisfy its
        own structural invariants.
        """
        self.model.check()
        if sorted(self.model.shards) != sorted(self.servers):
            raise AssertionError(
                f"partition shards {sorted(self.model.shards)} != "
                f"servers {sorted(self.servers)}"
            )
        for gap, shard_id in enumerate(self.model.shards):
            low, high = self.model.region(gap)
            server = self.servers[shard_id]
            for key, _ in server.items():
                if low is not None and not prefix_gt(key, low, self.alphabet):
                    raise AssertionError(
                        f"key {key!r} on shard {shard_id} below its region"
                    )
                if high is not None and not prefix_le(key, high, self.alphabet):
                    raise AssertionError(
                        f"key {key!r} on shard {shard_id} above its region"
                    )
            server.engine.check()
        # Replicated pairs that claim to be in sync must actually be:
        # a semisync backup whose stream is fully confirmed holds the
        # byte-identical record set. Skipped while either end is down,
        # degraded, or has unconfirmed ships in flight (async lag).
        for primary_id, backup in self.replicas.items():
            primary = self.servers.get(primary_id)
            if primary is None or primary.down or backup.down:
                continue
            rep = primary.replicator
            if rep is None or rep.degraded or rep.confirmed != rep.seq:
                continue
            if backup.items() != primary.items():
                raise AssertionError(
                    f"backup {backup.shard_id} diverged from "
                    f"primary {primary_id}"
                )
            backup.engine.check()


class Cluster:
    """A complete simulated TH* deployment.

    Parameters
    ----------
    shards:
        Initial shard count; regions are pre-cut at evenly spaced
        single-digit boundaries (or at ``seed_boundaries``). Scale-out
        grows the count further as records arrive.
    bucket_capacity / policy / alphabet / trie_backend:
        Per-shard :class:`~repro.core.file.THFile` parameters
        (``trie_backend="compact"`` runs every shard on the flat
        column representation of :mod:`repro.core.compact`).
    shard_policy:
        The scale-out :class:`ShardPolicy`.
    durable:
        Wrap every shard in a :class:`~repro.storage.recovery.DurableFile`
        over its own in-memory stable store (values must then be ``str``
        or ``None``).
    registry:
        A shared :class:`~repro.obs.metrics.MetricsRegistry`; a private
        one is created when omitted.
    faults:
        A :class:`~repro.distributed.faults.FaultPlan`; when given the
        cluster's fabric is a fault-injecting
        :class:`~repro.distributed.faults.FaultyRouter` driving message
        drops, duplicates, delays and server crashes off the plan's
        seeded schedule.
    retry:
        The default :class:`~repro.distributed.faults.RetryPolicy`
        handed to clients (each :meth:`client` call may override it).
    """

    def __init__(
        self,
        shards: int = 1,
        bucket_capacity: int = 8,
        policy: Optional[SplitPolicy] = None,
        shard_policy: Optional[ShardPolicy] = None,
        alphabet: Alphabet = DEFAULT_ALPHABET,
        durable: bool = False,
        registry: Optional[MetricsRegistry] = None,
        seed_boundaries: Optional[list[str]] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        trie_backend: str = "cells",
        replication: Optional[object] = None,
    ):
        if shards < 1:
            raise ConfigurationError("a cluster needs at least one shard")
        self.alphabet = alphabet
        self.bucket_capacity = bucket_capacity
        self.policy = policy
        self.durable = durable
        self.trie_backend = trie_backend
        self.registry = registry if registry is not None else MetricsRegistry()
        self.retry = retry
        if isinstance(replication, str):
            replication = ReplicationPolicy(mode=replication)
        if replication is not None and not isinstance(
            replication, ReplicationPolicy
        ):
            raise ConfigurationError(
                "replication must be a ReplicationPolicy, "
                "'semisync'/'async', or None"
            )
        if faults is not None:
            from .faults import FaultyRouter

            self.router: Router = FaultyRouter(self.registry, faults)
        else:
            self.router = Router(self.registry)
        self.coordinator = Coordinator(
            alphabet,
            self.registry,
            shard_policy if shard_policy is not None else ShardPolicy(),
            self.router,
            self._make_file,
            replication=replication,
        )
        if replication is not None:
            # Failure detection rides the fabric clock: every tick of a
            # clock-bearing transport runs one health-probe sweep.
            self.router.on_tick = self.coordinator.tick
        self._clients = 0
        if seed_boundaries is None:
            seed_boundaries = self._even_boundaries(shards)
        for boundary in seed_boundaries:
            gap = self.coordinator.model.gap_above(boundary)
            self.coordinator.split_gap_at(gap, boundary)

    def _even_boundaries(self, shards: int) -> list[str]:
        """Evenly spaced single-digit cuts for a static pre-partition."""
        digits = self.alphabet.digits[1:]  # the min digit cannot cut
        if shards - 1 > len(digits):
            raise ConfigurationError(
                f"cannot pre-cut {shards} shards from {len(digits)} digits"
            )
        cuts = []
        for i in range(1, shards):
            cuts.append(digits[(i * len(digits)) // shards])
        return sorted(set(cuts))

    def _make_file(self):
        if self.durable:
            from ..storage.recovery import DurableFile
            from ..storage.wal import StableStore

            return DurableFile.open(
                StableStore(),
                engine="th",
                capacity=self.bucket_capacity,
                policy=self.policy,
                alphabet=self.alphabet,
                trie_backend=self.trie_backend,
            )
        return THFile(
            bucket_capacity=self.bucket_capacity,
            policy=self.policy,
            alphabet=self.alphabet,
            trie_backend=self.trie_backend,
        )

    # ------------------------------------------------------------------
    def client(
        self,
        warm: bool = False,
        retry: Optional[RetryPolicy] = None,
        read_preference: str = "primary",
    ) -> DistributedFile:
        """A new client handle.

        A cold client (the default) starts with a one-region image
        pointing at shard 0 — the TH* initial image — and learns the
        partition through IAMs. A warm client snapshots the current
        authoritative partition. ``retry`` overrides the cluster's
        default :class:`~repro.distributed.faults.RetryPolicy`.
        ``read_preference="replica"`` routes scan legs to backups when
        one is in sync (falling back to the primary per leg).
        """
        from .client import DistributedFile

        self._clients += 1
        image = self.coordinator.model.copy() if warm else None
        return DistributedFile(
            self,
            image=image,
            client_id=self._clients,
            retry=retry if retry is not None else self.retry,
            read_preference=read_preference,
        )

    def shard_count(self) -> int:
        """Number of live shards."""
        return len(self.coordinator.servers)

    def __len__(self) -> int:
        return self.coordinator.total_records()

    def check(self) -> None:
        """Verify all global invariants (see :meth:`Coordinator.check`)."""
        self.coordinator.check()

    def load_report(self) -> list[dict]:
        """Per-shard load rows (for tables and benchmarks)."""
        rows = []
        for gap, shard_id in enumerate(self.coordinator.model.shards):
            server = self.coordinator.servers[shard_id]
            low, high = self.coordinator.model.region(gap)
            rows.append(
                {
                    "shard": shard_id,
                    "region": f"({low or ''}..{high or ''}]",
                    "records": len(server),
                    "load": round(
                        self.coordinator.shard_policy.load_factor(len(server)), 3
                    ),
                    "buckets": server.engine.bucket_count(),
                }
            )
        return rows
