"""Binary serialisation tests: the paper's six-byte cell layout."""

import pytest

from repro import LOWERCASE, StorageError, THFile, Trie
from repro.core.cells import NIL, edge_to
from repro.storage.buckets import Bucket
from repro.storage.serializer import (
    CELL_BYTES,
    deserialize_bucket,
    deserialize_trie,
    serialize_bucket,
    serialize_trie,
)


class TestTrieSerialization:
    def test_six_bytes_per_cell(self, fig1_file):
        data = serialize_trie(fig1_file.trie)
        header = 4 + len(fig1_file.alphabet.digits) + 2
        assert len(data) == header + CELL_BYTES * fig1_file.trie_size()

    def test_roundtrip_preserves_mapping(self, fig1_file, words):
        data = serialize_trie(fig1_file.trie)
        restored = deserialize_trie(data)
        restored.check()
        for w in words:
            assert (
                restored.search(w).bucket == fig1_file.trie.search(w).bucket
            )

    def test_roundtrip_with_nil_leaves(self):
        trie = Trie(LOWERCASE, root_ptr=0)
        index = trie.cells.allocate("h", 0, 0, NIL)
        trie.root = edge_to(index)
        restored = deserialize_trie(serialize_trie(trie))
        assert restored.search("z").bucket is None
        assert restored.search("a").bucket == 0

    def test_empty_trie(self):
        trie = Trie(LOWERCASE, root_ptr=0)
        restored = deserialize_trie(serialize_trie(trie))
        assert restored.root == 0
        assert restored.node_count == 0

    def test_freed_cells_compacted(self, fig1_file):
        trie = fig1_file.trie
        # Simulate a merge that freed a cell, then serialise.
        fig1_file.delete("i")  # nils a leaf (no cell freed) - force one:
        live_before = trie.node_count
        data = serialize_trie(trie)
        restored = deserialize_trie(data)
        assert restored.node_count == live_before

    def test_size_claim_1000_buckets(self, generator):
        # Section 3.1: a 6 Kbyte buffer addresses about a 1000-bucket
        # file. 1000 buckets ~ 1000 cells ~ 6000 bytes + small header.
        keys = generator.uniform(3000)
        f = THFile(bucket_capacity=4)
        for k in keys:
            f.insert(k)
        data = serialize_trie(f.trie)
        per_bucket = len(data) / f.bucket_count()
        assert per_bucket < 8  # ~6 bytes of cell per bucket plus header


class TestBucketSerialization:
    def test_roundtrip(self):
        b = Bucket()
        b.header_path = "ha"
        b.insert("had", "value1")
        b.insert("have", None)
        restored = deserialize_bucket(serialize_bucket(b))
        assert restored.header_path == "ha"
        assert list(restored.items()) == [("had", "value1"), ("have", None)]

    def test_empty_bucket(self):
        restored = deserialize_bucket(serialize_bucket(Bucket()))
        assert len(restored) == 0
        assert restored.header_path == ""

    def test_non_string_values_rejected(self):
        b = Bucket()
        b.insert("a", 42)
        with pytest.raises(StorageError):
            serialize_bucket(b)

    def test_none_vs_empty_string_distinguished(self):
        b = Bucket()
        b.insert("a", None)
        b.insert("b", "")
        restored = deserialize_bucket(serialize_bucket(b))
        assert restored.get("a") is None
        assert restored.get("b") == ""
