"""A shared/exclusive lock manager with FIFO fairness and accounting.

Resources are identified by hashable ids (``('bucket', 7)``,
``('page', 3)``, ``'N'`` ...). Grants follow strict FIFO order: a
request waits if an incompatible lock is held *or* an earlier request is
already waiting (no starvation of writers). The manager records every
conflict and the time spent waiting, which is what the concurrency
benches report.
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Hashable

__all__ = ["LockMode", "LockManager"]


class LockMode(enum.Enum):
    """Shared (readers) or exclusive (writers)."""

    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: set[tuple[int, LockMode]], owner: int, mode: LockMode) -> bool:
    """Can ``owner`` acquire ``mode`` given the current holders?"""
    for held_owner, held_mode in held:
        if held_owner == owner:
            continue
        if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
            return False
    return True


class LockManager:
    """Grant/queue/release S and X locks; count conflicts and waits."""

    def __init__(self) -> None:
        #: resource -> set of (owner, mode) currently holding it.
        self._held: dict[Hashable, set[tuple[int, LockMode]]] = {}
        #: resource -> FIFO of (owner, mode) waiting.
        self._queues: dict[Hashable, deque[tuple[int, LockMode]]] = {}
        self.conflicts = 0
        self.grants = 0

    # ------------------------------------------------------------------
    def try_acquire(self, owner: int, resource: Hashable, mode: LockMode) -> bool:
        """Acquire immediately or join the queue; True when granted.

        Re-acquiring a held resource upgrades S->X when possible (only
        holder) and is a no-op otherwise.
        """
        held = self._held.setdefault(resource, set())
        queue = self._queues.setdefault(resource, deque())

        mine = [(o, m) for o, m in held if o == owner]
        if mine:
            if mode is LockMode.SHARED or (owner, LockMode.EXCLUSIVE) in held:
                return True
            # Upgrade request: possible only when alone.
            if len(held) == len(mine):
                held.discard((owner, LockMode.SHARED))
                held.add((owner, LockMode.EXCLUSIVE))
                self.grants += 1
                return True
            self.conflicts += 1
            queue.append((owner, mode))
            return False

        already_queued = any(o == owner for o, _ in queue)
        if not already_queued and not queue and _compatible(held, owner, mode):
            held.add((owner, mode))
            self.grants += 1
            return True
        if not already_queued:
            self.conflicts += 1
            queue.append((owner, mode))
        return False

    def release(self, owner: int, resource: Hashable) -> None:
        """Drop ``owner``'s lock on one resource (lock coupling)."""
        held = self._held.get(resource)
        if held:
            held.difference_update({(owner, m) for m in LockMode})
        self._promote()

    def release_all(self, owner: int) -> list[Hashable]:
        """Drop every lock ``owner`` holds; return resources released."""
        released = []
        for resource, held in self._held.items():
            before = len(held)
            held.difference_update({(owner, m) for m in LockMode})
            if len(held) != before:
                released.append(resource)
        self._promote()
        return released

    def holds(self, owner: int, resource: Hashable) -> bool:
        """True when ``owner`` holds ``resource`` in any mode."""
        return any(o == owner for o, _ in self._held.get(resource, ()))

    def waiting(self, owner: int) -> bool:
        """True when ``owner`` is queued anywhere."""
        return any(
            any(o == owner for o, _ in queue) for queue in self._queues.values()
        )

    def _promote(self) -> None:
        """Grant queued requests that became compatible, FIFO per resource."""
        for resource, queue in self._queues.items():
            held = self._held.setdefault(resource, set())
            while queue:
                owner, mode = queue[0]
                if _compatible(held, owner, mode):
                    queue.popleft()
                    held.add((owner, mode))
                    self.grants += 1
                else:
                    break

    def poll(self, owner: int) -> bool:
        """After some release, has ``owner``'s queued request been granted?

        (Grants happen inside :meth:`_promote`; this just checks.)
        """
        return not self.waiting(owner)
