"""Whole-program flow analysis for the project linter.

Where :mod:`repro.lint.engine` runs per-file AST rules, this package
parses the whole tree once into cacheable module summaries
(:mod:`.graph`), links them into an import graph and a conservatively
resolved call graph, and runs the interprocedural ruleset
(:mod:`.rules`, ``TH010``–``TH014``) on top: event-loop purity through
call chains, wire-protocol exhaustiveness, commit-path ordering, fabric
clock discipline and paranoid-audit coverage. :mod:`.engine` drives a
run — incremental cache, inline suppressions, the reviewed baseline —
and :mod:`.sarif` exports the merged report for code scanning.
"""

from .engine import (
    DEFAULT_BASELINE,
    DEFAULT_CACHE,
    FlowResult,
    FlowStats,
    run_flow,
)
from .graph import Program, build_program, summarize_source, to_dot
from .rules import all_flow_rules
from .sarif import to_sarif, write_sarif

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE",
    "FlowResult",
    "FlowStats",
    "Program",
    "all_flow_rules",
    "build_program",
    "run_flow",
    "summarize_source",
    "to_dot",
    "to_sarif",
    "write_sarif",
]
