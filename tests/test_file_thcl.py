"""THFile behaviour under THCL policies — the paper's load control."""

import pytest

from repro import SplitPolicy, THFile


def fill(policy, keys, b=10):
    f = THFile(bucket_capacity=b, policy=policy)
    for k in keys:
        f.insert(k)
    return f


class TestCompactLoads:
    def test_ascending_d0_reaches_100(self, sorted_keys):
        f = fill(SplitPolicy.thcl_ascending(0), sorted_keys)
        f.check()
        # Every bucket but the last is exactly full.
        sizes = [len(f.store.peek(a)) for a in sorted(f.store.live_addresses())]
        assert all(s == 10 for s in sizes[:-1])
        assert f.load_factor() > 0.95

    def test_descending_d0_reaches_100(self, sorted_keys):
        f = fill(SplitPolicy.thcl_descending(0), list(reversed(sorted_keys)))
        f.check()
        assert f.load_factor() > 0.95

    def test_load_decreases_with_d_ascending(self, sorted_keys):
        loads = []
        for d in (0, 2, 5):
            f = fill(SplitPolicy.thcl_ascending(d), sorted_keys)
            loads.append(f.load_factor())
        assert loads[0] > loads[1] > loads[2]

    def test_d_controls_load_linearly_ascending(self, sorted_keys):
        # Deterministic splits leave exactly b-d records: a ~= (b-d)/b.
        b = 10
        for d in (0, 2, 4):
            f = fill(SplitPolicy.thcl_ascending(d), sorted_keys, b=b)
            expected = (b - d) / b
            assert f.load_factor() == pytest.approx(expected, abs=0.05)


class TestGuaranteedHalf:
    def test_fifty_percent_both_orders(self, sorted_keys):
        for keys in (sorted_keys, list(reversed(sorted_keys))):
            f = fill(SplitPolicy.thcl_guaranteed_half(), keys)
            f.check()
            assert f.load_factor() >= 0.49

    def test_every_bucket_at_least_half_after_ordered_load(self, sorted_keys):
        f = fill(SplitPolicy.thcl_guaranteed_half(), sorted_keys)
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        assert min(sizes) >= 5


class TestRandomInsertions:
    def test_load_around_seventy(self, small_keys):
        f = fill(SplitPolicy.thcl_guaranteed_half(), small_keys)
        f.check()
        assert 0.6 <= f.load_factor() <= 0.85

    def test_matches_basic_th_roughly(self, small_keys):
        thcl = fill(SplitPolicy.thcl_guaranteed_half(), small_keys)
        basic = fill(SplitPolicy.basic_th(), small_keys)
        assert abs(thcl.load_factor() - basic.load_factor()) < 0.15


class TestMixedWorkloads:
    def test_sorted_then_random_updates(self, sorted_keys, generator):
        f = fill(SplitPolicy.thcl_ascending(0), sorted_keys)
        extra = generator.uniform(150, salt=5)
        for k in extra:
            if not f.contains(k):
                f.insert(k)
        f.check()
        all_keys = sorted(set(sorted_keys) | set(extra))
        assert list(f.keys()) == all_keys

    def test_interleaved_runs(self, generator):
        keys = generator.interleaved(300, runs=5)
        f = fill(SplitPolicy.thcl(), keys)
        f.check()
        assert list(f.keys()) == sorted(keys)

    def test_variable_length_keys(self, generator):
        keys = generator.variable_length(300)
        f = fill(SplitPolicy.thcl(), keys)
        f.check()
        assert list(f.keys()) == sorted(keys)

    def test_clustered_prefix_keys(self, generator):
        # Long shared prefixes: the rare-case chain regime.
        keys = generator.clustered(200)
        f = fill(SplitPolicy.thcl(), keys, b=4)
        f.check()
        assert list(f.keys()) == sorted(keys)
        basic = fill(SplitPolicy.basic_th(), keys, b=4)
        basic.check()
        assert list(basic.keys()) == sorted(keys)

    def test_skewed_keys(self, generator):
        keys = generator.skewed(300)
        for policy in (SplitPolicy.basic_th(), SplitPolicy.thcl()):
            f = fill(policy, keys)
            f.check()
            assert len(f) == len(keys)


class TestPreferExistingBoundary:
    """The Section 4.5 refinement: splits through step 3.4 when possible."""

    def policy(self):
        return SplitPolicy(
            bounding_offset=None,
            nil_nodes=False,
            merge="guaranteed",
            prefer_existing_boundary=True,
        )

    def test_requires_thcl(self):
        from repro import CapacityError

        with pytest.raises(CapacityError):
            SplitPolicy(prefer_existing_boundary=True)  # nil_nodes=True

    def test_fires_on_prefix_heavy_keys(self):
        import random

        from repro import Alphabet, THFile

        rng = random.Random(5)
        keys = sorted(
            {"".join(rng.choice("ab") for _ in range(12)) for _ in range(600)}
        )
        f = THFile(8, self.policy(), alphabet=Alphabet(" ab"))
        fired = [0]
        original = f._plan_on_existing_boundary

        def spy(records):
            plan = original(records)
            if plan is not None:
                fired[0] += 1
            return plan

        f._plan_on_existing_boundary = spy
        for k in keys:
            f.insert(k)
        f.check()
        assert fired[0] > 0
        assert list(f.keys()) == keys

    def test_consistency_under_random_keys(self, small_keys):
        f = fill(self.policy(), small_keys)
        f.check()
        assert list(f.keys()) == sorted(small_keys)

    def test_no_node_added_on_existing_boundary_split(self):
        # Directly exercise the planner: when it returns a plan, the
        # boundary is on the anchor's path, so insert_boundary adds 0.
        import random

        from repro import Alphabet, THFile

        rng = random.Random(7)
        keys = sorted(
            {"".join(rng.choice("ab") for _ in range(12)) for _ in range(400)}
        )
        f = THFile(8, self.policy(), alphabet=Alphabet(" ab"))
        for k in keys:
            cells_before = f.trie_size()
            splits_before = f.stats.splits

            f.insert(k)
            if f.stats.splits > splits_before:
                added = f.trie_size() - cells_before
                assert added >= 0  # step-3.4 splits add exactly zero
        f.check()


class TestTrieSizeEffects:
    def test_full_load_costs_trie_size(self, sorted_keys):
        # d = 0 needs longer split strings than a mid split (Sec 4.5).
        compact = fill(SplitPolicy.thcl_ascending(0), sorted_keys)
        mid = fill(SplitPolicy.thcl_guaranteed_half(), sorted_keys)
        assert compact.growth_rate() > mid.growth_rate()

    def test_growth_rate_bounds(self, sorted_keys):
        # s stays within the paper's ballpark (1..~2.2) for b=10..50.
        for b in (10, 20):
            f = fill(SplitPolicy.thcl_ascending(0), sorted_keys, b=b)
            assert 1.0 <= f.growth_rate() <= 2.6
