"""Distribution statistics: checking the paper's *explanations*."""

from repro import SplitPolicy, THFile
from repro.analysis.distributions import (
    boundary_length_histogram,
    bucket_load_histogram,
    leaf_depth_histogram,
    summarize,
)


def fill(policy, keys, b=10):
    f = THFile(bucket_capacity=b, policy=policy)
    for k in keys:
        f.insert(k)
    return f


class TestHistograms:
    def test_bucket_load_histogram_totals(self, small_keys):
        f = fill(None, small_keys)
        histogram = bucket_load_histogram(f)
        assert sum(histogram.values()) == f.bucket_count()
        assert sum(v * c for v, c in histogram.items()) == len(f)

    def test_compact_load_is_a_spike(self, sorted_keys):
        f = fill(SplitPolicy.thcl_ascending(0), sorted_keys)
        histogram = bucket_load_histogram(f)
        # All buckets full except possibly the last partial one.
        assert histogram.get(10, 0) >= f.bucket_count() - 1

    def test_boundary_lengths_cover_the_trie(self, small_keys):
        f = fill(None, small_keys)
        histogram = boundary_length_histogram(f.trie)
        assert sum(histogram.values()) == f.trie_size()

    def test_leaf_depths_cover_the_leaves(self, small_keys):
        f = fill(None, small_keys)
        histogram = leaf_depth_histogram(f.trie)
        assert sum(histogram.values()) == f.trie_size() + 1

    def test_summarize(self):
        stats = summarize({2: 3, 4: 1})
        assert stats == {"mean": 2.5, "min": 2, "max": 4, "total": 4}
        assert summarize({})["total"] == 0


class TestPaperExplanations:
    def test_compact_loads_need_longer_split_strings(self, sorted_keys):
        # Section 4.5 (i): adjacent keys share more digits, so the d = 0
        # boundaries (cut between adjacent keys) are longer than those of
        # the Fig 10 sweep's larger d, where the bounding key c'' sits
        # d+1 keys above the split key.
        def policy(d):
            return SplitPolicy(
                split_position=-(d + 1),
                bounding_offset=None,
                nil_nodes=False,
                merge="guaranteed",
            )

        compact = fill(policy(0), sorted_keys)
        tuned = fill(policy(4), sorted_keys)
        compact_mean = summarize(boundary_length_histogram(compact.trie))["mean"]
        tuned_mean = summarize(boundary_length_histogram(tuned.trie))["mean"]
        assert compact_mean > tuned_mean

    def test_ordered_insertions_skew_leaf_depths(self, sorted_keys, generator):
        ordered = fill(None, sorted_keys)
        shuffled = fill(None, generator.uniform(len(sorted_keys), salt=8))
        ordered_max = summarize(leaf_depth_histogram(ordered.trie))["max"]
        random_max = summarize(leaf_depth_histogram(shuffled.trie))["max"]
        assert ordered_max >= random_max

    def test_guaranteed_half_bounds_the_histogram(self, sorted_keys):
        f = fill(SplitPolicy.thcl_guaranteed_half(), sorted_keys)
        histogram = bucket_load_histogram(f)
        assert min(histogram) >= 5  # every bucket at least half full
