"""Capacity planning — the back-of-envelope claims of Section 3.1.

The paper argues TH's practicality with concrete arithmetic: a 6 Kbyte
in-core buffer addresses about a 1000-bucket file (64 Kbyte about
11 000); a bi-level MLTH with 10 Kbyte pages covers almost 16 million
records at ``b = 20`` (64 Kbyte pages: over six hundred million); with
MS-DOS 4 Kbyte pages and buckets, a file spans over a gigabyte. This
module reproduces that arithmetic from the layout constants and the
measured load factors, so the claims can be checked — and re-derived for
modern parameters.
"""

from __future__ import annotations


from ..storage.layout import Layout

__all__ = [
    "addressable_buckets",
    "bilevel_buckets",
    "bilevel_records",
    "bilevel_file_bytes",
    "capacity_table",
]


def addressable_buckets(buffer_bytes: int, layout: Layout = None) -> int:
    """Buckets an in-core trie buffer of ``buffer_bytes`` addresses.

    The trie grows at ~one cell per bucket (Section 3.1), so the buffer
    holds ``buffer_bytes / cell_bytes`` cells ~ as many buckets.
    """
    layout = layout or Layout()
    return buffer_bytes // layout.cell_bytes


def bilevel_buckets(
    page_bytes: int, page_load: float = 0.67, layout: Layout = None
) -> int:
    """Buckets addressable by a two-page-level MLTH (root in core).

    Each page holds ``page_bytes / cell_bytes`` cells at the measured
    page load; a page with ``n`` cells has ``n + 1`` children, and two
    levels multiply the fan-outs.
    """
    layout = layout or Layout()
    cells = int(page_bytes // layout.cell_bytes * page_load)
    fanout = cells + 1
    return fanout * fanout


def bilevel_records(
    page_bytes: int,
    bucket_capacity: int,
    page_load: float = 0.67,
    bucket_load: float = 0.7,
    layout: Layout = None,
) -> int:
    """Records of a two-level MLTH file at the given loads."""
    return int(
        bilevel_buckets(page_bytes, page_load, layout)
        * bucket_capacity
        * bucket_load
    )


def bilevel_file_bytes(
    page_bytes: int,
    bucket_bytes: int,
    page_load: float = 0.67,
    layout: Layout = None,
) -> int:
    """Total data bytes of a two-level MLTH file (bucket granularity)."""
    return bilevel_buckets(page_bytes, page_load, layout) * bucket_bytes


def capacity_table() -> list[dict[str, object]]:
    """Section 3.1's published figures against this arithmetic."""
    rows: list[dict[str, object]] = []
    rows.append(
        {
            "claim": "6 KB trie buffer ~ 1000-bucket file",
            "paper": "1 000",
            "computed": addressable_buckets(6 * 1024),
        }
    )
    rows.append(
        {
            "claim": "64 KB trie buffer ~ 11000-bucket file",
            "paper": "11 000",
            "computed": addressable_buckets(64 * 1024),
        }
    )
    rows.append(
        {
            "claim": "bi-level, p=10KB, b=20: ~16M records",
            "paper": "~16 000 000",
            "computed": bilevel_records(10 * 1024, 20),
        }
    )
    rows.append(
        {
            "claim": "bi-level, p=64KB, b=20: >600M records",
            "paper": ">600 000 000",
            "computed": bilevel_records(64 * 1024, 20),
        }
    )
    rows.append(
        {
            # The paper's "may span over 1 GByte" is the capacity bound,
            # i.e. full pages; at the measured ~67% page load the same
            # setup covers ~0.8 GB.
            "claim": "bi-level, 4KB pages+buckets: >1GB file (full pages)",
            "paper": ">1 GB",
            "computed": f"{bilevel_file_bytes(4096, 4096, page_load=1.0) / 2**30:.2f} GB",
        }
    )
    rows.append(
        {
            "claim": "30 KB buffer covers a 20MB disk of 4KB clusters",
            "paper": "20 MB",
            "computed": f"{addressable_buckets(30 * 1024) * 4096 / 2**20:.0f} MB",
        }
    )
    return rows
