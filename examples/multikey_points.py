#!/usr/bin/env python
"""Multikey trie hashing: two-attribute records and rectangle queries.

A (surname, city) file addressed by interleaved digits: exact lookups
cost one access like single-key TH; axis-aligned rectangle queries ride
the z-order curve (one composite range scan plus a filter). At the end,
the grid-file directory model shows the directory blow-up the paper
predicts tries avoid.

Run:  python examples/multikey_points.py
"""

from repro.multikey import GridDirectoryModel, MultikeyTHFile
from repro.workloads import KeyGenerator


def main() -> None:
    gen = KeyGenerator(7)
    surnames = gen.skewed(800, length=6, concentration=1.5, salt=1)
    cities = gen.skewed(800, length=6, concentration=1.5, salt=2)
    people = sorted(set(zip(surnames, cities)))

    f = MultikeyTHFile((6, 6), bucket_capacity=20)
    for i, person in enumerate(people):
        f.insert(person, i)
    print(f"{len(f)} (surname, city) records; "
          f"trie cells = {f.directory_size()}, load = {f.load_factor():.1%}")

    # --- Exact match: one disk access --------------------------------
    target = people[123]
    before = f.file.store.disk.stats.reads
    f.get(target)
    print(f"exact lookup {target}: "
          f"{f.file.store.disk.stats.reads - before} disk access")

    # --- Rectangle query ----------------------------------------------
    lows, highs = ("b", "a"), ("d", "c")
    matches, scanned = f.rectangle_stats(lows, highs)
    print(
        f"\nrectangle surname in [b,d], city in [a,c]: "
        f"{matches} hits out of {scanned} scanned candidates "
        f"({matches / max(scanned, 1):.0%} z-scan selectivity)"
    )
    sample = list(f.rectangle(lows, highs))[:5]
    for values, payload in sample:
        print(f"  {values} -> record #{payload}")

    # --- The grid-file comparison --------------------------------------
    grid = GridDirectoryModel(2, bucket_capacity=20)
    for person in people:
        grid.insert(person)
    print(
        f"\ndirectory sizes for the same data:\n"
        f"  grid file : {grid.directory_size()} entries "
        f"(scales {grid.scale_sizes()}, only {grid.occupied_cells()} cells "
        "hold data)\n"
        f"  trie      : {f.directory_size()} cells "
        "- no cross-product blow-up under skew (Section 6)"
    )


if __name__ == "__main__":
    main()
