"""Disk latency models for the timing-flavoured benchmarks.

The paper reports costs in accesses; converting to time needs a device
model. :class:`LatencyModel` implements the classic three-term cost of a
random block access — average seek, half-rotation, and transfer — with
presets for a vintage early-80s drive (the hardware contemporary with the
paper) and a 2000s-era 7200 rpm drive. The reproduction's claims never
depend on these constants (they scale all methods equally), which is why
the disk-timing benches are labelled the least faithful part of the
reproduction.
"""

from __future__ import annotations

__all__ = ["LatencyModel"]


class LatencyModel:
    """Seek + rotation + transfer cost for one block access.

    Parameters
    ----------
    seek_ms:
        Average seek time in milliseconds.
    rpm:
        Spindle speed; average rotational delay is half a revolution.
    transfer_mb_per_s:
        Sustained transfer rate in megabytes per second.
    """

    __slots__ = ("seek_ms", "rpm", "transfer_mb_per_s")

    def __init__(self, seek_ms: float, rpm: float, transfer_mb_per_s: float):
        if seek_ms < 0 or rpm <= 0 or transfer_mb_per_s <= 0:
            raise ValueError("latency parameters must be positive")
        self.seek_ms = seek_ms
        self.rpm = rpm
        self.transfer_mb_per_s = transfer_mb_per_s

    @classmethod
    def vintage_1981(cls) -> LatencyModel:
        """A drive contemporary with the paper (IBM PC-era winchester)."""
        return cls(seek_ms=85.0, rpm=3600.0, transfer_mb_per_s=0.625)

    @classmethod
    def hdd_7200rpm(cls) -> LatencyModel:
        """A commodity 7200 rpm hard drive."""
        return cls(seek_ms=8.5, rpm=7200.0, transfer_mb_per_s=160.0)

    def access_seconds(self, block_bytes: int) -> float:
        """Simulated seconds for one random access of ``block_bytes``."""
        seek = self.seek_ms / 1000.0
        rotation = 0.5 * 60.0 / self.rpm
        transfer = block_bytes / (self.transfer_mb_per_s * 1_000_000.0)
        return seek + rotation + transfer
