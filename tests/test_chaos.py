"""Fault injection, recovery, and the chaos differential oracle.

Three layers of assurance over :mod:`repro.distributed.faults`:

* unit tests that force single faults (a dropped request, a dropped
  reply, a timed-out delivery, a crashed server) and check the exact
  protocol response — retry, dedup hit, typed error;
* the acceptance-grade chaos run: thousands of mixed operations against
  a multi-shard durable cluster under seeded drops / duplicates /
  delays plus forced crash-restart cycles must end byte-identical to a
  single-node oracle with zero double-applied mutations;
* a Hypothesis stateful machine interleaving operations, crashes and
  heals against a dict model.
"""

import string

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro import Cluster, DuplicateKeyError, ShardPolicy
from repro.distributed import (
    FaultPlan,
    FaultyRouter,
    MessageLostError,
    OpTimeoutError,
    RetryPolicy,
    ServerDownError,
    ShardUnavailableError,
    run_chaos,
)
from repro.distributed.chaos import chaos_table
from repro.distributed.messages import Op
from repro.storage.dedup import DedupWindow


def _counter_sum(registry, name):
    return sum(
        inst.value
        for inst in registry.instruments()
        if inst.name == name and not hasattr(inst, "set") and hasattr(inst, "value")
    )


def _faulty_cluster(plan=None, retry=None, **kwargs):
    kwargs.setdefault("shards", 2)
    return Cluster(
        faults=plan if plan is not None else FaultPlan(),
        retry=retry,
        **kwargs,
    )


# ======================================================================
# FaultPlan
# ======================================================================
class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(edges={"sideways": {"drop": 0.5}})

    def test_deterministic_schedule(self):
        a = FaultPlan(seed=7, drop=0.3, duplicate=0.2, delay=0.2)
        b = FaultPlan(seed=7, drop=0.3, duplicate=0.2, delay=0.2)
        for _ in range(200):
            da, db = a.decide("request", 0), b.decide("request", 0)
            assert (da.drop, da.duplicate, da.delay) == (
                db.drop,
                db.duplicate,
                db.delay,
            )

    def test_shard_override_beats_edge_beats_global(self):
        plan = FaultPlan(
            drop=0.1,
            edges={"reply": {"drop": 0.5}},
            shards={3: {"drop": 0.9}},
        )
        assert plan.rate("drop", "request", 0) == 0.1
        assert plan.rate("drop", "reply", 0) == 0.5
        assert plan.rate("drop", "reply", 3) == 0.9

    def test_heal_stops_everything(self):
        plan = FaultPlan(seed=1, drop=1.0)
        assert plan.decide("request", 0).drop
        plan.heal()
        assert not plan.decide("request", 0).drop
        plan.resume()
        assert plan.decide("request", 0).drop

    def test_forced_faults_consumed_first(self):
        plan = FaultPlan(seed=1)  # all rates zero
        plan.force("request", "drop")
        plan.force("request", "duplicate")
        assert plan.decide("request", 0).drop
        assert plan.decide("request", 0).duplicate
        third = plan.decide("request", 0)
        assert not (third.drop or third.duplicate or third.delay)


# ======================================================================
# Forced single faults through the full client/server stack
# ======================================================================
class TestForcedFaults:
    def test_dropped_request_is_retried_transparently(self):
        plan = FaultPlan()
        cluster = _faulty_cluster(plan)
        f = cluster.client()
        plan.force("request", "drop")
        f.insert("apple", "A")
        assert f.get("apple") == "A"
        assert f.retries_total == 1
        assert _counter_sum(cluster.registry, "dist_retries_total") == 1
        assert _counter_sum(cluster.registry, "dist_faults_total") == 1
        assert cluster.router.duplicate_applies() == 0

    def test_dropped_reply_retries_into_dedup_hit(self):
        # The dangerous case: the server applied the insert, only the
        # reply vanished. The retry must NOT raise DuplicateKeyError —
        # the dedup window replays the recorded outcome.
        plan = FaultPlan()
        cluster = _faulty_cluster(plan, durable=True)
        f = cluster.client()
        plan.force("reply", "drop")
        f.insert("apple", "A")
        assert f.get("apple") == "A"
        assert _counter_sum(cluster.registry, "dist_dedup_hits_total") == 1
        assert cluster.router.duplicate_applies() == 0

    def test_duplicated_request_applies_once(self):
        plan = FaultPlan()
        cluster = _faulty_cluster(plan)
        f = cluster.client()
        plan.force("request", "duplicate")
        f.insert("apple", "A")
        assert f.get("apple") == "A"
        assert cluster.router.duplicate_applies() == 0
        assert _counter_sum(cluster.registry, "dist_dedup_hits_total") == 1

    def test_reads_survive_duplication_without_dedup(self):
        plan = FaultPlan()
        cluster = _faulty_cluster(plan)
        f = cluster.client()
        f.insert("apple", "A")
        plan.force("request", "duplicate")
        assert f.get("apple") == "A"
        assert _counter_sum(cluster.registry, "dist_dedup_hits_total") == 0

    def test_slow_reply_times_out_then_dedups(self):
        plan = FaultPlan(delay_seconds=(2.0, 2.0))
        retry = RetryPolicy(timeout=0.5)
        cluster = _faulty_cluster(plan, retry=retry, durable=True)
        f = cluster.client()
        plan.force("reply", "delay")  # round trip 2.0 > timeout 0.5
        f.insert("apple", "A")
        assert f.get("apple") == "A"
        assert f.retries_total >= 1
        assert _counter_sum(cluster.registry, "dist_dedup_hits_total") == 1
        assert cluster.router.duplicate_applies() == 0

    def test_error_replies_are_not_deduped(self):
        cluster = _faulty_cluster(FaultPlan())
        f = cluster.client()
        f.insert("apple", "A")
        with pytest.raises(DuplicateKeyError):
            f.insert("apple", "B")
        # A *new* logical op (fresh rid) must re-raise, not replay.
        with pytest.raises(DuplicateKeyError):
            f.insert("apple", "C")
        assert f.get("apple") == "A"


# ======================================================================
# Server lifecycle
# ======================================================================
class TestCrashRecovery:
    def test_down_server_refuses_with_typed_error(self):
        cluster = _faulty_cluster(FaultPlan(), shards=1, durable=True)
        router = cluster.router
        router.crash_server(0)
        with pytest.raises(ServerDownError):
            router.client_send(0, Op.get("a"))

    def test_retry_rides_out_downtime(self):
        cluster = _faulty_cluster(FaultPlan(), shards=1, durable=True)
        f = cluster.client()
        f.insert("apple", "A")
        cluster.router.crash_server(0, downtime=0.05)
        assert f.get("apple") == "A"  # backoff sleeps past the outage
        assert f.retries_total >= 1
        assert _counter_sum(cluster.registry, "dist_server_recoveries_total") == 1

    def test_durable_crash_recovers_acknowledged_records(self):
        cluster = _faulty_cluster(
            FaultPlan(), shards=2, durable=True,
            shard_policy=ShardPolicy(shard_capacity=16),
        )
        f = cluster.client()
        keys = [
            f"key{chr(97 + i // 26)}{chr(97 + i % 26)}" for i in range(60)
        ]
        for key in keys:
            f.insert(key, key.upper())
        router = cluster.router
        for shard_id in list(cluster.coordinator.servers):
            router.crash_server(shard_id)
        assert cluster.coordinator.down_shards() == sorted(
            cluster.coordinator.servers
        )
        router.restore_all()
        assert cluster.coordinator.down_shards() == []
        cluster.check()
        assert [k for k, _ in f.items()] == sorted(keys)

    def test_nondurable_crash_is_an_outage_not_data_loss(self):
        cluster = _faulty_cluster(FaultPlan(), shards=1, durable=False)
        f = cluster.client()
        f.insert("apple", "A")
        cluster.router.crash_server(0, downtime=0.01)
        assert f.get("apple") == "A"

    def test_exhausted_retries_raise_shard_unavailable(self):
        retry = RetryPolicy(max_retries=2, base_delay=0.001, max_delay=0.002)
        cluster = _faulty_cluster(FaultPlan(), shards=1, retry=retry)
        f = cluster.client()
        f.insert("apple", "A")
        cluster.router.crash_server(0)  # no scheduled restart
        with pytest.raises(ShardUnavailableError) as info:
            f.get("apple")
        assert isinstance(info.value.__cause__, ServerDownError)
        # Recovery clears the condition without a new client.
        cluster.coordinator.servers[0].restart()
        assert f.get("apple") == "A"

    def test_message_loss_exhaustion_chains_cause(self):
        plan = FaultPlan(edges={"request": {"drop": 1.0}})
        retry = RetryPolicy(max_retries=2, base_delay=0.001, max_delay=0.002)
        cluster = _faulty_cluster(plan, retry=retry, shards=1)
        f = cluster.client()
        with pytest.raises(ShardUnavailableError) as info:
            f.insert("apple", "A")
        assert isinstance(info.value.__cause__, MessageLostError)

    def test_timeout_error_is_typed_retryable(self):
        assert issubclass(OpTimeoutError, Exception)
        plan = FaultPlan(delay_seconds=(2.0, 2.0))
        retry = RetryPolicy(max_retries=1, timeout=0.1, base_delay=0.001)
        cluster = _faulty_cluster(plan, retry=retry, shards=1)
        f = cluster.client()
        plan.force("reply", "delay", count=5)
        with pytest.raises(ShardUnavailableError) as info:
            f.insert("apple", "A")
        assert isinstance(info.value.__cause__, OpTimeoutError)


# ======================================================================
# Dedup window semantics
# ======================================================================
class TestDedupWindow:
    def test_fifo_eviction(self):
        window = DedupWindow(limit=2)
        window.record((1, 1), "a")
        window.record((1, 2), "b")
        window.record((1, 3), "c")
        assert (1, 1) not in window
        assert window.lookup((1, 3)) == (True, "c")

    def test_none_rid_ignored(self):
        window = DedupWindow()
        window.record(None, "x")
        assert len(window) == 0

    def test_spec_roundtrip(self):
        window = DedupWindow()
        window.record((1, 1), None)
        window.record((2, 9), "v")
        clone = DedupWindow.from_spec(window.to_spec())
        assert clone.lookup((1, 1)) == (True, None)
        assert clone.lookup((2, 9)) == (True, "v")

    def test_split_handover_keeps_dedup_on_both_halves(self):
        # Insert through retries, then force a shard split; a late
        # duplicate delivery must still hit the window on whichever
        # half now owns the key.
        plan = FaultPlan()
        cluster = _faulty_cluster(
            plan, shards=1, durable=True,
            shard_policy=ShardPolicy(shard_capacity=8),
        )
        f = cluster.client()
        plan.force("reply", "drop")
        f.insert("zebra", "Z")  # applied; reply lost; retried -> dedup
        for key in ["apple", "bird", "cat", "dog", "emu", "fox", "gnu"]:
            f.insert(key, key.upper())  # drives a split
        assert cluster.shard_count() > 1
        # The zebra insert was the client's first mutation: rid (1, 1).
        # Every post-split half must still remember it.
        for server in cluster.coordinator.servers.values():
            assert (1, 1) in server.dedup


# ======================================================================
# The acceptance chaos run
# ======================================================================
class TestChaos:
    def test_big_differential_run(self):
        # The PR's acceptance criterion: >= 5000 mixed ops, >= 4 durable
        # shards, seeded drops + duplicates + delays, >= 3 crash/restart
        # cycles; byte-identical to the oracle, zero double-applies
        # (run_chaos raises otherwise), every fault and retry metered.
        report = run_chaos(
            ops=5000,
            shards=4,
            seed=42,
            durable=True,
            drop=0.01,
            duplicate=0.01,
            delay=0.01,
            crash_cycles=3,
            shard_capacity=256,
        )
        assert report.converged
        assert report.duplicate_applies == 0
        assert report.crashes >= 3
        assert report.recoveries >= 3
        assert report.faults > 0
        assert report.retries > 0
        assert report.dedup_hits > 0
        assert report.faults <= report.ops * 3  # sanity: metered, bounded

    def test_chaos_is_deterministic(self):
        a = run_chaos(ops=600, seed=11, crash_cycles=2, shard_capacity=128)
        b = run_chaos(ops=600, seed=11, crash_cycles=2, shard_capacity=128)
        assert a.as_dict() == b.as_dict()

    def test_chaos_with_scans(self):
        report = run_chaos(
            ops=400,
            shards=2,
            seed=5,
            drop=0.02,
            duplicate=0.02,
            crash_cycles=1,
            shard_capacity=64,
            scan_every=50,
        )
        assert report.converged

    def test_fault_free_run_injects_nothing(self):
        report = run_chaos(
            ops=300, seed=1, drop=0.0, duplicate=0.0, delay=0.0,
            crash_cycles=0, shard_capacity=64,
        )
        assert report.faults == 0
        assert report.retries == 0
        assert report.crashes == 0
        assert report.clock == 0.0

    def test_chaos_table_rows(self):
        rows = chaos_table(count=300, rates=(0.0, 0.02))
        assert [r["fault_rate"] for r in rows] == [0.0, 0.02]
        assert all(r["converged"] for r in rows)
        assert rows[0]["faults"] == 0
        assert rows[1]["faults"] > 0
        assert all(r["dup_applies"] == 0 for r in rows)


# ======================================================================
# Hypothesis: random interleavings of ops, crashes and heals
# ======================================================================
keys_st = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)


class ChaosAgainstDict(RuleBasedStateMachine):
    """Mixed ops against a dict model while the fabric misbehaves."""

    @initialize(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.sampled_from([0.0, 0.02, 0.05]),
    )
    def setup(self, seed, rate):
        self.plan = FaultPlan(
            seed=seed, drop=rate, duplicate=rate, delay=rate,
            delay_seconds=(0.001, 0.02), downtime=(0.01, 0.05),
        )
        self.cluster = Cluster(
            shards=2,
            durable=True,
            shard_policy=ShardPolicy(shard_capacity=32),
            faults=self.plan,
            retry=RetryPolicy(max_retries=12),
        )
        self.client = self.cluster.client()
        self.model = {}

    @rule(key=keys_st, value=keys_st)
    def insert(self, key, value):
        if key in self.model:
            with pytest.raises(DuplicateKeyError):
                self.client.insert(key, value)
        else:
            self.client.insert(key, value)
            self.model[key] = value

    @rule(key=keys_st, value=keys_st)
    def put(self, key, value):
        self.client.put(key, value)
        self.model[key] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.client.delete(key) == self.model.pop(key)

    @rule(key=keys_st)
    def lookup(self, key):
        assert self.client.contains(key) == (key in self.model)

    @rule(data=st.data())
    def crash_one(self, data):
        live = [
            s for s, srv in self.cluster.coordinator.servers.items()
            if not srv.down
        ]
        if live:
            shard = data.draw(st.sampled_from(sorted(live)))
            self.cluster.router.crash_server(shard, downtime=0.02)

    def teardown(self):
        self.plan.heal()
        self.cluster.router.restore_all()
        self.cluster.check()
        assert dict(self.client.items()) == self.model
        assert self.cluster.router.duplicate_applies() == 0


TestChaosStateful = ChaosAgainstDict.TestCase
TestChaosStateful.settings = settings(deadline=None)


# ======================================================================
# Deadlines over the faulty fabric (the RetryPolicy.timeout fixes)
# ======================================================================
class TestDeadlines:
    def test_forward_leg_delay_counts_against_the_deadline(self):
        # The op reaches shard 0 promptly; the *forward* hop to the
        # owner is what stalls. The per-op deadline covers the whole
        # delivery, so the client times out and retries — previously
        # only the first hop was measured and the op hung "forever".
        plan = FaultPlan(delay_seconds=(2.0, 2.0))
        retry = RetryPolicy(timeout=0.5)
        cluster = _faulty_cluster(plan, retry=retry, shards=2, durable=True)
        cluster.client(warm=True).insert("zebra", "Z")
        f = cluster.client()  # cold: routes to shard 0, owner forwards
        plan.force("forward", "delay")
        assert f.get("zebra") == "Z"
        assert f.retries_total == 1
        counter = cluster.registry.counter(
            "dist_retries_total", {"op": "get", "reason": "OpTimeoutError"}
        )
        assert counter.value == 1
        assert cluster.router.duplicate_applies() == 0

    def test_timeout_retry_rederives_shard_from_patched_image(self):
        # Attempt 1 forwards to the owner, applies, and times out on
        # the slow reply. Between attempts the image learns the true
        # cut (patched during the backoff); the retry must re-derive
        # the shard and go *direct* — one forward total, and the
        # duplicate delivery dies in the owner's dedup window.
        plan = FaultPlan(delay_seconds=(2.0, 2.0))
        retry = RetryPolicy(timeout=0.5)
        cluster = _faulty_cluster(plan, retry=retry, shards=2, durable=True)
        f = cluster.client()
        router = cluster.router
        original_sleep = router.sleep

        def learning_sleep(seconds):
            f.image.patch(cluster.coordinator.iam_for_key("zebra"))
            original_sleep(seconds)

        router.sleep = learning_sleep
        plan.force("reply", "delay")
        f.insert("zebra", "Z")
        assert router.forwards == 1  # attempt 2 went direct
        assert _counter_sum(cluster.registry, "dist_dedup_hits_total") == 1
        counter = cluster.registry.counter(
            "dist_retries_total", {"op": "insert", "reason": "OpTimeoutError"}
        )
        assert counter.value == 1
        assert router.duplicate_applies() == 0
        assert f.get("zebra") == "Z"


# ======================================================================
# Batch routing under a wedged image
# ======================================================================
class TestBatchWedge:
    def test_no_progress_error_samples_keys_and_chains_cause(self):
        # A permanently down shard parks its leg's keys every round;
        # once no round shrinks the batch, the guard must surface a
        # diagnosable error: which keys never placed, and why the last
        # leg failed.
        retry = RetryPolicy(max_retries=1, base_delay=0.001, max_delay=0.002)
        cluster = _faulty_cluster(FaultPlan(), retry=retry, shards=2)
        f = cluster.client(warm=True)
        keys = ["apple", "bird", "yak", "zebra"]
        for key in keys:
            f.insert(key, key.upper())
        cluster.router.crash_server(1)  # owner of the upper region; no restart
        with pytest.raises(ShardUnavailableError) as info:
            f.get_many(keys)
        message = str(info.value)
        assert "no routing progress" in message
        assert "unplaced" in message
        assert "'yak'" in message and "'zebra'" in message
        assert "'apple'" not in message  # placed legs are not in the sample
        assert isinstance(info.value.__cause__, ShardUnavailableError)
        assert isinstance(info.value.__cause__.__cause__, ServerDownError)
