"""Fault injection on the client side of a real wire.

:class:`FaultyRemoteTransport` reimplements the delivery semantics of
:class:`~repro.distributed.faults.FaultyRouter` over a live
:class:`~repro.serving.server.ServingServer` connection, so the chaos
differential (:func:`repro.distributed.chaos.run_chaos`) can run
against real sockets with the *same* :class:`~repro.distributed.faults
.FaultPlan` determinism:

* a **dropped request** is simply never sent — the server never
  executes it, exactly like the simulated fabric;
* a **dropped reply** completes the real roundtrip (the op executed!)
  and then discards the answer, raising
  :class:`~repro.distributed.errors.MessageLostError` — the ambiguity
  dedup must absorb;
* a **duplicate** performs two real roundtrips with the same encoded
  op (the server's dedup window sees a true network duplicate);
* a **delay** advances the transport's *simulated* clock, and the
  per-op deadline is enforced against that clock, so timeout behaviour
  is bit-deterministic even though the socket underneath is real.

Crash faults ride the control plane: the plan's crash decision becomes
a ``crash`` control command, with downtimes tracked on the simulated
clock and ``restart`` issued when they lapse — mirroring
:meth:`FaultyRouter.crash_server` over the wire.

Injection lives client-side because that is where a real deployment's
faults are *observable*: the server cannot distinguish "request never
sent" from "request lost en route", and the retry loop under test runs
in the client.
"""

from __future__ import annotations

from typing import Any, Optional

from ..distributed.errors import (
    MessageLostError,
    OpTimeoutError,
    ServerDownError,
)
from ..distributed.faults import FaultPlan
from ..distributed.messages import Op, Reply
from ..obs.metrics import MetricsRegistry
from .client import DEFAULT_WALL_TIMEOUT, AsyncClient, LoopRunner

__all__ = ["FaultyRemoteTransport"]


class FaultyRemoteTransport:
    """A :class:`RemoteTransport` twin whose deliveries obey a plan."""

    def __init__(
        self,
        runner: LoopRunner,
        conn: AsyncClient,
        plan: Optional[FaultPlan] = None,
        registry: Optional[MetricsRegistry] = None,
        wall_timeout: float = DEFAULT_WALL_TIMEOUT,
    ):
        self.runner = runner
        self.conn = conn
        self.plan = plan if plan is not None else FaultPlan()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.wall_timeout = wall_timeout
        #: The simulated clock — delays and backoff sleeps advance it;
        #: the socket's real latency does not (determinism).
        self.now = 0.0
        self.messages = 0
        self.faults_injected = 0
        self.crash_cycles = 0
        #: True when the served cluster replicates: clock ticks are then
        #: forwarded to the server's failure detector through ``tick``
        #: controls while anything is down, and ids taken over by a
        #: promoted backup stop being treated as crashed client-side.
        self.replicated = False
        self._down: set[int] = set()
        self._restart_at: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Clock and lifecycle (mirrors FaultyRouter)
    # ------------------------------------------------------------------
    def sleep(self, seconds: float) -> None:
        self.now += seconds
        self._tick()

    def _tick(self) -> None:
        due = [s for s, at in self._restart_at.items() if at <= self.now]
        for shard_id in due:
            del self._restart_at[shard_id]
            self.control({"cmd": "restart", "shard": shard_id})
            self._down.discard(shard_id)
        if self.replicated and self._down:
            # Something is down and will not restart by itself: run the
            # server-side failure detector on our simulated clock. Ids a
            # promoted backup answers for are no longer down to us.
            status = self.control({"cmd": "tick", "now": self.now})
            for shard_id in status.get("promoted", ()):
                self._down.discard(shard_id)
                self._restart_at.pop(shard_id, None)

    def crash_server(
        self, shard_id: int, downtime: Optional[float] = None
    ) -> None:
        if shard_id in self._down:
            return
        self.control({"cmd": "crash", "shard": shard_id})
        self._down.add(shard_id)
        self.crash_cycles += 1
        if downtime is not None:
            self._restart_at[shard_id] = self.now + downtime

    def restore_all(self) -> None:
        self._restart_at.clear()
        self._down.clear()
        self.control({"cmd": "restore_all"})

    def note_apply(self, rid: object) -> None:
        """The apply audit lives server-side over a real wire."""

    def duplicate_applies(self) -> int:
        return self.control({"cmd": "duplicate_applies"})

    def control(self, command: dict) -> Any:
        return self.runner.call(self.conn.control(command), self.wall_timeout)

    # ------------------------------------------------------------------
    # Fault bookkeeping (same counter names as the simulated fabric)
    # ------------------------------------------------------------------
    def _fault(self, kind: str, edge: str, shard: int) -> None:
        self.faults_injected += 1
        self.registry.counter(
            "dist_faults_total", {"kind": kind, "edge": edge}
        ).inc()

    def _maybe_crash(self, shard_id: int) -> None:
        downtime = self.plan.decide_crash(shard_id)
        if downtime is not None and shard_id not in self._down:
            self._fault("crash", "request", shard_id)
            self.crash_server(shard_id, downtime=downtime)

    def _roundtrip(self, shard_id: int, op: Op) -> Reply:
        # The wall deadline here is a hung-server backstop, not the
        # per-op deadline — that is enforced on the simulated clock.
        return self.runner.call(
            self.conn.request(shard_id, op, self.wall_timeout),
            self.wall_timeout * 2,
        )

    # ------------------------------------------------------------------
    # Delivery under faults
    # ------------------------------------------------------------------
    def client_send(
        self, shard_id: int, op: Op, timeout: Optional[float] = None
    ) -> Reply:
        self._tick()
        self._maybe_crash(shard_id)
        if shard_id in self._down:
            # Mirror the simulated fabric: a known-down shard refuses
            # the request before any delivery dice are rolled, so the
            # plan's RNG stream stays aligned with FaultyRouter's.
            self._fault("server_down", "request", shard_id)
            raise ServerDownError(f"shard {shard_id} is down (request refused)")
        decision = self.plan.decide("request", shard_id)
        if decision.drop:
            self._fault("drop", "request", shard_id)
            raise MessageLostError(f"request to shard {shard_id} lost")
        sent_at = self.now
        if decision.delay:
            self._fault("delay", "request", shard_id)
            self.now += decision.delay
        try:
            reply = self._roundtrip(shard_id, op)
            self.messages += 1
            if decision.duplicate:
                # Two real deliveries of the same op; the owner's dedup
                # window must absorb the second.
                self._fault("duplicate", "request", shard_id)
                reply = self._roundtrip(shard_id, op)
                self.messages += 1
        except OpTimeoutError:
            raise
        except MessageLostError:
            raise
        except ServerDownError:
            # The server refused before handling (e.g. it crashed under
            # an op already queued ahead of ours) — same accounting as
            # the short-circuit above.
            self._fault("server_down", "request", shard_id)
            raise
        except ConnectionError as exc:
            raise MessageLostError(f"connection failed: {exc}") from None
        back = self.plan.decide("reply", shard_id)
        if back.drop:
            # The op executed; the client just never hears about it.
            self._fault("drop", "reply", shard_id)
            raise MessageLostError(f"reply from shard {shard_id} lost")
        if back.delay:
            self._fault("delay", "reply", shard_id)
            self.now += back.delay
        elapsed = self.now - sent_at
        if timeout is not None and elapsed > timeout:
            self._fault("timeout", "reply", shard_id)
            raise OpTimeoutError(
                f"shard {shard_id} answered in {elapsed:.4f}s > {timeout:.4f}s"
            )
        self.messages += 1
        return reply
