"""Trie images: the client-side addressing state of the TH* layer.

TH* (the Scalable Distributed Data Structure built on trie hashing)
lets every client keep a *possibly outdated* copy of the key-space
partition — the **trie image** — and route operations with it. Servers
never trust a client's routing: a misaddressed operation is forwarded to
the correct shard, and the reply carries an **Image Adjustment Message**
(IAM) with the authoritative cut points around the addressed key, which
the client grafts into its image. Images therefore converge toward the
true partition without any global refresh protocol.

A :class:`TrieImage` is the shape-free form of that partition: a list of
*boundaries* sorted in boundary order (see
:mod:`repro.core.boundaries`), plus one shard id per gap — exactly a
:class:`~repro.core.boundaries.BoundaryModel` whose children are shard
ids instead of bucket addresses. The coordinator holds the authoritative
instance; clients hold stale copies. Because shard splits only ever
*add* boundaries (there is no shard merge), a client image's boundary
set is always a subset of the authoritative one, and patching is pure
refinement: insert the missing cuts, repoint the covered gaps.

IAM entries are triples ``(low, high, shard)``: the authoritative fact
that every key strictly above boundary ``low`` and at or below boundary
``high`` (``None`` meaning the open ends of the key space) lives on
``shard``.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Sequence
from typing import Optional

from ..check.hook import maybe_audit
from .alphabet import Alphabet
from .boundaries import boundary_sort_key, gap_index
from .errors import TrieCorruptionError

__all__ = ["IAMEntry", "TrieImage"]

#: One Image Adjustment Message entry: keys in ``(low, high]`` -> shard.
IAMEntry = tuple[Optional[str], Optional[str], int]


class TrieImage:
    """A (possibly stale) map from keys to shard ids.

    Parameters
    ----------
    alphabet:
        The key alphabet (boundary order depends on it).
    boundaries:
        Cut points, sorted in boundary order.
    shards:
        One shard id per gap: ``len(boundaries) + 1`` entries;
        ``shards[j]`` owns the keys between ``boundaries[j-1]``
        (exclusive) and ``boundaries[j]`` (inclusive).
    """

    __slots__ = ("alphabet", "boundaries", "shards", "_sort_keys")

    def __init__(
        self,
        alphabet: Alphabet,
        boundaries: Iterable[str] = (),
        shards: Iterable[int] = (0,),
    ):
        self.alphabet = alphabet
        self.boundaries: list[str] = list(boundaries)
        self.shards: list[int] = list(shards)
        if len(self.shards) != len(self.boundaries) + 1:
            raise TrieCorruptionError(
                f"{len(self.boundaries)} boundaries need "
                f"{len(self.boundaries) + 1} shards, got {len(self.shards)}"
            )
        self._sort_keys = [
            boundary_sort_key(s, alphabet) for s in self.boundaries
        ]
        for a, b in zip(self._sort_keys, self._sort_keys[1:]):
            if not a < b:
                raise TrieCorruptionError("image boundaries not increasing")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of regions (gaps) the image distinguishes."""
        return len(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrieImage({self.boundaries!r}, {self.shards!r})"

    def copy(self) -> TrieImage:
        """An independent snapshot (clients fork the coordinator's)."""
        return TrieImage(self.alphabet, self.boundaries, self.shards)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def locate(self, key: str) -> tuple[int, int]:
        """The ``(gap, shard)`` this image maps ``key`` to."""
        gap = gap_index(self.boundaries, key, self.alphabet)
        return gap, self.shards[gap]

    def shard_for_key(self, key: str) -> int:
        """The shard id this image routes ``key`` to."""
        return self.locate(key)[1]

    def region(self, gap: int) -> tuple[Optional[str], Optional[str]]:
        """Gap ``gap``'s bounding boundaries ``(low, high)``.

        ``None`` stands for the open ends of the key space.
        """
        low = self.boundaries[gap - 1] if gap > 0 else None
        high = self.boundaries[gap] if gap < len(self.boundaries) else None
        return low, high

    def gap_above(self, boundary: str) -> int:
        """Index of the first gap strictly above ``boundary``."""
        return bisect.bisect_right(
            self._sort_keys, boundary_sort_key(boundary, self.alphabet)
        )

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def split_region(self, gap: int, boundary: str, new_shard: int) -> None:
        """Cut gap ``gap`` at ``boundary``; the upper part goes to
        ``new_shard`` (the coordinator's scale-out primitive)."""
        position = self._insert_boundary(boundary)
        if position != gap:
            raise TrieCorruptionError(
                f"boundary {boundary!r} does not cut gap {gap}"
            )
        self.shards[gap + 1] = new_shard

    def reassign(self, gap: int, shard: int) -> None:
        """Repoint gap ``gap`` at ``shard``, keeping the cut points.

        The ownership-transfer primitive of failover (a promoted backup
        takes over its dead primary's region) and migration cutover (a
        region moves wholesale to a freshly built server). Stale images
        converge through the ordinary IAM ``patch`` path — the entries
        a server emits for the gap simply carry the new shard id.
        """
        self.shards[gap] = shard

    def _insert_boundary(self, boundary: str) -> int:
        """Insert ``boundary`` (both sub-gaps keep the old shard).

        Returns the insertion index, or ``-(index + 1)`` when the
        boundary was already present at ``index``.
        """
        sk = boundary_sort_key(boundary, self.alphabet)
        position = bisect.bisect_left(self._sort_keys, sk)
        if (
            position < len(self._sort_keys)
            and self._sort_keys[position] == sk
        ):
            return -(position + 1)
        self.boundaries.insert(position, boundary)
        self._sort_keys.insert(position, sk)
        self.shards.insert(position, self.shards[position])
        return position

    def patch(self, entries: Sequence[IAMEntry]) -> int:
        """Graft IAM ``entries`` into the image; returns boundaries learned.

        Each entry ``(low, high, shard)`` refines the image: the missing
        cut points are inserted (sub-gaps first inherit the stale shard
        guess) and every gap covered by ``(low, high]`` is repointed at
        ``shard``. Entries from any server are safe to apply in any
        order — they are facts about the authoritative partition, which
        only ever grows.
        """
        learned = 0
        for low, high, shard in entries:
            if low is not None:
                if self._insert_boundary(low) >= 0:
                    learned += 1
                first = self.gap_above(low)
            else:
                first = 0
            if high is not None:
                position = self._insert_boundary(high)
                if position >= 0:
                    learned += 1
                    last = position
                else:
                    last = -position - 1
            else:
                last = len(self.shards) - 1
            for gap in range(first, last + 1):
                self.shards[gap] = shard
        maybe_audit(self, f"TrieImage.patch({len(entries)} entries)")
        return learned

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify the image invariants (sorted cuts, aligned shards)."""
        if len(self.shards) != len(self.boundaries) + 1:
            raise TrieCorruptionError("boundary/shard arity mismatch")
        for a, b in zip(self._sort_keys, self._sort_keys[1:]):
            if not a < b:
                raise TrieCorruptionError("image boundaries not increasing")
