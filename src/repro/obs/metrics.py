"""A zero-dependency metrics registry: counters, gauges, histograms.

Shaped after the Prometheus client model — named instruments with
optional label sets, a registry that owns them — but implemented in a
few hundred lines with no third-party imports, matching the repo's
pure-stdlib rule. Histograms use *fixed* cumulative buckets chosen at
creation, so observation is O(#buckets) and a snapshot is exact about
what it can and cannot resolve (percentiles are interpolated within the
bucket that crosses the requested rank).
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Mapping, Sequence
from typing import Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: label set, hashable and deterministic: sorted (key, value) pairs.
_Labels = tuple[tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, object]]) -> _Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _Labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (hit rate, load factor)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _Labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust by ``amount`` (may be negative)."""
        self.value += amount


#: Default bucket ladders for the quantities the repro measures.
ACCESS_BUCKETS: Sequence[float] = (0, 1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32, 64)
FANOUT_BUCKETS: Sequence[float] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 32)
LATENCY_BUCKETS: Sequence[float] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class Histogram:
    """Fixed cumulative-bucket histogram with percentile estimation.

    ``bounds`` are the finite upper bounds; a ``+Inf`` bucket is always
    appended, so every observation lands somewhere.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, labels: _Labels, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one finite bound")
        ordered = sorted(float(b) for b in bounds)
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram bounds must be distinct")
        self.name = name
        self.labels = labels
        self.bounds: list[float] = ordered
        self.counts: list[int] = [0] * (len(ordered) + 1)  # last = +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0 < p <= 100).

        Linear interpolation within the crossing bucket; observations
        in the ``+Inf`` bucket report the largest finite bound (the
        histogram cannot resolve beyond it).
        """
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.total == 0:
            return 0.0
        rank = math.ceil(self.total * p / 100.0)
        seen = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            seen += count
            if seen >= rank:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                within = (rank - (seen - count)) / count
                return lower + (upper - lower) * within
        return self.bounds[-1]  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations."""
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """Owns every instrument; the unit a snapshot or export covers.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call fixes the instrument type (and, for histograms, the bucket
    bounds) and later calls with the same name + labels return the same
    object.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, _Labels], object] = {}

    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(name, labels, Counter)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(name, labels, Gauge)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, object]] = None,
        bounds: Sequence[float] = ACCESS_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is None:
            found = self._instruments[key] = Histogram(name, key[1], bounds)
        elif not isinstance(found, Histogram):
            raise TypeError(f"{name} already registered as {type(found).__name__}")
        return found

    def _get(self, name, labels, cls):
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is None:
            found = self._instruments[key] = cls(name, key[1])
        elif not isinstance(found, cls):
            raise TypeError(f"{name} already registered as {type(found).__name__}")
        return found

    def instruments(self) -> list[object]:
        """Every instrument, sorted by (name, labels) for stable output."""
        return [
            self._instruments[key] for key in sorted(self._instruments.keys())
        ]

    def snapshot(self) -> dict[str, object]:
        """The registry as one JSON-ready dict.

        ``counters``/``gauges`` map ``name{l="v",...}`` to values;
        ``histograms`` map the same keys to bucket counts, totals and
        p50/p90/p95/p99 estimates; ``derived`` holds cross-instrument
        ratios (currently the buffer hit rate) that readers would
        otherwise have to recompute.
        """
        out: dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in self.instruments():
            key = _render_key(inst.name, inst.labels)
            if isinstance(inst, Counter):
                out["counters"][key] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][key] = inst.value
            else:
                buckets = {
                    str(bound): count
                    for bound, count in zip(inst.bounds, inst.counts)
                }
                buckets["+Inf"] = inst.counts[-1]
                out["histograms"][key] = {
                    "buckets": buckets,
                    "count": inst.total,
                    "sum": inst.sum,
                    "mean": inst.mean,
                    "p50": inst.percentile(50),
                    "p90": inst.percentile(90),
                    "p95": inst.percentile(95),
                    "p99": inst.percentile(99),
                }
        out["derived"] = self._derived()
        return out

    def _derived(self) -> dict[str, float]:
        derived: dict[str, float] = {}
        hits = misses = 0.0
        for inst in self.instruments():
            if isinstance(inst, Counter) and inst.name == "repro_buffer_requests_total":
                labels = dict(inst.labels)
                if labels.get("result") == "hit":
                    hits += inst.value
                elif labels.get("result") == "miss":
                    misses += inst.value
        if hits or misses:
            derived["buffer_hit_rate"] = hits / (hits + misses)
        return derived


def _render_key(name: str, labels: _Labels) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"
