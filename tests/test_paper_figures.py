"""Scenario tests reproducing Figures 1-9 of the paper."""

import pytest

from repro import MLTHFile, SplitPolicy, THFile, Trie, LOWERCASE
from repro.core.thcl_split import collapse_equal_leaf_nodes, insert_boundary


class TestFig1ExampleFile:
    """The running example: 31 most-used English words, b=4, m=3."""

    def test_bucket_contents(self, fig1_file):
        expected = {
            0: ["a", "and", "are"],
            1: ["that", "the", "this", "to"],
            2: ["not", "of", "on", "or"],
            3: ["in", "is", "it"],
            4: ["be", "but", "by"],
            5: ["was", "which", "with", "you"],
            6: ["i"],
            7: ["had", "have", "he", "her"],
            8: ["his"],
            9: ["as", "at"],
            10: ["for", "from"],
        }
        assert sorted(fig1_file.store.live_addresses()) == sorted(expected)
        for address, keys in expected.items():
            assert fig1_file.store.peek(address).keys == keys

    def test_trie_shape(self, fig1_file):
        # Ten cells; the boundary (logical-path) sequence of Fig 1c.
        assert fig1_file.trie_size() == 10
        assert fig1_file.trie.boundaries() == [
            "ar", "a", "b", "f", "he", "h", "i ", "i", "o", "t",
        ]

    def test_leaf_order(self, fig1_file):
        leaves = [p for _, p, _ in fig1_file.trie.leaves_in_order()]
        assert leaves == [0, 9, 4, 10, 7, 8, 6, 3, 2, 1, 5]

    def test_load_factor_near_seventy(self, fig1_file):
        assert fig1_file.load_factor() == pytest.approx(31 / 44, abs=1e-9)

    def test_fig2_logical_structure_level0(self, fig1_file):
        # The M-ary view's level-0 digits.
        level0 = [s for s in fig1_file.trie.boundaries() if len(s) == 1]
        assert level0 == ["a", "b", "f", "h", "i", "o", "t"]

    def test_cell_count_equals_leaves_minus_one(self, fig1_file):
        trie = fig1_file.trie
        assert trie.node_count == len(trie.leaves_in_order()) - 1


class TestFig3BucketSplit:
    def test_inserting_hat_splits_bucket_7(self, fig1_file):
        # 'have' becomes the split key; the split string is 'ha'; the
        # only new internal node is (a, 1).
        boundaries_before = set(fig1_file.trie.boundaries())
        fig1_file.insert("hat")
        fig1_file.check()
        new = set(fig1_file.trie.boundaries()) - boundaries_before
        assert new == {"ha"}
        assert fig1_file.store.peek(7).keys == ["had", "hat", "have"]
        assert fig1_file.store.peek(11).keys == ["he", "her"]
        assert fig1_file.trie_size() == 11


class TestFig4TrieSplit:
    def test_page_split_chooses_h(self, words):
        # Page capacity b'=9: the example trie's ten cells overflow one
        # page; the split node must be (h,0) - (e,1) is as central but
        # has its logical parent (h,0) inside the subtrie.
        f = MLTHFile(bucket_capacity=4, page_capacity=9)
        for w in words:
            f.insert(w)
        f.check()
        assert f.levels() == 2
        root = f.page_disk.peek(f.root_id)
        assert root.boundaries == ["h"]
        left = f.page_disk.peek(root.children[0])
        right = f.page_disk.peek(root.children[1])
        assert left.boundaries == ["ar", "a", "b", "f", "he"]
        assert right.boundaries == ["i ", "i", "o", "t"]

    def test_search_unaffected_by_paging(self, words, fig1_file):
        f = MLTHFile(bucket_capacity=4, page_capacity=9)
        for w in words:
            f.insert(w)
        for w in words:
            assert f.get(w) is None  # stored value
            # and the bucket agrees with the flat file's mapping:
            steps, _, _ = f._descend(w)
            _, page, gap = steps[-1]
            assert page.children[gap] == fig1_file.trie.search(w).bucket


class TestFig5BasicAscending:
    def test_nil_nodes_strand_buckets(self):
        # m=b: the split leaves bucket 0 full but creates nil leaves;
        # 'ota' then allocates bucket 2 while bucket 1 is still short.
        f = THFile(bucket_capacity=4, policy=SplitPolicy(split_position=-1))
        for k in ("oaaa", "obbb", "osza", "oszc"):
            f.insert(k)
        f.insert("oszh")  # the split: bucket 0 stays 100% full
        assert len(f.store.peek(0)) == 4
        assert len(f.store.peek(1)) == 1
        assert f.nil_leaf_fraction() > 0
        f.insert("ota")  # hits a nil leaf -> bucket 2 appears
        assert f.bucket_count() == 3
        assert len(f.store.peek(1)) == 1  # bucket 1 stranded below 100%
        f.check()


class TestFig6BasicDescending:
    def test_split_randomness_strands_keys(self):
        # m=1 descending: 'orba' AND 'orbf' stay (both share the split
        # string 'or'), so the outgoing bucket is not fully loaded.
        f = THFile(bucket_capacity=4, policy=SplitPolicy(split_position=1))
        for k in ("ouzz", "oszd", "osca", "orbf"):
            f.insert(k)
        f.insert("orba")  # overflow: split key is 'orba' itself
        f.check()
        assert f.store.peek(0).keys == ["orba", "orbf"]
        assert len(f.store.peek(1)) == 3  # only 3 of 4 slots filled
        f.check()


class TestFig7THCLNoNils:
    def test_right_leaves_share_the_new_bucket(self):
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl_ascending(0))
        for k in ("oaaa", "obbb", "osza", "oszc"):
            f.insert(k)
        f.insert("oszh")
        # All leaves right of the chain carry bucket 1 - no nils.
        leaves = [p for _, p, _ in f.trie.leaves_in_order()]
        assert leaves == [0, 1, 1, 1, 1]
        # Ascending keys keep filling bucket 1 to the brim.
        for k in ("oszp", "ota", "ovm"):
            f.insert(k)
        assert len(f.store.peek(1)) == 4
        f.insert("ovv")  # overflow -> bucket 2 is initiated
        assert f.bucket_count() == 3
        f.check()


class TestFig8ControlledDescending:
    def test_bounding_at_m_plus_1_gives_half(self):
        # b=4, m=3, bounding key at position 4: exactly two keys move at
        # every split -> a_d = 50% guaranteed.
        policy = SplitPolicy(split_position=3, bounding_offset=1,
                             nil_nodes=False, merge="guaranteed")
        f = THFile(bucket_capacity=4, policy=policy)
        keys = sorted(
            {"o" + a + b for a in "abcdefghijklmnop" for b in "sz"},
            reverse=True,
        )
        for k in keys:
            f.insert(k)
        f.check()
        # Every bucket that stopped receiving keys holds exactly 2.
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        assert sizes.count(2) >= len(sizes) - 2
        assert f.load_factor() == pytest.approx(0.5, abs=0.08)

    def test_m1_bounding2_gives_full(self):
        f = THFile(bucket_capacity=4, policy=SplitPolicy.thcl_descending(0))
        keys = sorted(
            {"o" + a + b for a in "abcdefghijklmnop" for b in "sz"},
            reverse=True,
        )
        for k in keys:
            f.insert(k)
        f.check()
        sizes = [len(f.store.peek(a)) for a in f.store.live_addresses()]
        assert sizes.count(4) >= len(sizes) - 2


class TestFig9RedistributionShrink:
    def test_equal_leaf_node_appears_and_collapses(self):
        # A redistribution whose split string is already on the path
        # (step 3.4) leaves a node pointing to the same bucket through
        # both edges; it may be suppressed.
        trie = Trie(LOWERCASE, root_ptr=0)
        insert_boundary(trie, "osc", "osc", 0, 1, 0)  # chain osc,os,o
        # A later split separated buckets 1 and 2 at 'ot': node (t,1)
        # has leaf 1 on its left and leaf 2 on its right.
        insert_boundary(trie, "otm", "ot", 1, 2, 1)
        # Bucket 1 overflows again; redistribution pushes everything
        # above the *existing* boundary 'os' into its successor 2
        # (step 3.4, no node added) - now (t,1) points to 2 twice.
        outcome = insert_boundary(trie, "osf", "os", 1, 2, 1)
        assert outcome.nodes_added == 0
        equal_nodes = [
            idx
            for idx, cell in trie.cells.live_items()
            if cell.lp == cell.rp and cell.lp >= 0
        ]
        assert equal_nodes  # the Fig 9 node exists
        freed = collapse_equal_leaf_nodes(trie)
        assert freed >= 1
        trie.check(expect_no_nil=True)

    def test_file_level_redistribution_with_collapse(self, sorted_keys):
        policy = SplitPolicy.thcl_redistributing("compact").with_(
            collapse_equal_leaves=True
        )
        f = THFile(bucket_capacity=6, policy=policy)
        for k in sorted_keys:
            f.insert(k)
        f.check()
        assert f.stats.redistributions > 0
