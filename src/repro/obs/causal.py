"""Causal-tree reconstruction: from a trace on disk back to *why*.

A JSONL trace (or a flight-recorder dump) is a flat event stream. This
module folds it back into the causal structure the tracer recorded:

* every ``span_end`` record carries ``trace``/``span_id``/``parent`` —
  the tree skeleton;
* every other event carries ``span``, the innermost span active when it
  fired — the annotations (faults, retries, dedup hits, WAL traffic)
  hanging off the skeleton.

:func:`build_traces` groups spans into :class:`Trace` objects (one per
``trace_id`` — in the distributed layer, one per logical client
operation). :func:`rid_index` locates the unique rooted tree of any
request id and *verifies* its shape: exactly one root, every span of
that rid reachable from it — the invariant the fault-propagation tests
pin. :func:`render_tree` and :func:`hop_rows` are the human faces used
by ``trie-hashing trace report``: an ASCII causal tree with annotations
interleaved in emission order, and a per-hop latency breakdown.
"""

from __future__ import annotations

import json
from typing import Optional, Union

__all__ = [
    "CausalError",
    "SpanNode",
    "Trace",
    "load_events",
    "build_traces",
    "rid_index",
    "find_rid",
    "render_tree",
    "hop_rows",
    "trace_summary_rows",
]

#: ``span_end`` bookkeeping keys; everything else is a user field.
_SPAN_KEYS = frozenset(
    {
        "seq",
        "event",
        "span",
        "op",
        "span_id",
        "parent",
        "trace",
        "start_seq",
        "reads",
        "writes",
        "accesses",
        "seconds",
        "elapsed",
    }
)

#: Event names that annotate a causal tree as *trouble* (for summaries).
_FAULT_EVENTS = frozenset({"net_fault", "op_retry", "dedup_hit", "disk_fault"})


class CausalError(Exception):
    """A trace could not be reconstructed into well-formed causal trees."""


class SpanNode:
    """One reconstructed span: identity, totals, annotations, children."""

    __slots__ = (
        "span_id",
        "trace_id",
        "parent",
        "op",
        "reads",
        "writes",
        "accesses",
        "seconds",
        "elapsed",
        "start_seq",
        "end_seq",
        "fields",
        "events",
        "children",
    )

    def __init__(self, record: dict):
        self.span_id = int(record["span_id"])
        self.trace_id = int(record.get("trace", 0))
        parent = record.get("parent")
        self.parent = None if parent is None else int(parent)
        self.op = str(record.get("op", "?"))
        self.reads = int(record.get("reads", 0))
        self.writes = int(record.get("writes", 0))
        self.accesses = int(record.get("accesses", 0))
        self.seconds = float(record.get("seconds", 0.0))
        self.elapsed = float(record.get("elapsed", 0.0))
        self.start_seq = int(record.get("start_seq", 0))
        self.end_seq = int(record.get("seq", 0))
        self.fields = {
            k: v for k, v in record.items() if k not in _SPAN_KEYS
        }
        self.events: list[dict] = []
        self.children: list[SpanNode] = []

    @property
    def rid(self) -> Optional[str]:
        """The request id this span is labeled with, if any."""
        rid = self.fields.get("rid")
        return None if rid is None else str(rid)

    def walk(self) -> list["SpanNode"]:
        """This span and every descendant, depth-first, emission order."""
        out = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanNode({self.span_id}, {self.op!r}, trace={self.trace_id}, "
            f"parent={self.parent}, children={len(self.children)})"
        )


class Trace:
    """Every span and annotation sharing one ``trace_id``."""

    __slots__ = ("trace_id", "roots", "spans")

    def __init__(self, trace_id: int):
        self.trace_id = trace_id
        self.roots: list[SpanNode] = []
        self.spans: dict[int, SpanNode] = {}

    @property
    def root(self) -> SpanNode:
        """The single root (raises :class:`CausalError` when ambiguous)."""
        if len(self.roots) != 1:
            raise CausalError(
                f"trace {self.trace_id} has {len(self.roots)} roots, not 1"
            )
        return self.roots[0]

    def fault_events(self) -> list[dict]:
        """Every fault/retry/dedup annotation anywhere in the trace."""
        out = []
        for span in self.spans.values():
            out.extend(
                e for e in span.events if e.get("event") in _FAULT_EVENTS
            )
        return sorted(out, key=lambda e: e.get("seq", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.trace_id}, spans={len(self.spans)})"


# ----------------------------------------------------------------------
# Loading and building
# ----------------------------------------------------------------------
def load_events(path: str) -> list[dict]:
    """Read events from a JSONL trace *or* a flight-recorder dump.

    A flight dump is one JSON document with an ``events`` list; a trace
    is one JSON object per line. The two are distinguished by shape, so
    every consumer (the CLI, the tests) can take either.
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            document = json.loads(text)
        except ValueError:
            document = None
        if isinstance(document, dict) and isinstance(
            document.get("events"), list
        ):
            return list(document["events"])
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def build_traces(records: list[dict]) -> dict[int, Trace]:
    """Fold a flat event stream into :class:`Trace` trees by trace id.

    Events whose span never closed (or that fired outside any span) are
    dropped — they cannot be causally placed. Spans whose declared
    parent is missing from the stream become extra roots of their trace
    (a truncated ring buffer can legitimately lose ancestors).
    """
    spans: dict[int, SpanNode] = {}
    annotations: list[dict] = []
    for record in records:
        name = record.get("event")
        if name == "span_end":
            node = SpanNode(record)
            spans[node.span_id] = node
        elif name != "trace_end" and record.get("span") is not None:
            annotations.append(record)

    for record in annotations:
        owner = spans.get(int(record["span"]))
        if owner is not None:
            owner.events.append(record)
    for node in spans.values():
        node.events.sort(key=lambda e: e.get("seq", 0))

    traces: dict[int, Trace] = {}
    for node in spans.values():
        trace = traces.setdefault(node.trace_id, Trace(node.trace_id))
        trace.spans[node.span_id] = node
    for trace in traces.values():
        for node in trace.spans.values():
            parent = (
                trace.spans.get(node.parent)
                if node.parent is not None
                else None
            )
            if parent is None:
                trace.roots.append(node)
            else:
                parent.children.append(node)
        for node in trace.spans.values():
            node.children.sort(key=lambda s: (s.start_seq, s.span_id))
        trace.roots.sort(key=lambda s: (s.start_seq, s.span_id))
    return traces


# ----------------------------------------------------------------------
# Request-id lookup and verification
# ----------------------------------------------------------------------
def rid_index(traces: dict[int, Trace]) -> dict[str, SpanNode]:
    """Map every request id to the root of its (unique) causal tree.

    Verifies, for each rid, the invariant the fault tests rely on:
    all spans labeled with the rid live in one trace, exactly one of
    them is that trace's root, and every other one is its descendant.
    Raises :class:`CausalError` when any rid violates this.
    """
    by_rid: dict[str, list[tuple[Trace, SpanNode]]] = {}
    for trace in traces.values():
        for node in trace.spans.values():
            if node.rid is not None:
                by_rid.setdefault(node.rid, []).append((trace, node))

    index: dict[str, SpanNode] = {}
    for rid, members in sorted(by_rid.items()):
        owner_traces = {trace.trace_id for trace, _ in members}
        if len(owner_traces) != 1:
            raise CausalError(
                f"rid {rid} spans {len(owner_traces)} traces: "
                f"{sorted(owner_traces)}"
            )
        trace = members[0][0]
        roots = [node for _, node in members if node.parent is None]
        if len(roots) != 1:
            raise CausalError(
                f"rid {rid} has {len(roots)} rooted spans (want exactly 1)"
            )
        root = roots[0]
        reachable = {span.span_id for span in root.walk()}
        strays = [
            node.span_id
            for _, node in members
            if node.span_id not in reachable
        ]
        if strays:
            raise CausalError(
                f"rid {rid}: spans {strays} not reachable from root "
                f"{root.span_id}"
            )
        index[rid] = root
    return index


def find_rid(traces: dict[int, Trace], rid: str) -> SpanNode:
    """The verified causal root for ``rid`` (raises when absent)."""
    index = rid_index(traces)
    root = index.get(rid)
    if root is None:
        known = ", ".join(sorted(index)[:8]) or "none"
        raise CausalError(f"no trace for rid {rid} (known rids: {known})")
    return root


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}ms"


def _describe(span: SpanNode) -> str:
    parts = [span.op]
    for key in sorted(span.fields):
        parts.append(f"{key}={span.fields[key]}")
    timing = f"[{_ms(span.elapsed)}"
    if span.accesses:
        timing += f", {span.accesses} acc"
    if span.seconds:
        timing += f", {_ms(span.seconds)} sim"
    timing += "]"
    parts.append(timing)
    return " ".join(parts)


def _describe_event(event: dict) -> str:
    name = event.get("event", "?")
    fields = ", ".join(
        f"{k}={v}"
        for k, v in sorted(event.items())
        if k not in ("seq", "event", "span")
    )
    return f"· {name}" + (f" ({fields})" if fields else "")


def render_tree(root: SpanNode, max_depth: Optional[int] = None) -> str:
    """ASCII causal tree: spans and annotations in emission order."""
    lines = [_describe(root)]

    def entries(span: SpanNode) -> list[tuple[int, str, object]]:
        merged: list[tuple[int, str, object]] = []
        for event in span.events:
            merged.append((int(event.get("seq", 0)), "event", event))
        for child in span.children:
            merged.append((child.start_seq, "span", child))
        merged.sort(key=lambda item: item[0])
        return merged

    def walk(span: SpanNode, prefix: str, depth: int) -> None:
        rows = entries(span)
        for i, (_, kind, payload) in enumerate(rows):
            last = i == len(rows) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            if kind == "event":
                lines.append(prefix + branch + _describe_event(payload))
                continue
            child = payload
            if max_depth is not None and depth >= max_depth:
                below = len(child.walk())
                lines.append(
                    prefix + branch + f"… {below} span(s) below {child.op}"
                )
                continue
            lines.append(prefix + branch + _describe(child))
            walk(child, prefix + cont, depth + 1)

    walk(root, "", 1)
    return "\n".join(lines)


def hop_rows(root: SpanNode) -> list[dict[str, object]]:
    """Per-hop latency breakdown rows (for ``format_table``).

    ``self_ms`` is the span's wall time minus its direct children's —
    the cost of the hop itself, net of the work it delegated.
    """
    rows: list[dict[str, object]] = []

    def walk(span: SpanNode, depth: int) -> None:
        child_elapsed = sum(c.elapsed for c in span.children)
        where = span.fields.get("shard", span.fields.get("client", ""))
        rows.append(
            {
                "hop": ("  " * depth) + span.op,
                "at": where,
                "elapsed_ms": round(span.elapsed * 1000.0, 3),
                "self_ms": round(
                    max(0.0, span.elapsed - child_elapsed) * 1000.0, 3
                ),
                "reads": span.reads,
                "writes": span.writes,
                "sim_ms": round(span.seconds * 1000.0, 3),
                "events": len(span.events),
            }
        )
        for child in span.children:
            walk(child, depth + 1)

    walk(root, 0)
    return rows


def trace_summary_rows(
    traces: dict[int, Trace],
) -> list[dict[str, Union[int, str, float]]]:
    """One row per trace (for ``trie-hashing trace list``)."""
    rows: list[dict[str, Union[int, str, float]]] = []
    for trace_id in sorted(traces):
        trace = traces[trace_id]
        roots = trace.roots
        first = roots[0] if roots else None
        rids = sorted(
            {span.rid for span in trace.spans.values() if span.rid is not None}
        )
        rows.append(
            {
                "trace": trace_id,
                "root": first.op if first is not None else "?",
                "rid": " ".join(rids) if rids else "-",
                "spans": len(trace.spans),
                "faults": len(trace.fault_events()),
                "elapsed_ms": round(
                    sum(r.elapsed for r in roots) * 1000.0, 3
                ),
            }
        )
    return rows
