"""Section 4.5: the THCL guarantees.

Deterministic, nil-free splits give exact control: 100% load for the
expected ordered case in either direction, exactly ~50% for unexpected
ordered insertions in either direction, ~70% random, and a hard b//2
floor under deletions.
"""

from conftest import once

from repro.analysis import sec45_guarantees


def test_sec45_guarantees(benchmark, report):
    rows = once(
        benchmark, lambda: sec45_guarantees(count=5000, bucket_capacity=20)
    )
    report(
        "sec45_guarantees",
        rows,
        "Section 4.5 - THCL guaranteed loads (b = 20, 5000 keys)",
    )
    by = {r["case"]: r for r in rows}
    assert by["expected ascending, d=0"]["a%"] == 100
    assert by["expected descending, d=0"]["a%"] == 100
    assert by["unexpected ascending"]["a%"] >= 49.5
    assert by["unexpected descending"]["a%"] >= 49.5
    assert 62 <= by["random insertions"]["a%"] <= 78
    assert by["after deleting 80% (floor b//2)"]["min_bucket"] >= 10
