"""The TH-trie: binary digit-discrimination tree over a cell table.

This is the access structure of trie hashing (Section 2 of the paper). An
internal node carries a digit value and digit number ``(d, i)``; a leaf
carries a bucket address or (basic method only) *nil*. The embedded M-ary
"logical structure" is never materialised — it exists through the *logical
paths* that the search algorithm maintains.

The class exposes exactly the primitives the paper's algorithms need:

* :meth:`Trie.search` — Algorithm A1, returning the leaf, the logical path
  ``C`` to it, and the descent *trail* (needed by splits and by the
  successor walks of THCL's step 3.5);
* :meth:`Trie.build_left_chain` — the subtrie a rare-case split grafts in
  (step 3.3 of A2 / THCL);
* :meth:`Trie.inorder` and :meth:`Trie.successor_leaves` — ordered
  traversal (range queries, merging, leaf repointing);
* :meth:`Trie.to_model` / :meth:`Trie.from_model` — conversion to and from
  the canonical boundary set (balancing §2.6, reconstruction /TOR83/,
  MLTH pages §2.5);
* :meth:`Trie.check` — the structural axioms of /TOR83/, used liberally in
  the test suite.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import NamedTuple, Optional

from .alphabet import Alphabet
from .boundaries import BoundaryModel, boundary_sort_key
from .cells import (
    NIL,
    CellTable,
    edge_target,
    edge_to,
    is_edge,
    is_nil,
)
from .errors import TrieCorruptionError

__all__ = ["Location", "ROOT_LOCATION", "SearchResult", "Trie"]


class Location(NamedTuple):
    """Where a pointer lives: cell ``cell``'s side ``side``, or the root.

    ``cell is None`` designates the trie's root pointer slot (``side`` is
    then ignored by convention).
    """

    cell: Optional[int]
    side: str


#: The root pointer slot of the trie.
ROOT_LOCATION = Location(None, "R")


class SearchResult(NamedTuple):
    """Outcome of Algorithm A1 for one key."""

    #: Raw leaf pointer: a bucket address, or the nil sentinel.
    ptr: int
    #: Bucket address, or ``None`` when the leaf is nil.
    bucket: Optional[int]
    #: The logical path ``C`` to the leaf (the paper's second return value).
    path: str
    #: Where the leaf pointer lives (for in-place replacement by splits).
    location: Location
    #: Descent steps ``(cell, side)`` from the root down to the leaf.
    trail: tuple[tuple[int, str], ...]
    #: Number of internal nodes visited (in-memory search cost metric).
    nodes_visited: int
    #: Final value of the digit cursor ``j`` (for resuming the search in
    #: a lower page of a multilevel trie).
    matched: int


class Trie:
    """A TH-trie addressing buckets by primary key.

    Parameters
    ----------
    alphabet:
        The key alphabet.
    root_ptr:
        Initial root pointer; defaults to leaf 0 (a file whose only bucket
        is bucket 0), matching the paper's initial file state.
    """

    __slots__ = ("alphabet", "cells", "root")

    def __init__(self, alphabet: Alphabet, root_ptr: int = 0):
        self.alphabet = alphabet
        self.cells = CellTable()
        self.root = root_ptr

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of internal nodes — the trie size ``M`` of Figs 10-11."""
        return self.cells.live_count()

    def get_ptr(self, location: Location) -> int:
        """Read the pointer stored at ``location``."""
        if location.cell is None:
            return self.root
        return self.cells[location.cell].child(location.side)

    def set_ptr(self, location: Location, ptr: int) -> None:
        """Overwrite the pointer stored at ``location``."""
        if location.cell is None:
            self.root = ptr
        else:
            self.cells[location.cell].set_child(location.side, ptr)

    # ------------------------------------------------------------------
    # Algorithm A1 — key search
    # ------------------------------------------------------------------
    def search(
        self,
        key: str,
        pad: str = "min",
        start_matched: int = 0,
        start_path: str = "",
    ) -> SearchResult:
        """Map ``key`` to its leaf (Algorithm A1).

        Returns the leaf pointer, the logical path ``C`` used by the
        splitting algorithms, the leaf's location and the descent trail.
        The key must be canonical (see ``Alphabet.validate_key``).

        ``pad`` selects the implicit right-padding of the key: ``'min'``
        (space digits — a real key) or ``'max'`` (largest digits — a
        *virtual* key used to locate the leaf immediately left of a
        boundary, needed by THCL's step 3.4).

        ``start_matched``/``start_path`` resume the search mid-descent —
        multilevel trie hashing carries the ``(j, C)`` state from page to
        page (Section 2.5).
        """
        if pad == "min":
            digit_at = self.alphabet.digit_at
        else:
            max_digit = self.alphabet.max_digit

            def digit_at(k: str, j: int) -> str:
                return k[j] if j < len(k) else max_digit
        n = self.root
        location = ROOT_LOCATION
        trail: list[tuple[int, str]] = []
        path = start_path
        j = start_matched
        visited = 0
        while is_edge(n):
            visited += 1
            index = edge_target(n)
            cell = self.cells[index]
            d, i = cell.dv, cell.dn
            if j == i:
                cj = digit_at(key, j)
                if cj <= d:
                    path = self._extend_path(path, d, i)
                    trail.append((index, "L"))
                    location = Location(index, "L")
                    n = cell.lp
                    if cj == d:
                        j += 1
                else:
                    trail.append((index, "R"))
                    location = Location(index, "R")
                    n = cell.rp
            elif j < i:
                path = self._extend_path(path, d, i)
                trail.append((index, "L"))
                location = Location(index, "L")
                n = cell.lp
            else:  # j > i: digit j was already matched above this node
                trail.append((index, "R"))
                location = Location(index, "R")
                n = cell.rp
        bucket = None if is_nil(n) else n
        return SearchResult(n, bucket, path, location, tuple(trail), visited, j)

    def lookup(self, key: str) -> int:
        """Map ``key`` to its raw leaf pointer (descent only).

        The read paths of :class:`repro.core.file.THFile` only need the
        leaf, not the logical path / trail Algorithm A1 also maintains.
        Backends may override this with a cheaper loop (the compact
        backend does); the default simply projects :meth:`search`.
        """
        return self.search(key).ptr

    @staticmethod
    def _extend_path(path: str, d: str, i: int) -> str:
        """``C <- (C)_{i-1} · d`` with a gap check (valid tries never gap)."""
        if len(path) < i:
            raise TrieCorruptionError(
                f"logical path {path!r} too short for digit number {i}"
            )
        return path[:i] + d

    # ------------------------------------------------------------------
    # Structure surgery (used by the splitting algorithms)
    # ------------------------------------------------------------------
    def build_left_chain(
        self,
        digits: str,
        first_position: int,
        bottom_left: int,
        right_fill: int,
        bottom_right: int,
    ) -> tuple[int, list[int]]:
        """Create the left-descending chain grafted in by a split.

        ``digits`` are the new digits of the split string, occupying digit
        numbers ``first_position, first_position+1, ...``. Every
        intermediate node's right child is ``right_fill`` (nil in the
        basic method, the new bucket in THCL); the bottom node's children
        are ``bottom_left`` and ``bottom_right``. Returns an edge pointer
        to the chain's root cell and the chain's cell indices from top to
        bottom (the splitting algorithms extend search trails with them).
        """
        if not digits:
            raise TrieCorruptionError("cannot build an empty chain")
        position = first_position + len(digits) - 1
        child_ptr = None
        indices: list[int] = []
        for d in reversed(digits):
            if child_ptr is None:
                index = self.cells.allocate(d, position, bottom_left, bottom_right)
            else:
                index = self.cells.allocate(d, position, child_ptr, right_fill)
            indices.append(index)
            child_ptr = edge_to(index)
            position -= 1
        indices.reverse()
        return child_ptr, indices

    def collapse_node(self, location: Location) -> None:
        """Replace the node at ``location`` by one of its equal leaves.

        Only valid when both children of the node are leaves carrying the
        same pointer (the situation redistribution can create, Section
        4.4); the node's cell is freed.
        """
        ptr = self.get_ptr(location)
        if not is_edge(ptr):
            raise TrieCorruptionError("collapse target is not an internal node")
        index = edge_target(ptr)
        cell = self.cells[index]
        if is_edge(cell.lp) or is_edge(cell.rp) or cell.lp != cell.rp:
            raise TrieCorruptionError(
                "collapse requires two identical leaf children"
            )
        self.set_ptr(location, cell.lp)
        self.cells.free(index)

    # ------------------------------------------------------------------
    # Ordered traversal
    # ------------------------------------------------------------------
    def inorder(self) -> Iterator[tuple[str, object, object, object]]:
        """Iterate the trie in order.

        Yields ``('leaf', location, ptr, logical_path)`` for leaves and
        ``('node', cell_index, boundary, digit_number)`` for internal
        nodes, interleaved in inorder: leaf, node, leaf, node, ..., leaf.
        The boundary of a node is its logical path through its left edge,
        which is the canonical cut point it represents.
        """
        stack: list[tuple[int, str, str]] = []  # (cell index, boundary, ctx)
        ptr = self.root
        location = ROOT_LOCATION
        path = ""
        while True:
            while is_edge(ptr):
                index = edge_target(ptr)
                cell = self.cells[index]
                boundary = self._extend_path(path, cell.dv, cell.dn)
                stack.append((index, boundary, path))
                path = boundary
                location = Location(index, "L")
                ptr = cell.lp
            yield ("leaf", location, ptr, path)
            if not stack:
                return
            index, boundary, parent_path = stack.pop()
            yield ("node", index, boundary, self.cells[index].dn)
            path = parent_path
            location = Location(index, "R")
            ptr = self.cells[index].rp

    def leaves_in_order(self) -> list[tuple[Location, int, str]]:
        """All leaves left to right as ``(location, ptr, logical_path)``."""
        return [
            (location, ptr, path)
            for kind, location, ptr, path in self.inorder()
            if kind == "leaf"
        ]

    def boundaries(self) -> list[str]:
        """All boundaries (internal-node cut points) in increasing order."""
        return [event[2] for event in self.inorder() if event[0] == "node"]

    def successor_leaves(
        self, trail: Sequence[tuple[int, str]]
    ) -> Iterator[tuple[Location, int]]:
        """Leaves strictly after the leaf reached by ``trail``, in order.

        Yields ``(location, ptr)`` pairs. The caller may overwrite the
        yielded leaf pointer between steps (THCL step 3.5 does); structural
        mutation of the trie during iteration is not supported.
        """
        t: list[tuple[int, str]] = list(trail)
        while True:
            while t and t[-1][1] == "R":
                t.pop()
            if not t:
                return
            index, _ = t.pop()
            t.append((index, "R"))
            ptr = self.cells[index].rp
            while is_edge(ptr):
                child = edge_target(ptr)
                t.append((child, "L"))
                ptr = self.cells[child].lp
            leaf_cell, side = t[-1]
            yield Location(leaf_cell, side), self.cells[leaf_cell].child(side)

    def predecessor_leaves(
        self, trail: Sequence[tuple[int, str]]
    ) -> Iterator[tuple[Location, int]]:
        """Mirror of :meth:`successor_leaves`: leaves before the trail's leaf."""
        t: list[tuple[int, str]] = list(trail)
        while True:
            while t and t[-1][1] == "L":
                t.pop()
            if not t:
                return
            index, _ = t.pop()
            t.append((index, "L"))
            ptr = self.cells[index].lp
            while is_edge(ptr):
                child = edge_target(ptr)
                t.append((child, "R"))
                ptr = self.cells[child].rp
            leaf_cell, side = t[-1]
            yield Location(leaf_cell, side), self.cells[leaf_cell].child(side)

    def depth(self) -> int:
        """Maximum number of internal nodes on a root-to-leaf path."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            ptr, d = stack.pop()
            if is_edge(ptr):
                index = edge_target(ptr)
                cell = self.cells[index]
                stack.append((cell.lp, d + 1))
                stack.append((cell.rp, d + 1))
            else:
                best = max(best, d)
        return best

    # ------------------------------------------------------------------
    # Canonical model conversion
    # ------------------------------------------------------------------
    def to_model(self) -> BoundaryModel:
        """Export the equivalent :class:`BoundaryModel` (shape erased)."""
        boundaries: list[str] = []
        children: list[Optional[int]] = []
        for event in self.inorder():
            if event[0] == "leaf":
                ptr = event[2]
                children.append(None if is_nil(ptr) else ptr)
            else:
                boundaries.append(event[2])
        return BoundaryModel(self.alphabet, boundaries, children)

    @classmethod
    def from_model(cls, model: BoundaryModel, pick: str = "balanced") -> Trie:
        """Build a valid trie realising ``model``.

        The construction recursively roots each boundary span at a
        *candidate* boundary — one whose logical parent lies outside the
        span — choosing the candidate nearest the span's middle
        (``pick='balanced'``, the /TOR83/ canonical balancing) or the
        first/last candidate (``pick='first'``/``'last'``). The result maps
        every key to the same child as the model.
        """
        trie = cls(model.alphabet, root_ptr=NIL)
        boundaries = model.boundaries
        children = model.children

        def child_ptr(j: int) -> int:
            c = children[j]
            return NIL if c is None else c

        # Iterative build: tasks are (lo, hi, slot) meaning "realise the
        # span boundaries[lo:hi] (with children[lo:hi+1]) into slot".
        tasks: list[tuple[int, int, Location]] = [
            (0, len(boundaries), ROOT_LOCATION)
        ]
        while tasks:
            lo, hi, slot = tasks.pop()
            if lo == hi:
                trie.set_ptr(slot, child_ptr(lo))
                continue
            k = _choose_root(boundaries, lo, hi, pick)
            s = boundaries[k]
            index = trie.cells.allocate(s[-1], len(s) - 1, NIL, NIL)
            trie.set_ptr(slot, edge_to(index))
            tasks.append((lo, k, Location(index, "L")))
            tasks.append((k + 1, hi, Location(index, "R")))
        return trie

    def rebalanced(self, pick: str = "balanced") -> Trie:
        """Return an equivalent trie rebuilt in canonical balanced form.

        Implements the trie balancing of Section 2.6: disk behaviour, load
        factor and trie size are unchanged; only the in-memory node search
        gets shorter. The rebuilt trie keeps the receiver's backend
        (``type(self)``), so compact tries rebalance into compact tries.
        """
        return type(self).from_model(self.to_model(), pick=pick)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(self, expect_no_nil: bool = False) -> None:
        """Verify the structural axioms of a TH-trie.

        Checks: every live cell is reachable exactly once; digit numbers
        never create logical-path gaps; the boundary sequence is strictly
        increasing in boundary order; the boundary set is prefix-closed
        (logical parents exist); and, when ``expect_no_nil`` (THCL), that
        no leaf is nil and equal-bucket leaves are contiguous.
        """
        seen: list[int] = []
        boundaries: list[str] = []
        leaf_ptrs: list[int] = []
        for event in self.inorder():  # raises on path gaps
            if event[0] == "node":
                seen.append(event[1])
                boundaries.append(event[2])
            else:
                leaf_ptrs.append(event[2])
        if len(seen) != self.cells.live_count():
            raise TrieCorruptionError(
                f"{self.cells.live_count()} live cells but {len(seen)} reachable"
            )
        if len(set(seen)) != len(seen):
            raise TrieCorruptionError("a cell is reachable twice (cycle/share)")
        keys = [boundary_sort_key(s, self.alphabet) for s in boundaries]
        for a, b in zip(keys, keys[1:]):
            if not a < b:
                raise TrieCorruptionError("boundaries not strictly increasing")
        present = set(boundaries)
        for s in boundaries:
            for l in range(1, len(s)):
                if s[:l] not in present:
                    raise TrieCorruptionError(
                        f"boundary {s!r} lacks logical parent {s[:l]!r}"
                    )
        if expect_no_nil:
            if any(is_nil(p) for p in leaf_ptrs):
                raise TrieCorruptionError("nil leaf in a THCL trie")
            seen_buckets = set()
            previous: Optional[int] = None
            for p in leaf_ptrs:
                if p != previous and p in seen_buckets:
                    raise TrieCorruptionError(
                        f"leaves of bucket {p} are not contiguous"
                    )
                if p != previous:
                    seen_buckets.add(p)
                previous = p


def _choose_root(boundaries: Sequence[str], lo: int, hi: int, pick: str) -> int:
    """Pick the root boundary for the span ``[lo, hi)``.

    Candidates are boundaries whose logical parent (their one-digit-shorter
    prefix) is outside the span — the validity condition for standing above
    the rest of the span (same condition as the MLTH split node, §2.5).
    """
    if hi - lo == 1:
        return lo
    span = set(boundaries[lo:hi])
    candidates = [
        j
        for j in range(lo, hi)
        if len(boundaries[j]) == 1 or boundaries[j][:-1] not in span
    ]
    if not candidates:  # impossible for prefix-closed sets
        raise TrieCorruptionError("span has no valid subtrie root")
    if pick == "first":
        return candidates[0]
    if pick == "last":
        return candidates[-1]
    middle = (lo + hi - 1) / 2
    return min(candidates, key=lambda j: (abs(j - middle), j))
