"""Whole-program model for ``repro.lint.flow``: summaries + call graph.

The flow engine parses every file once into a :class:`ModuleSummary` —
a JSON-serialisable digest of exactly what the interprocedural rules
need: the import map, classes and their bases, functions with their
call sites, raise sites, op-kind tests, and an intra-function
*may-follow* relation between call sites (a lightweight acyclic CFG).
Summaries are what the on-disk cache stores, keyed by content hash, so
a warm run never re-parses an unchanged file.

:class:`Program` links the summaries into a whole-program view: a
module import graph (with SCCs for cache accounting), a class index
with linearised ancestry, and a conservatively resolved call graph.

Resolution policy (the soundness contract rules rely on):

* A ``Name`` call resolves through module globals and the import map —
  across ``from x import y`` chains and package re-exports.
* ``self.m()`` / ``cls.m()`` resolves through the class's linearised
  ancestry **and** fans out to every override of ``m`` in known
  subclasses (virtual dispatch is over-approximated, never ignored).
* A call on an unresolvable receiver *widens*: it may target every
  method of that name anywhere in the program. Rules choose whether to
  follow widened edges (:data:`CallSite.kind` is ``"widened"``).
* A call that resolves to nothing at all is *opaque* ("may call
  anything"); rules treat it per their own policy.

External calls (``time.sleep``, ``os.fsync``...) resolve to their full
dotted name via the import map, so aliasing a module never hides one.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = [
    "CallSite",
    "ClassSummary",
    "FunctionNode",
    "FunctionSummary",
    "ModuleSummary",
    "Program",
    "RaiseSite",
    "build_program",
    "module_name_of",
    "source_hash",
    "summarize_module",
    "summarize_source",
]

#: Bump whenever the summary layout changes (invalidates every cache).
SUMMARY_VERSION = 1


def source_hash(source: str) -> str:
    """Content hash used as the incremental-cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_of(path: Path) -> str:
    """Dotted module name of ``path``, rooted at the ``repro`` package.

    Files outside any package root get their bare stem, so fixture
    trees in tests behave like a tiny standalone program.
    """
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts:
        rel = parts[parts.index("repro"):-1]
    else:
        rel = []  # no package root: treat as a top-level module
    dotted = list(rel)
    if name != "__init__":
        dotted.append(name)
    return ".".join(dotted) if dotted else name


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    #: ``"dotted"`` (resolved to a dotted path), ``"self"`` (method on
    #: self/cls), ``"attr"`` (attribute on an unknown receiver) or
    #: ``"opaque"`` (an unresolvable callee expression).
    form: str
    #: The terminal identifier being called (``sleep`` for
    #: ``time.sleep(...)``), for diagnostics and widening.
    attr: str
    #: Resolved dotted target for ``form == "dotted"`` (else ``""``).
    target: str = ""
    #: Receiver rendering for diagnostics (``self.file`` → ``file``).
    recv: str = ""

    def as_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "form": self.form,
            "attr": self.attr,
            "target": self.target,
            "recv": self.recv,
        }

    @classmethod
    def from_dict(cls, data: dict) -> CallSite:
        return cls(**data)


@dataclass
class RaiseSite:
    """One ``raise X(...)`` statement (re-raises are not recorded)."""

    line: int
    #: Dotted path of the raised class when resolvable through the
    #: import map (``repro.core.errors.StorageError``), else the bare
    #: name (builtins stay bare: ``ValueError``).
    name: str

    def as_dict(self) -> dict:
        return {"line": self.line, "name": self.name}

    @classmethod
    def from_dict(cls, data: dict) -> RaiseSite:
        return cls(**data)


@dataclass
class FunctionSummary:
    """Everything the rules need to know about one function."""

    qual: str  # "THFile.insert", "run_chaos", "outer.<locals>.inner"
    name: str
    cls: Optional[str]  # owning class name within the module
    is_async: bool
    lineno: int
    is_public: bool
    calls: list[CallSite] = field(default_factory=list)
    raises: list[RaiseSite] = field(default_factory=list)
    #: Names compared against an ``.kind`` attribute (op dispatch
    #: exhaustiveness): resolved dotted where possible.
    kind_tests: list[str] = field(default_factory=list)
    #: May-follow relation over ``calls`` indexes: ``[i, j]`` means the
    #: call at index ``j`` can execute after the one at ``i`` on some
    #: forward (acyclic) control path. Loop back edges are dropped —
    #: cross-iteration orderings are out of scope by design.
    order: list[list[int]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "qual": self.qual,
            "name": self.name,
            "cls": self.cls,
            "is_async": self.is_async,
            "lineno": self.lineno,
            "is_public": self.is_public,
            "calls": [c.as_dict() for c in self.calls],
            "raises": [r.as_dict() for r in self.raises],
            "kind_tests": list(self.kind_tests),
            "order": [list(p) for p in self.order],
        }

    @classmethod
    def from_dict(cls, data: dict) -> FunctionSummary:
        return cls(
            qual=data["qual"],
            name=data["name"],
            cls=data["cls"],
            is_async=data["is_async"],
            lineno=data["lineno"],
            is_public=data["is_public"],
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            raises=[RaiseSite.from_dict(r) for r in data["raises"]],
            kind_tests=list(data["kind_tests"]),
            order=[list(p) for p in data["order"]],
        )


@dataclass
class ClassSummary:
    """One class definition: bases (resolved dotted) and method names."""

    name: str
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "bases": list(self.bases),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, data: dict) -> ClassSummary:
        return cls(
            name=data["name"],
            bases=list(data["bases"]),
            methods=list(data["methods"]),
        )


@dataclass
class ModuleSummary:
    """The cached, JSON-serialisable digest of one source file."""

    module: str
    path: str
    sha: str
    imports: dict = field(default_factory=dict)  # local name -> dotted
    functions: dict = field(default_factory=dict)  # qual -> FunctionSummary
    classes: dict = field(default_factory=dict)  # name -> ClassSummary
    constants: dict = field(default_factory=dict)  # NAME -> str value
    const_lines: dict = field(default_factory=dict)  # NAME -> def line
    const_sets: dict = field(default_factory=dict)  # NAME -> [values]
    #: Registries the rules read: dict-literal assignments whose values
    #: are classes (``ERROR_CODES``), resolved to dotted class paths.
    registries: dict = field(default_factory=dict)
    #: ``register_audit("pkg.Class")`` targets seen in this module.
    audit_regs: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "sha": self.sha,
            "imports": dict(self.imports),
            "functions": {
                qual: fn.as_dict() for qual, fn in self.functions.items()
            },
            "classes": {
                name: c.as_dict() for name, c in self.classes.items()
            },
            "constants": dict(self.constants),
            "const_lines": dict(self.const_lines),
            "const_sets": {k: list(v) for k, v in self.const_sets.items()},
            "registries": {k: list(v) for k, v in self.registries.items()},
            "audit_regs": list(self.audit_regs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> ModuleSummary:
        return cls(
            module=data["module"],
            path=data["path"],
            sha=data["sha"],
            imports=dict(data["imports"]),
            functions={
                qual: FunctionSummary.from_dict(fn)
                for qual, fn in data["functions"].items()
            },
            classes={
                name: ClassSummary.from_dict(c)
                for name, c in data["classes"].items()
            },
            constants=dict(data["constants"]),
            const_lines=dict(data["const_lines"]),
            const_sets={k: list(v) for k, v in data["const_sets"].items()},
            registries={k: list(v) for k, v in data["registries"].items()},
            audit_regs=list(data["audit_regs"]),
        )


# ----------------------------------------------------------------------
# Summary extraction
# ----------------------------------------------------------------------
def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _dotted(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None when not one)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute module named by a ``from ...target import`` statement."""
    base = module.split(".")
    # level 1 = current package; the module's own name is not a package
    # unless it is an __init__, which module_name_of already collapsed.
    anchor = base[: len(base) - level] if level <= len(base) else []
    if target:
        anchor = anchor + target.split(".")
    return ".".join(anchor)


class _ImportMap:
    """Local name -> absolute dotted path for one module."""

    def __init__(self, module: str):
        self.module = module
        self.names: dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.names[local] = target

    def add_import_from(self, node: ast.ImportFrom) -> None:
        source = (
            _resolve_relative(self.module, node.level, node.module)
            if node.level
            else (node.module or "")
        )
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = (
                f"{source}.{alias.name}" if source else alias.name
            )

    def resolve(self, name: str) -> Optional[str]:
        """Absolute path of ``name`` or a dotted chain rooted at one."""
        head, _, rest = name.partition(".")
        target = self.names.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target


class _OrderCFG:
    """Acyclic may-follow relation between a function's call sites.

    Each statement is a node holding the call-site indexes it contains;
    edges follow forward control flow: branch suites of an ``if`` (or
    ``try`` handlers) are alternatives, loop bodies run after their
    header (no back edge), ``return``/``raise``/``break``/``continue``
    terminate their path. The relation is the transitive closure of
    "statement B is reachable from statement A", restricted to call
    sites.
    """

    def __init__(self) -> None:
        self.nodes: list[list[int]] = []  # node -> call indexes
        self.edges: list[set] = []

    def _new_node(self, calls: list[int]) -> int:
        self.nodes.append(calls)
        self.edges.append(set())
        return len(self.nodes) - 1

    def _link(self, sources: list[int], target: int) -> None:
        for source in sources:
            self.edges[source].add(target)

    def build_block(
        self, stmts: list, entries: list[int], call_index: dict
    ) -> list[int]:
        """Wire ``stmts`` after ``entries``; returns the exit frontier."""
        frontier = entries
        for stmt in stmts:
            frontier = self._build_stmt(stmt, frontier, call_index)
            if not frontier:
                break  # everything below is unreachable
        return frontier

    def _calls_in(self, node: ast.AST, call_index: dict) -> list[int]:
        found = []
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are their own functions
            key = id(child)
            if key in call_index:
                found.append(call_index[key])
        return found

    def _build_stmt(
        self, stmt: ast.stmt, entries: list[int], call_index: dict
    ) -> list[int]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return entries
        if isinstance(stmt, ast.If):
            head = self._new_node(self._calls_in(stmt.test, call_index))
            self._link(entries, head)
            then_exit = self.build_block(stmt.body, [head], call_index)
            else_exit = (
                self.build_block(stmt.orelse, [head], call_index)
                if stmt.orelse
                else [head]
            )
            return then_exit + else_exit
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            test = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            head = self._new_node(self._calls_in(test, call_index))
            self._link(entries, head)
            body_exit = self.build_block(stmt.body, [head], call_index)
            else_exit = (
                self.build_block(stmt.orelse, [head], call_index)
                if stmt.orelse
                else []
            )
            # No back edge: the loop may also run zero times (head).
            return [head] + body_exit + else_exit
        if isinstance(stmt, ast.Try):
            body_exit = self.build_block(stmt.body, entries, call_index)
            exits: list[int] = []
            for handler in stmt.handlers:
                # A handler may fire after any prefix of the body.
                handler_entry = self._new_node(
                    self._calls_in(handler.type, call_index)
                    if handler.type is not None
                    else []
                )
                self._link(entries + body_exit, handler_entry)
                exits += self.build_block(
                    handler.body, [handler_entry], call_index
                )
            else_exit = (
                self.build_block(stmt.orelse, body_exit, call_index)
                if stmt.orelse
                else body_exit
            )
            exits += else_exit
            if stmt.finalbody:
                return self.build_block(stmt.finalbody, exits, call_index)
            return exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head_calls: list[int] = []
            for item in stmt.items:
                head_calls += self._calls_in(item.context_expr, call_index)
            head = self._new_node(head_calls)
            self._link(entries, head)
            return self.build_block(stmt.body, [head], call_index)
        # Simple statement: one node with every call it contains.
        node = self._new_node(self._calls_in(stmt, call_index))
        self._link(entries, node)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            return []
        return [node]

    def may_follow_pairs(self) -> list[list[int]]:
        """``[i, j]`` call-index pairs where j can run after i."""
        count = len(self.nodes)
        reach: list[set] = [set() for _ in range(count)]
        for node in range(count - 1, -1, -1):
            for successor in self.edges[node]:
                reach[node].add(successor)
                reach[node] |= reach[successor]
        pairs = []
        for node in range(count):
            # Calls within one statement: source order approximates
            # evaluation order (good enough for diagnostics).
            calls = self.nodes[node]
            for i_pos, i in enumerate(calls):
                for j in calls[i_pos + 1:]:
                    pairs.append([i, j])
            later: set = set()
            for successor in reach[node]:
                later.update(self.nodes[successor])
            for i in calls:
                for j in sorted(later):
                    pairs.append([i, j])
        seen = set()
        unique = []
        for i, j in pairs:
            if (i, j) not in seen:
                seen.add((i, j))
                unique.append([i, j])
        return unique


class _FunctionExtractor:
    """Pulls one FunctionSummary out of a (async) function definition."""

    def __init__(
        self,
        module: str,
        imports: _ImportMap,
        local_symbols: set,
        qual: str,
        cls: Optional[str],
        node,
    ):
        self.module = module
        self.imports = imports
        self.local_symbols = local_symbols
        self.qual = qual
        self.cls = cls
        self.node = node
        #: Names of functions nested directly inside this one.
        self.nested: set = {
            child.name
            for child in ast.iter_child_nodes(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def extract(self) -> FunctionSummary:
        node = self.node
        summary = FunctionSummary(
            qual=self.qual,
            name=node.name,
            cls=self.cls,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            lineno=node.lineno,
            is_public=not node.name.startswith("_"),
        )
        call_index: dict = {}
        for child in self._walk_own(node):
            if isinstance(child, ast.Call):
                site = self._classify_call(child)
                call_index[id(child)] = len(summary.calls)
                summary.calls.append(site)
            elif isinstance(child, ast.Raise) and child.exc is not None:
                name = self._raise_name(child.exc)
                if name:
                    summary.raises.append(
                        RaiseSite(line=child.lineno, name=name)
                    )
            elif isinstance(child, ast.Compare):
                summary.kind_tests.extend(self._kind_tests(child))
        cfg = _OrderCFG()
        entry = cfg._new_node([])
        cfg.build_block(node.body, [entry], call_index)
        summary.order = cfg.may_follow_pairs()
        return summary

    def _walk_own(self, root):
        """Walk the body without descending into nested functions."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            stack.extend(ast.iter_child_nodes(child))

    def _classify_call(self, call: ast.Call) -> CallSite:
        func = call.func
        line, col = call.lineno, call.col_offset
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.nested:
                return CallSite(
                    line, col, "dotted", name,
                    target=f"{self.module}.{self.qual}.<locals>.{name}",
                )
            if name in self.local_symbols:
                return CallSite(
                    line, col, "dotted", name,
                    target=f"{self.module}.{name}",
                )
            resolved = self.imports.resolve(name)
            if resolved is not None:
                return CallSite(line, col, "dotted", name, target=resolved)
            if name == "open":
                return CallSite(line, col, "dotted", name, target="open")
            return CallSite(line, col, "opaque", name)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id in ("self", "cls") and self.cls is not None:
                    return CallSite(line, col, "self", attr, recv=owner.id)
                if owner.id in self.local_symbols:
                    return CallSite(
                        line, col, "dotted", attr,
                        target=f"{self.module}.{owner.id}.{attr}",
                        recv=owner.id,
                    )
                resolved = self.imports.resolve(f"{owner.id}.{attr}")
                if resolved is not None:
                    return CallSite(
                        line, col, "dotted", attr,
                        target=resolved, recv=owner.id,
                    )
                return CallSite(line, col, "attr", attr, recv=owner.id)
            dotted = _dotted(func)
            if dotted is not None:
                resolved = self.imports.resolve(dotted)
                if resolved is not None:
                    return CallSite(
                        line, col, "dotted", attr,
                        target=resolved, recv=dotted.rsplit(".", 1)[0],
                    )
            return CallSite(
                line, col, "attr", attr, recv=_terminal_name(owner)
            )
        return CallSite(line, col, "opaque", "")

    def _raise_name(self, exc: ast.AST) -> Optional[str]:
        target = exc.func if isinstance(exc, ast.Call) else exc
        dotted = _dotted(target)
        if dotted is None:
            return None
        if dotted.split(".")[0] in self.local_symbols:
            return f"{self.module}.{dotted}"
        resolved = self.imports.resolve(dotted)
        return resolved if resolved is not None else dotted

    def _kind_tests(self, node: ast.Compare) -> list[str]:
        """Names compared with ``<x>.kind`` (op dispatch tests)."""
        operands = [node.left] + list(node.comparators)
        if not any(
            isinstance(op, ast.Attribute) and op.attr == "kind"
            for op in operands
        ):
            return []
        found = []
        for operand in operands:
            dotted = _dotted(operand)
            if dotted is None or dotted.endswith(".kind"):
                continue
            if dotted.split(".")[0] in self.local_symbols:
                found.append(f"{self.module}.{dotted}")
            else:
                found.append(self.imports.resolve(dotted) or dotted)
        return found


def summarize_source(source: str, path: Path, module: str) -> ModuleSummary:
    """Digest one parsed file into its :class:`ModuleSummary`."""
    tree = ast.parse(source, filename=str(path))
    imports = _ImportMap(module)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imports.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            imports.add_import_from(node)

    summary = ModuleSummary(
        module=module, path=str(path), sha=source_hash(source)
    )
    summary.imports = dict(imports.names)

    local_symbols: set = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            local_symbols.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    local_symbols.add(target.id)

    def extract_function(node, qual: str, cls: Optional[str]) -> None:
        extractor = _FunctionExtractor(
            module, imports, local_symbols, qual, cls, node
        )
        summary.functions[qual] = extractor.extract()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                extract_function(
                    child, f"{qual}.<locals>.{child.name}", cls
                )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(node, node.name, None)
        elif isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                if dotted.split(".")[0] in local_symbols:
                    bases.append(f"{module}.{dotted}")
                else:
                    bases.append(imports.resolve(dotted) or dotted)
            klass = ClassSummary(name=node.name, bases=bases)
            summary.classes[node.name] = klass
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    klass.methods.append(child.name)
                    extract_function(
                        child, f"{node.name}.{child.name}", node.name
                    )

    _collect_module_data(tree, summary, imports, local_symbols)
    return summary


def _collect_module_data(
    tree: ast.Module,
    summary: ModuleSummary,
    imports: _ImportMap,
    local_symbols: set,
) -> None:
    """Constants, const sets, class registries and audit registrations."""
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if value is None or not names:
                continue
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                for name in names:
                    summary.constants[name] = value.value
                    summary.const_lines[name] = node.lineno
            elif (
                isinstance(value, ast.Call)
                and _terminal_name(value.func) in ("frozenset", "set")
                and value.args
                and isinstance(value.args[0], ast.Set)
            ):
                members = _set_members(value.args[0])
                for name in names:
                    summary.const_sets[name] = members
            elif isinstance(value, ast.Set):
                members = _set_members(value)
                for name in names:
                    summary.const_sets[name] = members
            elif isinstance(value, ast.Dict):
                entries = []
                for entry in value.values:
                    dotted = _dotted(entry)
                    if dotted is None:
                        continue
                    if dotted.split(".")[0] in local_symbols:
                        entries.append(f"{summary.module}.{dotted}")
                    else:
                        entries.append(imports.resolve(dotted) or dotted)
                if entries:
                    for name in names:
                        summary.registries[name] = entries
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) == "register_audit"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            summary.audit_regs.append(node.args[0].value)


def _set_members(node: ast.Set) -> list[str]:
    members = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            members.append(element.value)
        elif isinstance(element, ast.Name):
            members.append(element.id)
    return members


def summarize_module(path: Path) -> ModuleSummary:
    source = path.read_text(encoding="utf-8")
    return summarize_source(source, path, module_name_of(path))


# ----------------------------------------------------------------------
# Program: summaries linked into a call graph
# ----------------------------------------------------------------------
@dataclass
class FunctionNode:
    """One function in the whole-program graph."""

    qualname: str  # "repro.core.file.THFile.insert"
    module: str
    summary: FunctionSummary
    path: str
    #: Resolved edges per call index: list of target qualnames.
    edges: list = field(default_factory=list)
    #: Widened edges per call index (followed only by opt-in rules).
    widened: list = field(default_factory=list)
    #: External callees per call index (dotted, e.g. "time.sleep").
    externals: list = field(default_factory=list)


class Program:
    """The linked whole-program view the flow rules run on."""

    def __init__(self, summaries: dict):
        #: module name -> ModuleSummary
        self.modules: dict[str, ModuleSummary] = dict(summaries)
        #: function qualname -> FunctionNode
        self.functions: dict[str, FunctionNode] = {}
        #: class qualname -> (module, ClassSummary)
        self.classes: dict[str, tuple[str, ClassSummary]] = {}
        #: method name -> [function qualnames] (the widening index)
        self.methods_by_name: dict[str, list[str]] = {}
        self.subclasses: dict[str, list[str]] = {}
        self._link()

    # -- assembly ------------------------------------------------------
    def _link(self) -> None:
        for module, summary in self.modules.items():
            for name, klass in summary.classes.items():
                self.classes[f"{module}.{name}"] = (module, klass)
            for qual, fn in summary.functions.items():
                node = FunctionNode(
                    qualname=f"{module}.{qual}",
                    module=module,
                    summary=fn,
                    path=summary.path,
                )
                self.functions[node.qualname] = node
                if fn.cls is not None and "<locals>" not in qual:
                    self.methods_by_name.setdefault(fn.name, []).append(
                        node.qualname
                    )
        for class_qual, (_module, klass) in self.classes.items():
            for base in klass.bases:
                resolved = self._resolve_export(base)
                if resolved in self.classes:
                    self.subclasses.setdefault(resolved, []).append(class_qual)
        for node in self.functions.values():
            self._resolve_function(node)

    def _resolve_export(self, dotted: str) -> str:
        """Follow package re-exports (``repro.check.maybe_audit`` ...)."""
        seen = set()
        current = dotted
        while current not in self.functions and current not in self.classes:
            if current in seen or "." not in current:
                break
            seen.add(current)
            package, _, name = current.rpartition(".")
            summary = self.modules.get(package)
            if summary is None:
                break
            retarget = summary.imports.get(name)
            if retarget is None:
                break
            current = retarget
        return current

    def ancestry(self, class_qual: str) -> list[str]:
        """Linearised ancestor walk of a class (self first, no C3)."""
        out: list[str] = []
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in out or current not in self.classes:
                continue
            out.append(current)
            _module, klass = self.classes[current]
            queue.extend(self._resolve_export(b) for b in klass.bases)
        return out

    def method_on(self, class_qual: str, name: str) -> Optional[str]:
        """Most-derived definition of ``name`` on ``class_qual``."""
        for ancestor in self.ancestry(class_qual):
            candidate = f"{ancestor}.{name}"
            if candidate in self.functions:
                return candidate
        return None

    def _override_targets(self, class_qual: str, name: str) -> list[str]:
        """The method plus every override in known subclasses."""
        targets = []
        base = self.method_on(class_qual, name)
        if base is not None:
            targets.append(base)
        stack = list(self.subclasses.get(class_qual, []))
        seen = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            candidate = f"{sub}.{name}"
            if candidate in self.functions and candidate not in targets:
                targets.append(candidate)
            stack.extend(self.subclasses.get(sub, []))
        return targets

    def _resolve_function(self, node: FunctionNode) -> None:
        for site in node.summary.calls:
            direct: list[str] = []
            widened: list[str] = []
            externals: list[str] = []
            if site.form == "dotted":
                target = self._resolve_export(site.target)
                if target in self.functions:
                    direct.append(target)
                elif target in self.classes:
                    init = self.method_on(target, "__init__")
                    if init is not None:
                        direct.append(init)
                elif target.rpartition(".")[0] in self.classes:
                    owner, _, attr = target.rpartition(".")
                    method = self.method_on(owner, attr)
                    if method is not None:
                        direct.extend(self._override_targets(owner, attr))
                elif not target.startswith(self._internal_roots()):
                    externals.append(target)
                else:
                    # Internal but unresolvable (re-export of an object,
                    # attribute constant...): widen by terminal name.
                    widened.extend(self.methods_by_name.get(site.attr, []))
            elif site.form == "self":
                owner = self._owning_class(node)
                if owner is not None:
                    targets = self._override_targets(owner, site.attr)
                    if targets:
                        direct.extend(targets)
                    else:
                        widened.extend(
                            self.methods_by_name.get(site.attr, [])
                        )
            elif site.form == "attr":
                widened.extend(self.methods_by_name.get(site.attr, []))
            node.edges.append(direct)
            node.widened.append(widened)
            node.externals.append(externals)

    def _internal_roots(self) -> tuple:
        roots = {module.split(".")[0] for module in self.modules}
        return tuple(f"{root}." for root in roots) + tuple(roots)

    def _owning_class(self, node: FunctionNode) -> Optional[str]:
        if node.summary.cls is None:
            return None
        return f"{node.module}.{node.summary.cls}"

    # -- queries -------------------------------------------------------
    def reachable(
        self,
        entries: list[str],
        follow_widened: bool = True,
        skip_modules: tuple = (),
    ) -> dict[str, Optional[tuple[str, int]]]:
        """BFS over the call graph from ``entries``.

        Returns ``{qualname: (caller_qualname, call_line) | None}`` —
        parent pointers for chain reconstruction (entries map to None).
        ``skip_modules`` prunes traversal *into* those module prefixes.
        """
        parents: dict[str, Optional[tuple[str, int]]] = {}
        queue: list[str] = []
        for entry in entries:
            if entry in self.functions and entry not in parents:
                parents[entry] = None
                queue.append(entry)
        while queue:
            current = queue.pop(0)
            node = self.functions[current]
            for index, site in enumerate(node.summary.calls):
                targets = list(node.edges[index])
                if follow_widened:
                    targets += node.widened[index]
                for target in targets:
                    if target in parents:
                        continue
                    callee = self.functions.get(target)
                    if callee is None:
                        continue
                    if callee.module.startswith(skip_modules):
                        continue
                    parents[target] = (current, site.line)
                    queue.append(target)
        return parents

    def chain(
        self, parents: dict, qualname: str
    ) -> list[str]:
        """Entry-to-target call chain for diagnostics."""
        out = [qualname]
        current = qualname
        while parents.get(current) is not None:
            current = parents[current][0]
            out.append(current)
            if len(out) > 64:
                break
        return list(reversed(out))

    # -- module import graph / SCCs ------------------------------------
    def import_graph(self) -> dict[str, set]:
        graph: dict[str, set] = {name: set() for name in self.modules}
        for name, summary in self.modules.items():
            for target in summary.imports.values():
                root = target
                while root:
                    if root in self.modules and root != name:
                        graph[name].add(root)
                        break
                    if "." not in root:
                        break
                    root = root.rpartition(".")[0]
        return graph

    def sccs(self) -> list[list[str]]:
        """Strongly connected components of the import graph."""
        graph = self.import_graph()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(graph[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(graph[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    out.append(sorted(component))

        for name in sorted(graph):
            if name not in index:
                strongconnect(name)
        return out

    def scc_of(self) -> dict[str, frozenset]:
        mapping: dict[str, frozenset] = {}
        for component in self.sccs():
            frozen = frozenset(component)
            for member in component:
                mapping[member] = frozen
        return mapping

    # -- lookups for rules ---------------------------------------------
    def registry(self, name: str) -> list[str]:
        """All dotted entries of registry dicts called ``name``."""
        out: list[str] = []
        for summary in self.modules.values():
            out.extend(summary.registries.get(name, []))
        return out

    def audited_classes(self) -> list[str]:
        out: list[str] = []
        for summary in self.modules.values():
            out.extend(summary.audit_regs)
        return sorted(set(out))

    def constant_value(self, dotted: str) -> Optional[str]:
        module, _, name = dotted.rpartition(".")
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.constants.get(name)

    def const_set_values(self, dotted: str) -> Optional[list[str]]:
        """Members of a constant set, resolved to their string values."""
        module, _, name = dotted.rpartition(".")
        summary = self.modules.get(module)
        if summary is None:
            return None
        members = summary.const_sets.get(name)
        if members is None:
            return None
        values = []
        for member in members:
            values.append(summary.constants.get(member, member))
        return values


def build_program(summaries: dict) -> Program:
    return Program(summaries)


def to_dot(program: Program, widened: bool = False) -> str:
    """Render the resolved call graph as Graphviz DOT.

    Functions cluster by module; solid edges are resolved calls,
    dashed edges (``widened=True``) are name-widened may-call edges.
    """
    lines = [
        "digraph callgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9, fontname="monospace"];',
    ]
    by_module: dict[str, list[FunctionNode]] = {}
    for node in program.functions.values():
        by_module.setdefault(node.module, []).append(node)
    for index, module in enumerate(sorted(by_module)):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{module}"; color=gray;')
        for node in sorted(by_module[module], key=lambda n: n.qualname):
            label = node.summary.qual
            if node.summary.is_async:
                label = "async " + label
            lines.append(f'    "{node.qualname}" [label="{label}"];')
        lines.append("  }")
    emitted: set = set()
    for node in program.functions.values():
        targets: list[tuple[str, str]] = []
        for direct in node.edges:
            targets += [(t, "solid") for t in direct]
        if widened:
            for widen in node.widened:
                targets += [(t, "dashed") for t in widen]
        for target, style in targets:
            key = (node.qualname, target, style)
            if key in emitted or target not in program.functions:
                continue
            emitted.add(key)
            lines.append(
                f'  "{node.qualname}" -> "{target}" [style={style}];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
