"""The process-local event bus and operation spans.

One module-level :data:`TRACER` serves the whole process. Instrumented
code guards every hook site with the *attribute check*
``if TRACER.enabled:`` — with tracing off (the default) no function is
called and no object is allocated, so the hot paths of the access
methods stay within noise of their uninstrumented cost.

Spans
-----
A span brackets one logical operation (``insert``, ``search``,
``delete``, ``range``). Spans nest: when a public operation is
implemented in terms of another (``put`` calling ``insert``,
``contains`` calling ``get``), the inner span becomes a child. Device
accesses are attributed to the *innermost* active span; when a span
closes, its totals roll up into its parent, so a root span's totals
cover everything the operation caused. Accesses that happen outside
any span (file construction, ad-hoc scans) accumulate in the tracer's
``unattributed_*`` counters. The invariant the property tests pin::

    sum(root span accesses) + unattributed == DiskStats delta

holds exactly, per device and in total, for any workload.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterable, Iterator
from typing import Optional

from .events import Event

__all__ = ["Span", "Tracer", "TRACER", "trace"]


class Span:
    """One operation's attribution record."""

    __slots__ = ("id", "op", "parent", "reads", "writes", "seconds", "fields")

    def __init__(
        self,
        span_id: int,
        op: str,
        parent: Optional[int],
        fields: dict[str, object],
    ):
        self.id = span_id
        self.op = op
        self.parent = parent
        self.reads = 0
        self.writes = 0
        self.seconds = 0.0
        self.fields = fields

    @property
    def accesses(self) -> int:
        """Total device accesses attributed to this span (and children)."""
        return self.reads + self.writes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.id}, {self.op!r}, parent={self.parent}, "
            f"r={self.reads}, w={self.writes})"
        )


class Tracer:
    """The event bus: emit points, span stack, access attribution.

    A tracer starts disabled. :meth:`activate` attaches sinks (objects
    with an ``on_event(event)`` method) and turns the hooks on;
    :meth:`deactivate` emits a final ``trace_end`` event and turns them
    off. The :func:`trace` context manager wraps the pair.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: list[object] = []
        self._stack: list[Span] = []
        self._seq = 0
        self._next_span = 0
        self.unattributed_reads = 0
        self.unattributed_writes = 0
        self.unattributed_seconds = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def activate(self, sinks: Iterable[object] = ()) -> None:
        """Attach ``sinks`` and enable the hooks (resets all state)."""
        if self.enabled:
            raise RuntimeError("tracer is already active")
        self._sinks = list(sinks)
        self._stack = []
        self._seq = 0
        self._next_span = 0
        self.unattributed_reads = 0
        self.unattributed_writes = 0
        self.unattributed_seconds = 0.0
        self.enabled = True

    def deactivate(self) -> None:
        """Emit ``trace_end`` and disable the hooks."""
        if not self.enabled:
            return
        self.emit(
            "trace_end",
            unattributed_reads=self.unattributed_reads,
            unattributed_writes=self.unattributed_writes,
            unattributed_seconds=self.unattributed_seconds,
        )
        self.enabled = False
        self._sinks = []
        self._stack = []

    def add_sink(self, sink: object) -> None:
        """Attach one more sink to an active tracer."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, name: str, **fields: object) -> None:
        """Dispatch one event to every sink (call only when enabled)."""
        span = self._stack[-1].id if self._stack else None
        self._seq += 1
        event = Event(self._seq, name, span, fields)
        for sink in self._sinks:
            sink.on_event(event)

    def record_access(self, write: bool, device: str, seconds: float) -> None:
        """A device access: attribute it, then emit the disk event.

        Called from :meth:`repro.storage.disk.SimulatedDisk._account`
        behind the ``enabled`` check, so the disabled cost is nil.
        """
        if self._stack:
            span = self._stack[-1]
            if write:
                span.writes += 1
            else:
                span.reads += 1
            span.seconds += seconds
        else:
            if write:
                self.unattributed_writes += 1
            else:
                self.unattributed_reads += 1
            self.unattributed_seconds += seconds
        if seconds:
            self.emit(
                "disk_write" if write else "disk_read",
                device=device,
                seconds=seconds,
            )
        else:
            self.emit("disk_write" if write else "disk_read", device=device)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, op: str, **fields: object) -> Iterator[Span]:
        """Bracket one operation; yields the live :class:`Span`."""
        self._next_span += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_span, op, parent.id if parent else None, fields)
        self._stack.append(span)
        try:
            yield span
        finally:
            popped = self._stack.pop()
            if parent is not None:
                # Roll child totals into the parent so root spans carry
                # everything their operation caused.
                parent.reads += popped.reads
                parent.writes += popped.writes
                parent.seconds += popped.seconds
            self.emit(
                "span_end",
                op=popped.op,
                span_id=popped.id,
                parent=popped.parent,
                reads=popped.reads,
                writes=popped.writes,
                accesses=popped.accesses,
                seconds=popped.seconds,
                **popped.fields,
            )

    def wrap_iter(self, op: str, iterator: Iterator, **fields: object) -> Iterator:
        """Run an iterator inside a span (for range scans).

        The span stays open for the generator's whole life, so consume
        range iterators promptly when attributing accesses precisely.
        """
        with self.span(op, **fields):
            yield from iterator


#: The process-local tracer every instrumented component checks.
TRACER = Tracer()


@contextmanager
def trace(
    sinks: Iterable[object] = (),
    registry: Optional[object] = None,
) -> Iterator[Tracer]:
    """Enable the global tracer for a ``with`` block.

    ``registry`` is a convenience: when given, a
    :class:`~repro.obs.recorder.MetricsRecorder` folding events into it
    is attached as an extra sink. Sinks exposing ``close()`` are closed
    on exit.
    """
    all_sinks = list(sinks)
    if registry is not None:
        from .recorder import MetricsRecorder

        all_sinks.append(MetricsRecorder(registry))
    TRACER.activate(all_sinks)
    try:
        yield TRACER
    finally:
        TRACER.deactivate()
        for sink in all_sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
