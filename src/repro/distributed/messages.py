"""The message vocabulary of the TH* shard layer.

Clients and servers exchange plain value objects — an :class:`Op` going
in, a :class:`Reply` coming back — through the
:class:`~repro.distributed.router.Router`. Every reply may carry Image
Adjustment Message entries (see :mod:`repro.core.image`): the
authoritative cut points around whatever the operation touched, which
the client grafts into its trie image. Errors travel as exception
*instances* (the same :class:`~repro.core.errors.DuplicateKeyError` /
:class:`~repro.core.errors.KeyNotFoundError` the single-node file
raises) so the distributed file is behaviorally indistinguishable from
a local :class:`~repro.core.file.THFile`.
"""

from __future__ import annotations

from typing import Optional

from ..core.image import IAMEntry

__all__ = [
    "GET",
    "CONTAINS",
    "INSERT",
    "PUT",
    "DELETE",
    "SCAN",
    "GET_MANY",
    "PUT_MANY",
    "REPLICATE",
    "RESYNC",
    "POINT_OPS",
    "MUTATING_OPS",
    "BATCH_OPS",
    "REPLICA_OPS",
    "Op",
    "Reply",
    "rid_str",
]

GET = "get"
CONTAINS = "contains"
INSERT = "insert"
PUT = "put"
DELETE = "delete"
SCAN = "scan"
GET_MANY = "get_many"
PUT_MANY = "put_many"
REPLICATE = "replicate"
RESYNC = "resync"

#: Single-key operations (everything but a scan leg).
POINT_OPS = frozenset({GET, CONTAINS, INSERT, PUT, DELETE})

#: Operations that modify a shard (and may trigger scale-out).
MUTATING_OPS = frozenset({INSERT, PUT, DELETE, PUT_MANY})

#: Multi-key operations. A batch leg carries its whole sub-batch in
#: ``value``; the receiving shard serves the keys it owns and returns
#: the rest in ``Reply.records`` for the client to re-batch (batches
#: are never forwarded — the leftovers plus IAM teach the client the
#: true owners in one round trip).
BATCH_OPS = frozenset({GET_MANY, PUT_MANY})

#: Primary-to-backup shipping legs (see
#: :mod:`repro.distributed.replication`). A ``REPLICATE`` op carries a
#: committed WAL batch (or a catch-up slice of one segment) in
#: ``value``; a ``RESYNC`` op carries a full snapshot — items, dedup
#: window and the primary's WAL position. Only backups accept them.
REPLICA_OPS = frozenset({REPLICATE, RESYNC})


class Op:
    """One client request.

    Point operations carry ``key`` (and ``value`` for insert/put). A
    scan leg carries the inclusive key bounds ``low``/``high`` (``None``
    = open) plus ``after``: the boundary the previous leg ended at, so
    the leg asks for the next authoritative region strictly above it.

    Mutating operations additionally carry ``rid``, the per-client
    monotonic request id ``(client_id, seq)`` that makes retries
    idempotent: the id is assigned once per *logical* operation, so
    every redelivery (client retry or a duplicated message) carries the
    same id and the owning server's dedup window can short-circuit it.

    ``ctx`` is the compact trace context ``(trace_id, span_id)`` of the
    sender's active span (see :class:`repro.obs.tracer.TraceContext`):
    the receiving hop opens its own span *under* that coordinate, which
    is what stitches client, router and shard spans into one causal
    tree. It is ``None`` whenever tracing is off and never affects
    execution — purely observational freight.
    """

    __slots__ = ("kind", "key", "value", "low", "high", "after", "rid", "ctx")

    def __init__(
        self,
        kind: str,
        key: Optional[str] = None,
        value: object = None,
        low: Optional[str] = None,
        high: Optional[str] = None,
        after: Optional[str] = None,
        rid: Optional[tuple[int, int]] = None,
        ctx: Optional[tuple[int, int]] = None,
    ):
        self.kind = kind
        self.key = key
        self.value = value
        self.low = low
        self.high = high
        self.after = after
        self.rid = rid
        self.ctx = ctx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == SCAN:
            return f"Op(scan, {self.low!r}..{self.high!r}, after={self.after!r})"
        return f"Op({self.kind}, {self.key!r})"

    # -- constructors --------------------------------------------------
    @classmethod
    def get(cls, key: str) -> Op:
        return cls(GET, key=key)

    @classmethod
    def contains(cls, key: str) -> Op:
        return cls(CONTAINS, key=key)

    @classmethod
    def insert(cls, key: str, value: object = None) -> Op:
        return cls(INSERT, key=key, value=value)

    @classmethod
    def put(cls, key: str, value: object = None) -> Op:
        return cls(PUT, key=key, value=value)

    @classmethod
    def delete(cls, key: str) -> Op:
        return cls(DELETE, key=key)

    @classmethod
    def scan(
        cls,
        low: Optional[str] = None,
        high: Optional[str] = None,
        after: Optional[str] = None,
    ) -> Op:
        return cls(SCAN, low=low, high=high, after=after)

    @classmethod
    def get_many(cls, keys: list[str]) -> Op:
        """A batched-read leg: ``keys`` (sorted) travel in ``value``."""
        return cls(GET_MANY, key=keys[0] if keys else None, value=keys)

    @classmethod
    def put_many(cls, items: list[tuple[str, object]]) -> Op:
        """A batched-upsert leg: the pairs (sorted by key) in ``value``."""
        return cls(PUT_MANY, key=items[0][0] if items else None, value=items)

    @classmethod
    def replicate(cls, payload: dict) -> Op:
        """A shipped WAL batch (``epoch``/``seq``/``recs`` payload)."""
        return cls(REPLICATE, value=payload)

    @classmethod
    def resync(cls, payload: dict) -> Op:
        """A full snapshot transfer (items + dedup window + LSN)."""
        return cls(RESYNC, value=payload)


class Reply:
    """One server response.

    ``error`` holds the exception the operation raised on the owning
    shard (re-raised client-side); ``forwards`` counts server-to-server
    hops the op needed (0 = the client's image addressed correctly);
    ``iam`` is the list of Image Adjustment entries to graft. Scan legs
    additionally fill ``records``, ``region_high`` (the boundary the
    served region ends at, the continuation point) and ``done``.
    ``dedup`` marks a reply served from the owner's dedup window — the
    operation had already applied on an earlier delivery and the stored
    result was replayed instead of re-executing. ``ctx`` is the trace
    context of the span that actually *executed* the operation (the
    owning shard after any forwards), mirroring ``Op.ctx`` on the way
    back so either end of the wire can name its causal peer.
    """

    __slots__ = (
        "value",
        "error",
        "iam",
        "forwards",
        "owner",
        "records",
        "region_high",
        "done",
        "dedup",
        "ctx",
    )

    def __init__(
        self,
        value: object = None,
        error: Optional[Exception] = None,
        iam: Optional[list[IAMEntry]] = None,
        forwards: int = 0,
        owner: int = -1,
        records: Optional[list[tuple[str, object]]] = None,
        region_high: Optional[str] = None,
        done: bool = True,
        dedup: bool = False,
        ctx: Optional[tuple[int, int]] = None,
    ):
        self.value = value
        self.error = error
        self.iam = iam if iam is not None else []
        self.forwards = forwards
        self.owner = owner
        self.records = records
        self.region_high = region_high
        self.done = done
        self.dedup = dedup
        self.ctx = ctx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "err" if self.error is not None else "ok"
        return f"Reply({status}, owner={self.owner}, forwards={self.forwards})"


def rid_str(rid: Optional[tuple[int, int]]) -> Optional[str]:
    """A request id in its compact human form, ``"c<client>-<seq>"``.

    This is the spelling span fields, trace annotations and the
    ``trie-hashing trace report <rid>`` CLI all share, so a rid read off
    a causal tree pastes straight back into the report command.
    """
    if rid is None:
        return None
    return f"c{rid[0]}-{rid[1]}"
