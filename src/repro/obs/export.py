"""Exporters: JSONL traces, Prometheus text, summary tables.

Three consumers, three formats:

* :class:`JsonlTraceWriter` — a tracer sink streaming one JSON object
  per event, for offline analysis of *why* a run behaved as it did;
* :func:`prometheus_text` — the registry as a Prometheus exposition
  snapshot (``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  series), so an external scraper can ingest a run;
* :func:`summary_rows` / :func:`metrics_json` — the registry as
  ``format_table``-compatible rows and as a JSON document, the forms
  the CLI and benchmark harness write next to their result tables.
"""

from __future__ import annotations

import io
import json
from typing import Optional, Union

from .events import Event
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, _render_key

__all__ = [
    "JsonlTraceWriter",
    "prometheus_text",
    "metrics_json",
    "write_metrics_json",
    "summary_rows",
]


class JsonlTraceWriter:
    """Stream events as JSON lines to a path or file-like object."""

    def __init__(self, target: Union[str, io.TextIOBase]):
        if isinstance(target, (str, bytes)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._closed = False

    def on_event(self, event: Event) -> None:
        """Write one event as one line."""
        if self._closed:
            return
        json.dump(event.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the file is complete)."""
        return self._closed

    def close(self) -> None:
        """Flush, and close the file when this writer opened it.

        Idempotent: ``Tracer.deactivate()`` closes every sink the moment
        tracing stops, and the :func:`~repro.obs.tracer.trace` helper
        may close again on exit — the second call is a no-op, so trace
        files are complete right after deactivation (crash-path tests
        rely on this) without double-close errors.
        """
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry as Prometheus exposition text."""
    lines: list[str] = []
    seen_types: dict[str, str] = {}

    def type_line(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for inst in registry.instruments():
        if isinstance(inst, Counter):
            type_line(inst.name, "counter")
            lines.append(f"{_render_key(inst.name, inst.labels)} {_num(inst.value)}")
        elif isinstance(inst, Gauge):
            type_line(inst.name, "gauge")
            lines.append(f"{_render_key(inst.name, inst.labels)} {_num(inst.value)}")
        elif isinstance(inst, Histogram):
            type_line(inst.name, "histogram")
            cumulative = 0
            for bound, count in zip(inst.bounds, inst.counts):
                cumulative += count
                labels = inst.labels + (("le", _num(bound)),)
                lines.append(f"{_render_key(inst.name + '_bucket', labels)} {cumulative}")
            labels = inst.labels + (("le", "+Inf"),)
            lines.append(f"{_render_key(inst.name + '_bucket', labels)} {inst.total}")
            lines.append(f"{_render_key(inst.name + '_sum', inst.labels)} {_num(inst.sum)}")
            lines.append(f"{_render_key(inst.name + '_count', inst.labels)} {inst.total}")
            for p in (50, 95, 99):
                labels = inst.labels + (("quantile", _num(p / 100.0)),)
                lines.append(
                    f"{_render_key(inst.name, labels)} {_num(inst.percentile(p))}"
                )
    derived = registry.snapshot()["derived"]
    for key, value in sorted(derived.items()):
        type_line(f"repro_{key}", "gauge")
        lines.append(f"repro_{key} {_num(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def write_metrics_json(registry: MetricsRegistry, path: str) -> None:
    """Write :func:`metrics_json` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(metrics_json(registry))
        fh.write("\n")


def summary_rows(registry: MetricsRegistry) -> list[dict[str, object]]:
    """The snapshot as rows for :func:`repro.analysis.format_table`.

    Counters and gauges render as single values; histograms as count /
    mean / p50 / p90 / p95 / p99 — the human-readable face of the same
    data the JSON and Prometheus exports carry.
    """
    rows: list[dict[str, object]] = []
    for inst in registry.instruments():
        key = _render_key(inst.name, inst.labels)
        if isinstance(inst, (Counter, Gauge)):
            rows.append({"metric": key, "value": inst.value})
        else:
            rows.append(
                {
                    "metric": key,
                    "value": inst.total,
                    "mean": inst.mean,
                    "p50": inst.percentile(50),
                    "p90": inst.percentile(90),
                    "p95": inst.percentile(95),
                    "p99": inst.percentile(99),
                }
            )
    snapshot_derived = registry.snapshot()["derived"]
    for key, value in sorted(snapshot_derived.items()):
        rows.append({"metric": key, "value": value})
    return rows


def _num(value: float) -> str:
    """Prometheus-friendly number rendering (no trailing .0 for ints)."""
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
