"""Property-based tests for MLTH and the B+-tree baseline."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import BPlusTree, MLTHFile, SplitPolicy, bulk_load_compact

keys_st = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
key_lists = st.lists(keys_st, min_size=1, max_size=100, unique=True)

slow = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestMLTHProperties:
    @given(
        key_lists,
        st.sampled_from(
            [
                SplitPolicy(merge="none"),
                SplitPolicy(split_position=-1, merge="none"),
                SplitPolicy(nil_nodes=False, bounding_offset=1, merge="none"),
                SplitPolicy(
                    nil_nodes=False, bounding_offset=None, merge="none"
                ),
            ]
        ),
        st.integers(min_value=3, max_value=10),
    )
    @slow
    def test_sorted_dict_behaviour(self, keys, policy, page_capacity):
        f = MLTHFile(
            bucket_capacity=3, page_capacity=page_capacity, policy=policy
        )
        for i, k in enumerate(keys):
            f.insert(k, i)
        f.check()
        assert [k for k, _ in f.items()] == sorted(keys)
        for i, k in enumerate(keys):
            assert f.get(k) == i

    @given(key_lists)
    @slow
    def test_matches_flat_file(self, keys):
        from repro import THFile

        flat = THFile(bucket_capacity=3)
        paged = MLTHFile(bucket_capacity=3, page_capacity=5)
        for k in keys:
            flat.insert(k)
            paged.insert(k)
        assert paged.flat_model().boundaries == flat.trie.to_model().boundaries
        assert paged.flat_model().children == flat.trie.to_model().children

    @given(key_lists, st.data())
    @slow
    def test_deletes(self, keys, data):
        f = MLTHFile(bucket_capacity=3, page_capacity=6)
        for i, k in enumerate(keys):
            f.insert(k, i)
        victims = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        for k in victims:
            f.delete(k)
        f.check()
        remaining = sorted(set(keys) - set(victims))
        assert [k for k, _ in f.items()] == remaining


class TestBTreeProperties:
    @given(
        key_lists,
        st.integers(min_value=2, max_value=8),
        st.sampled_from([0.5, 0.7, 1.0]),
        st.booleans(),
    )
    @slow
    def test_sorted_dict_behaviour(self, keys, cap, fraction, redistribute):
        t = BPlusTree(
            leaf_capacity=cap,
            split_fraction=fraction,
            redistribute=redistribute,
        )
        for i, k in enumerate(keys):
            t.insert(k, i)
        t.check()
        assert list(t.keys()) == sorted(keys)
        for i, k in enumerate(keys):
            assert t.get(k) == i

    @given(key_lists, st.data())
    @slow
    def test_mixed_delete_insert(self, keys, data):
        t = BPlusTree(leaf_capacity=4)
        model = {}
        for i, k in enumerate(keys):
            t.insert(k, i)
            model[k] = i
        victims = data.draw(
            st.lists(st.sampled_from(keys), unique=True, max_size=len(keys))
        )
        for k in victims:
            t.delete(k)
            del model[k]
        t.check()
        assert dict(t.items()) == model

    @given(key_lists)
    @slow
    def test_bulk_load_equals_incremental(self, keys):
        s = sorted(keys)
        bulk = bulk_load_compact(((k, None) for k in s), leaf_capacity=4)
        bulk.check()
        assert list(bulk.keys()) == s
        for k in s:
            assert k in bulk

    @given(key_lists)
    @slow
    def test_leaf_chain_consistent_with_descent(self, keys):
        t = BPlusTree(leaf_capacity=3)
        for k in keys:
            t.insert(k)
        # Every key found by descent is on the chain and vice versa.
        assert sorted(t.keys()) == list(t.keys())
        assert set(t.keys()) == set(keys)
