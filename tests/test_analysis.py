"""Tests for the metrics/simulator/reporting harness."""

from repro import BPlusTree, MLTHFile, THFile
from repro.analysis.metrics import access_cost, average_access_cost, file_metrics
from repro.analysis.reporting import format_table, format_value
from repro.analysis.simulator import delete_all, insert_all, load_series


class TestFileMetrics:
    def test_thfile_metrics(self, small_keys):
        f = insert_all(THFile(bucket_capacity=8), small_keys)
        m = file_metrics(f)
        assert m["records"] == len(small_keys)
        assert 0 < m["load_factor"] <= 1
        assert m["buckets"] == f.bucket_count()
        assert m["trie_cells"] == f.trie_size()
        assert m["index_bytes"] == 6 * f.trie_size()
        assert "nil_fraction" in m

    def test_mlth_metrics(self, small_keys):
        f = insert_all(
            MLTHFile(bucket_capacity=5, page_capacity=8), small_keys
        )
        m = file_metrics(f)
        assert m["levels"] >= 2
        assert m["pages"] == f.page_count()
        assert 0 < m["page_load"] <= 1

    def test_btree_metrics(self, small_keys):
        t = BPlusTree(leaf_capacity=8)
        for k in small_keys:
            t.insert(k)
        m = file_metrics(t)
        assert m["separators"] == t.separator_count()
        assert m["height"] == t.height
        assert m["buckets"] == t.leaf_count()


class TestAccessCost:
    def test_search_cost_is_one(self, small_keys):
        f = insert_all(THFile(bucket_capacity=8), small_keys)
        cost = access_cost(f, lambda: f.get(small_keys[0]))
        assert cost == {"reads": 1, "writes": 0, "accesses": 1}

    def test_insert_cost_read_plus_write(self, small_keys):
        f = insert_all(THFile(bucket_capacity=8), small_keys)
        cost = access_cost(f, lambda: f.insert("zzzzzx"))
        assert cost["reads"] >= 1 and cost["writes"] >= 1

    def test_average(self, small_keys):
        f = insert_all(THFile(bucket_capacity=8), small_keys)
        avg = average_access_cost(
            f, [lambda k=k: f.get(k) for k in small_keys[:10]]
        )
        assert avg["accesses"] == 1.0

    def test_mlth_counts_both_devices(self, small_keys):
        f = insert_all(
            MLTHFile(bucket_capacity=5, page_capacity=8, pin_root=False),
            small_keys,
        )
        cost = access_cost(f, lambda: f.get(small_keys[0]))
        assert cost["reads"] == f.levels() + 1


class TestSimulator:
    def test_insert_all_returns_file(self, small_keys):
        f = insert_all(THFile(), small_keys[:20])
        assert len(f) == 20

    def test_delete_all(self, small_keys):
        f = insert_all(THFile(), small_keys[:20])
        delete_all(f, small_keys[:20])
        assert len(f) == 0

    def test_load_series_sampling(self, small_keys):
        rows = load_series(THFile(bucket_capacity=8), small_keys, every=50)
        assert rows[-1]["inserted"] == len(small_keys)
        assert [r["inserted"] for r in rows[:-1]] == list(
            range(50, len(small_keys), 50)
        )
        assert all("load_factor" in r for r in rows)


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(3.14159) == "3.142"
        assert format_value(2.0) == "2"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_table_union_of_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        out = format_table(rows)
        assert "a" in out and "b" in out
