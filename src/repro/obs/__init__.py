"""Observability: structured tracing and metrics for the access methods.

The paper's every claim is a counted quantity — disk accesses per
search/insert, load factor, trie growth — and this package makes those
quantities observable *live* instead of only as counter deltas:

* :mod:`repro.obs.tracer` — a process-local event bus emitting typed
  structural events (``split``, ``merge``, ``redistribute``,
  ``overflow``, ``page_split``, ``rebalance``, ``disk_read``,
  ``disk_write``, ``buffer_hit``, ``buffer_miss``) plus nested
  *operation spans* (``insert``/``search``/``delete``/``range``) that
  attribute every device access to the operation that caused it;
* :mod:`repro.obs.metrics` — a zero-dependency metrics registry with
  counters, gauges and fixed-bucket histograms;
* :mod:`repro.obs.recorder` — the bridge that folds the event stream
  into the registry (accesses/op histograms, split fan-out, buffer hit
  rate, simulated-latency percentiles);
* :mod:`repro.obs.export` — JSON-lines trace writing, a
  Prometheus-style text snapshot, and ``format_table``-compatible
  summary rows;
* :mod:`repro.obs.flight` — a bounded ring buffer of recent events
  (the :data:`FLIGHT` recorder) dumped to forensics files on crashes,
  chaos divergence, and paranoid-audit failures;
* :mod:`repro.obs.causal` — reconstruction of causal span trees (one
  per ``trace_id``) from a JSONL trace or flight dump, with rendering
  and per-hop latency breakdowns for ``trie-hashing trace report``.

Tracing is **off by default** and costs one attribute check per hook
site (``if TRACER.enabled:``). Enable it around a workload::

    from repro.obs import MetricsRegistry, trace

    registry = MetricsRegistry()
    with trace(registry=registry) as tracer:
        f = THFile(bucket_capacity=20)
        for k in keys:
            f.insert(k)
    print(registry.snapshot()["derived"])

See ``docs/OBSERVABILITY.md`` for the event taxonomy, span semantics
and exporter formats.
"""

from .causal import (
    CausalError,
    SpanNode,
    Trace,
    build_traces,
    find_rid,
    hop_rows,
    load_events,
    render_tree,
    rid_index,
    trace_summary_rows,
)
from .events import EVENT_NAMES, Event
from .export import (
    JsonlTraceWriter,
    metrics_json,
    prometheus_text,
    summary_rows,
    write_metrics_json,
)
from .flight import FLIGHT, FlightRecorder
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import MetricsRecorder
from .tracer import TRACER, Span, TraceContext, Tracer, trace

__all__ = [
    "EVENT_NAMES",
    "Event",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsRecorder",
    "JsonlTraceWriter",
    "prometheus_text",
    "metrics_json",
    "write_metrics_json",
    "summary_rows",
    "FlightRecorder",
    "FLIGHT",
    "CausalError",
    "SpanNode",
    "Trace",
    "load_events",
    "build_traces",
    "rid_index",
    "find_rid",
    "render_tree",
    "hop_rows",
    "trace_summary_rows",
]
