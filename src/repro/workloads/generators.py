"""Seeded key generators for the benchmark harness.

The paper's simulations insert "5 000 keys, randomly drawn and then
sorted"; other experiments need random order, descending order, skewed
letter distributions, or keys sharing long prefixes (the regime that
stresses split-string length and hence trie size). Every generator here
is deterministic given its seed, so each benchmark run regenerates the
paper's workload exactly.
"""

from __future__ import annotations

import random
import string
from collections.abc import Sequence
from typing import Optional

__all__ = ["KeyGenerator"]


class KeyGenerator:
    """A reproducible source of unique keys over a letter alphabet.

    Parameters
    ----------
    seed:
        Seed of the private RNG.
    letters:
        The digits keys are drawn from (lowercase letters by default —
        the alphabet of the paper's examples).
    """

    def __init__(self, seed: int = 42, letters: str = string.ascii_lowercase):
        self._seed = seed
        self.letters = letters

    def _rng(self, salt: int = 0) -> random.Random:
        return random.Random(f"{self._seed}/{salt}")

    # ------------------------------------------------------------------
    def uniform(self, count: int, length: int = 6, salt: int = 0) -> list[str]:
        """``count`` unique fixed-length keys, uniform over the alphabet,
        in random order."""
        rng = self._rng(salt)
        keys = set()
        while len(keys) < count:
            keys.add("".join(rng.choice(self.letters) for _ in range(length)))
        # Sort before shuffling: bare list(set) order depends on
        # PYTHONHASHSEED, which would make the "random order" differ per
        # process and break cross-run benchmark comparability.
        out = sorted(keys)
        rng.shuffle(out)
        return out

    def sorted_keys(self, count: int, length: int = 6, salt: int = 0) -> list[str]:
        """The paper's Figs 10-11 protocol: drawn at random, then sorted."""
        return sorted(self.uniform(count, length, salt))

    def descending_keys(self, count: int, length: int = 6, salt: int = 0) -> list[str]:
        """Same keys, descending order."""
        return sorted(self.uniform(count, length, salt), reverse=True)

    def variable_length(
        self,
        count: int,
        min_length: int = 3,
        max_length: int = 10,
        salt: int = 0,
    ) -> list[str]:
        """Unique keys of mixed lengths (exercises the space padding)."""
        rng = self._rng(salt)
        keys = set()
        while len(keys) < count:
            n = rng.randint(min_length, max_length)
            keys.add("".join(rng.choice(self.letters) for _ in range(n)))
        out = sorted(keys)
        rng.shuffle(out)
        return out

    def skewed(
        self, count: int, length: int = 6, concentration: float = 2.0, salt: int = 0
    ) -> list[str]:
        """Keys with a Zipf-like skew on every digit position.

        Higher ``concentration`` pushes more probability mass onto the
        first letters of the alphabet, producing the uneven distributions
        under which tries stay compact but unbalanced (Section 2.6).
        """
        rng = self._rng(salt)
        weights = [1.0 / (i + 1) ** concentration for i in range(len(self.letters))]
        keys = set()
        while len(keys) < count:
            keys.add(
                "".join(rng.choices(self.letters, weights=weights, k=length))
            )
        out = sorted(keys)
        rng.shuffle(out)
        return out

    def clustered(
        self,
        count: int,
        prefixes: Optional[Sequence[str]] = None,
        suffix_length: int = 4,
        salt: int = 0,
    ) -> list[str]:
        """Keys sharing long common prefixes (long split strings).

        Models the batch-of-related-records pattern — e.g. composite
        keys whose leading component barely varies — which maximises the
        rare-case chains of Algorithm A2.
        """
        rng = self._rng(salt)
        if prefixes is None:
            prefixes = ["custab", "custac", "custad", "custae"]
        keys = set()
        while len(keys) < count:
            prefix = rng.choice(list(prefixes))
            keys.add(
                prefix
                + "".join(rng.choice(self.letters) for _ in range(suffix_length))
            )
        out = sorted(keys)
        rng.shuffle(out)
        return out

    def interleaved(self, count: int, runs: int = 10, length: int = 6, salt: int = 0) -> list[str]:
        """Alternating sorted runs: the mixed ordered/random regime.

        Splits the key set into ``runs`` sorted runs and interleaves
        them — neither fully random nor fully ordered insertions.
        """
        keys = sorted(self.uniform(count, length, salt))
        buckets: list[list[str]] = [[] for _ in range(runs)]
        for i, key in enumerate(keys):
            buckets[i % runs].append(key)
        out: list[str] = []
        for chunk in buckets:
            out.extend(chunk)
        return out
